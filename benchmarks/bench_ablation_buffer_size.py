"""Ablation: sync-buffer (ring) capacity.

The paper's sync buffers are rings in System V shared memory; sizing
them is a real deployment decision.  This sweep shrinks the capacity and
measures the producer-stall count and the slowdown on a sync-heavy
benchmark: tiny rings force the master to run in lockstep with the
slowest slave's consumption, degrading the wall-of-clocks agent toward
the cost of a fully synchronous design — while replay stays correct at
every size (the bound trades throughput for memory, never correctness).
"""

from __future__ import annotations

from repro.core.mvee import run_mvee
from repro.experiments.runner import native_cycles
from repro.perf.report import format_table
from repro.workloads.synthetic import make_benchmark

CAPACITIES = (1 << 16, 256, 16, 2)
BENCH = "barnes"


def test_ablation_buffer_size(benchmark, record_output, bench_scale):
    def sweep():
        native = native_cycles(BENCH, scale=bench_scale)
        rows_data = []
        for capacity in CAPACITIES:
            outcome = run_mvee(
                make_benchmark(BENCH, scale=bench_scale), variants=2,
                agent="wall_of_clocks", seed=3,
                agent_options={"buffer_capacity": capacity})
            stats = outcome.agent_shared.stats
            rows_data.append((capacity, outcome.verdict,
                              outcome.cycles / native,
                              stats.producer_waits))
        return rows_data

    rows_data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[str(capacity), verdict, f"{slowdown:.2f}x", str(waits)]
            for capacity, verdict, slowdown, waits in rows_data]
    record_output("ablation_buffer_size", format_table(
        ["ring capacity", "verdict", "slowdown", "producer stalls"],
        rows,
        title=f"Ablation: sync-buffer capacity (WoC, {BENCH}, "
              "2 variants)"))

    assert all(row[1] == "clean" for row in rows_data)
    by_cap = {row[0]: row for row in rows_data}
    # Tiny rings stall the producer; big rings never do.
    assert by_cap[2][3] > by_cap[1 << 16][3]
    assert by_cap[2][2] >= by_cap[1 << 16][2] * 0.98
