"""Ablation: the wall-of-clocks size (Section 4.5's collision trade-off).

The WoC agent cannot allocate a clock per variable, so it hashes
addresses onto a fixed wall.  Collisions map unrelated variables to one
clock and cause "unnecessary serialization and hence potentially also
unnecessary stalls in the slave variants".  This sweep shrinks the wall
from 512 clocks down to 1 (the degenerate case where WoC behaves like a
per-variable-blind total order) on a lock-heavy benchmark and reports
slowdown and collision-stall counts.
"""

from __future__ import annotations

from repro.core.mvee import run_mvee
from repro.experiments.runner import native_cycles
from repro.perf.report import format_table
from repro.workloads.synthetic import make_benchmark

CLOCK_COUNTS = (512, 64, 8, 1)
BENCH = "fluidanimate"   # 512 locks: plenty of collision potential


def test_ablation_clock_count(benchmark, record_output, bench_scale):
    def sweep():
        native = native_cycles(BENCH, scale=bench_scale)
        rows_data = []
        for n_clocks in CLOCK_COUNTS:
            outcome = run_mvee(make_benchmark(BENCH, scale=bench_scale),
                               variants=2, agent="wall_of_clocks",
                               seed=3,
                               agent_options={"n_clocks": n_clocks})
            stats = outcome.agent_shared.stats
            rows_data.append((n_clocks, outcome.verdict,
                              outcome.cycles / native,
                              stats.order_waits,
                              stats.clock_collision_stalls))
        return rows_data

    rows_data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[str(n), verdict, f"{slowdown:.2f}x", str(stalls),
             str(collisions)]
            for n, verdict, slowdown, stalls, collisions in rows_data]
    record_output("ablation_clock_count", format_table(
        ["clocks", "verdict", "slowdown", "order stalls",
         "collision stalls"], rows,
        title="Ablation: wall-of-clocks size vs collision serialization"))

    by_clocks = {row[0]: row for row in rows_data}
    # Replay stays correct at every wall size (plausible clocks).
    assert all(row[1] == "clean" for row in rows_data)
    # Shrinking the wall increases collision stalls and slowdown.
    assert by_clocks[1][4] >= by_clocks[512][4]
    assert by_clocks[1][2] >= by_clocks[512][2] * 0.98
