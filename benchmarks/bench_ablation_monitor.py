"""Ablation: monitor execution context (GHUMVEE vs ReMon, Section 2).

The paper implements its agents in both GHUMVEE (a classic ptrace-based,
cross-process monitor — every intercepted syscall costs several context
switches) and ReMon (a hybrid design whose in-process component handles
most calls cheaply).  §5.1 notes that "each of the system calls invokes
the MVEE monitor, which constitutes a performance bottleneck even in the
most efficient security-oriented MVEEs".

This bench sweeps the per-syscall monitor cost between a ReMon-like
(5k cycles) and a GHUMVEE/ptrace-like (60k cycles) regime and shows the
consequence: syscall-heavy benchmarks (dedup, water_spatial) blow up
under the ptrace regime while sync-heavy-but-syscall-light benchmarks
(swaptions) barely notice — i.e., the agents' efficiency only pays off
inside an efficient monitor.
"""

from __future__ import annotations

from repro.core.mvee import run_mvee
from repro.perf.costs import CostModel
from repro.perf.report import format_table
from repro.run import run_native
from repro.workloads.synthetic import make_benchmark

REGIMES = {
    "remon (in-process)": CostModel(monitor_syscall_overhead=5_000.0),
    "ghumvee (ptrace)": CostModel(monitor_syscall_overhead=60_000.0),
}

BENCHMARKS = ("dedup", "water_spatial", "swaptions", "bodytrack")


def test_ablation_monitor_context(benchmark, record_output, bench_scale):
    def sweep():
        data = {}
        for bench in BENCHMARKS:
            program = make_benchmark(bench, scale=bench_scale)
            for regime, costs in REGIMES.items():
                native = run_native(
                    make_benchmark(bench, scale=bench_scale),
                    seed=1, costs=costs).report.cycles
                outcome = run_mvee(program, variants=2,
                                   agent="wall_of_clocks", seed=1,
                                   costs=costs)
                data[(bench, regime)] = outcome.cycles / native
        return data

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for bench in BENCHMARKS:
        remon = data[(bench, "remon (in-process)")]
        ghumvee = data[(bench, "ghumvee (ptrace)")]
        rows.append([bench, f"{remon:.2f}x", f"{ghumvee:.2f}x",
                     f"{ghumvee / remon:.2f}x"])
    record_output("ablation_monitor_context", format_table(
        ["benchmark", "ReMon-like", "GHUMVEE-like", "ptrace penalty"],
        rows,
        title="Ablation: monitor execution context (WoC agent, "
              "2 variants)"))

    # Syscall-heavy benchmarks suffer most from the ptrace regime;
    # benchmarks whose slice is dominated by compute + sync (bodytrack)
    # barely notice the monitor's path.
    def penalty(bench):
        return (data[(bench, "ghumvee (ptrace)")]
                / data[(bench, "remon (in-process)")])

    assert penalty("water_spatial") > penalty("bodytrack")
    assert penalty("dedup") > penalty("bodytrack")
    assert penalty("bodytrack") < 1.6
