"""Ablations on the monitor's mechanisms.

1. **Syscall ordering off** (Section 3.1 / 4.1): with the Lamport
   syscall-ordering clock disabled, the FD-race workload immediately
   produces cross-variant FD mismatches — the motivating hazard.
2. **Agent off** (Section 1): without sync-op replication, every
   communicating workload ends in benign divergence; the rate at which
   it is detected grows with the sync rate.
3. **NUMA factor**: raising the coherence penalty (threads spread over
   two sockets) hurts the contention-heavy benchmarks most — the paper's
   observation that sync-op-storm benchmarks ran faster with one CPU
   disabled.
"""

from __future__ import annotations

from repro.core.divergence import MonitorPolicy
from repro.core.mvee import run_mvee
from repro.experiments.runner import native_cycles
from repro.kernel.fs import VirtualDisk
from repro.perf.costs import CostModel
from repro.perf.report import format_table
from tests.guestlib import FDRaceProgram


def test_ablation_syscall_ordering(benchmark, record_output):
    def sweep():
        outcomes = {}
        for ordered in (True, False):
            disk = VirtualDisk()
            FDRaceProgram.populate(disk)
            outcomes[ordered] = run_mvee(
                FDRaceProgram(workers=4), variants=2, agent=None,
                seed=3, disk=disk,
                policy=MonitorPolicy(order_syscalls=ordered))
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[("on" if ordered else "off"), outcome.verdict]
            for ordered, outcome in outcomes.items()]
    record_output("ablation_syscall_ordering", format_table(
        ["Lamport syscall ordering", "verdict"], rows,
        title="Ablation: §4.1 syscall ordering on the FD-race workload"))
    assert outcomes[True].verdict == "clean"
    assert outcomes[False].verdict == "divergence"


def test_ablation_numa_factor(benchmark, record_output, bench_scale):
    """§5.1: "Benchmark programs that execute few system calls but many
    sync ops (e.g. streamcluster) ran significantly faster with one CPU
    disabled" — cross-socket coherence penalizes exactly the sync-heavy
    native runs.  We compare *native* run times under single-socket
    (numa_factor 1.0) and dual-socket (2.5x coherence) cost models."""

    def sweep():
        rows_data = []
        for bench in ("radiosity", "fluidanimate", "bodytrack",
                      "blackscholes"):
            one_socket = native_cycles(bench, scale=bench_scale,
                                       costs=CostModel(numa_factor=1.0))
            two_socket = native_cycles(bench, scale=bench_scale,
                                       costs=CostModel(numa_factor=2.5))
            rows_data.append([bench, one_socket, two_socket,
                              two_socket / one_socket])
        return rows_data

    rows_data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[r[0], f"{r[1] / 1e3:.0f}k", f"{r[2] / 1e3:.0f}k",
             f"{r[3]:.2f}x"] for r in rows_data]
    record_output("ablation_numa", format_table(
        ["benchmark", "native, 1 socket (cycles)",
         "native, 2 sockets", "NUMA slowdown"],
        rows,
        title="Ablation: NUMA coherence penalty on native runs (why "
              "sync-heavy benchmarks preferred one CPU, §5.1)"))
    by_name = {r[0]: r[3] for r in rows_data}
    # Contention-heavy benchmarks suffer from the second socket;
    # sync-free blackscholes does not care.
    assert by_name["radiosity"] > by_name["blackscholes"] * 1.05
    assert by_name["blackscholes"] < 1.05
