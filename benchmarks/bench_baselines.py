"""Baselines vs the paper's agents (Sections 2.1 and 6).

* **DMT (Kendo-style)** keeps identical variants in lockstep without any
  recording — but diversified variants compute *different* deterministic
  schedules and diverge (the paper's argument for record/replay).
* **VARAN-style relaxed monitoring** handles loosely-coupled threads
  with no agent at all, but diverges on communicating threads unless the
  paper's agents are added.
* **RecPlay-style offline R+R** reproduces a recorded schedule across
  arbitrary scheduler seeds — the classic result the online agents build
  on.
"""

from __future__ import annotations

from repro.baselines.recplay import record_execution, replay_execution
from repro.core.mvee import run_mvee
from repro.diversity.spec import DiversitySpec
from repro.perf.costs import CostModel
from repro.perf.report import format_table
from tests.guestlib import (
    CounterProgram,
    LooselyCoupledProgram,
    ScheduleWitnessProgram,
)

FAST = CostModel(monitor_syscall_overhead=2_000.0)


def test_baseline_matrix(benchmark, record_output):
    def sweep():
        witness = ScheduleWitnessProgram(workers=4, iters=40)
        rows = []
        # DMT: identical variants fine, diversified variants diverge.
        rows.append(("DMT, identical variants", run_mvee(
            witness, variants=2, agent="dmt", seed=3, costs=FAST,
            max_cycles=5e9).verdict, "clean"))
        rows.append(("DMT, NOP-diversified variants", run_mvee(
            witness, variants=2, agent="dmt", seed=3, costs=FAST,
            max_cycles=5e9,
            diversity=DiversitySpec(noise=0.3, seed=5)).verdict,
            "divergence"))
        rows.append(("WoC, NOP-diversified variants", run_mvee(
            witness, variants=2, agent="wall_of_clocks", seed=3,
            costs=FAST,
            diversity=DiversitySpec(noise=0.3, seed=5)).verdict,
            "clean"))
        # VARAN: loose coupling ok, communication fails.
        rows.append(("VARAN, loosely-coupled threads", run_mvee(
            LooselyCoupledProgram(workers=4, steps=15), variants=2,
            agent=None, seed=5, monitor_kind="relaxed",
            costs=FAST).verdict, "clean"))
        rows.append(("VARAN, communicating threads", run_mvee(
            CounterProgram(workers=4, iters=120), variants=2,
            agent=None, seed=7, monitor_kind="relaxed",
            costs=FAST).verdict, "divergence"))
        rows.append(("VARAN + WoC agent, communicating", run_mvee(
            CounterProgram(workers=4, iters=120), variants=2,
            agent="wall_of_clocks", seed=7, monitor_kind="relaxed",
            costs=FAST).verdict, "clean"))
        # RecPlay: offline replay reproduces output across seeds.
        log, recorded = record_execution(
            ScheduleWitnessProgram(workers=4, iters=30), seed=0)
        replay_ok = all(
            replay_execution(ScheduleWitnessProgram(workers=4, iters=30),
                             log, seed=s)[1].stdout == recorded.stdout
            for s in (1, 2, 3))
        rows.append(("RecPlay offline replay (3 seeds)",
                     "reproduced" if replay_ok else "mismatch",
                     "reproduced"))
        return rows

    rows_data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[name, got, expected]
            for name, got, expected in rows_data]
    record_output("baselines", format_table(
        ["configuration", "result", "expected"], rows,
        title="Baselines: DMT (§2.1), VARAN (§6), RecPlay (§6)"))
    for name, got, expected in rows_data:
        assert got == expected, name
