"""Section 5.1 "Correctness": diversity on, every policy, no divergence.

The paper verified correctness by repeating the benchmark runs with ASLR
enabled and non-overlapping code layouts applied, under monitoring
policies from strict lockstepping to sensitive-only lockstepping — with
no divergence detected anywhere.  This bench runs that matrix over a
representative benchmark subset (one per topology plus the sync-op
extremes) for all three agents.
"""

from __future__ import annotations

from repro.core.divergence import MonitorPolicy
from repro.core.mvee import run_mvee
from repro.diversity.spec import DiversitySpec
from repro.perf.report import format_table
from repro.workloads.synthetic import make_benchmark

BENCHMARKS = ("bodytrack", "dedup", "fft", "freqmine", "radiosity")
AGENTS = ("total_order", "partial_order", "wall_of_clocks")
POLICIES = {
    "lockstep-all": MonitorPolicy(lockstep="all"),
    "lockstep-sensitive": MonitorPolicy(lockstep="sensitive"),
}
DIVERSITY = DiversitySpec(aslr=True, dcl=True, seed=77)


def test_correctness_matrix(benchmark, record_output, bench_scale):
    def sweep():
        cells = {}
        for name in BENCHMARKS:
            for agent in AGENTS:
                for policy_name, policy in POLICIES.items():
                    outcome = run_mvee(
                        make_benchmark(name, scale=bench_scale * 0.5),
                        variants=2, agent=agent, seed=9,
                        policy=policy, diversity=DIVERSITY)
                    cells[(name, agent, policy_name)] = outcome.verdict
        return cells

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name in BENCHMARKS:
        for agent in AGENTS:
            rows.append([name, agent] + [
                cells[(name, agent, policy)] for policy in POLICIES])
    record_output("correctness_matrix", format_table(
        ["benchmark", "agent"] + list(POLICIES), rows,
        title="Section 5.1: correctness under ASLR + DCL, all policies "
              "(paper: no divergence detected in any configuration)"))

    assert all(verdict == "clean" for verdict in cells.values())
