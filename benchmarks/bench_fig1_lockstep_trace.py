"""Figure 1: monitoring and replication between two variants.

The paper's architecture figure shows two variants making ``brk`` and
``write`` calls through the monitor.  This bench runs exactly that
program under the strict monitor and renders the observable trace:
both variants execute every call in lockstep (identical per-thread
sequences), ``brk`` results come from each variant's own kernel
(legitimately different addresses under ASLR), and the ``write`` output
is performed exactly once.
"""

from __future__ import annotations

from repro.core.mvee import MVEE
from repro.diversity.spec import DiversitySpec
from repro.guest.program import GuestProgram
from repro.perf.report import format_table


class BrkWriteProgram(GuestProgram):
    """The Figure 1 workload: brk, then write, twice."""

    name = "fig1"

    def main(self, ctx):
        base = yield from ctx.syscall("brk", None)
        yield from ctx.syscall("brk", base + 4096)
        yield from ctx.printf("hello from the variant set\n")
        yield from ctx.syscall("brk", base + 8192)
        yield from ctx.printf("second write\n")
        return base


def test_fig1_lockstep_trace(benchmark, record_output):
    def run():
        mvee = MVEE(BrkWriteProgram(), variants=2, agent=None, seed=1,
                    record_trace=True,
                    diversity=DiversitySpec(aslr=True, seed=3))
        return mvee, mvee.run()

    mvee, outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.verdict == "clean"

    rows = []
    for entry0, entry1 in zip(outcome.vms[0].trace,
                              outcome.vms[1].trace):
        rows.append([entry0.name,
                     f"{entry0.detail!r} -> {entry0.result!r}",
                     f"{entry1.detail!r} -> {entry1.result!r}"])
    text = format_table(
        ["syscall", "variant 0 (master)", "variant 1 (slave)"], rows,
        title="Figure 1: lockstep trace of brk/write between 2 variants")
    text += ("\n\nstdout (deduplicated, performed once):\n"
             + outcome.stdout)
    record_output("fig1_lockstep_trace", text)

    # Both variants made identical sequences of calls...
    names0 = [entry.name for entry in outcome.vms[0].trace]
    names1 = [entry.name for entry in outcome.vms[1].trace]
    assert names0 == names1
    # ... brk addresses differ under ASLR (masked as <addr> in traces),
    # while each write happened once.
    assert outcome.stdout.count("hello from the variant set") == 1
    assert outcome.stdout.count("second write") == 1
