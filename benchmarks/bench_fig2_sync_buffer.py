"""Figure 2: synchronization through the shared sync buffer.

Renders the actual buffer contents after a short two-thread run: for the
TO/PO agents the single shared log (the figure's one-buffer topology),
for WoC the per-master-thread buffers of Figure 4(c)'s refinement.  The
assertion captures the figure's invariant: the slave consumed exactly the
sequence the master produced.
"""

from __future__ import annotations

from repro.core.mvee import MVEE
from repro.guest.program import GuestProgram
from repro.guest.sync import SpinLock
from repro.perf.report import format_table


class TwoLocksProgram(GuestProgram):
    name = "fig2"
    static_vars = ("lockA", "lockB")

    def main(self, ctx):
        lock_a = SpinLock(ctx.static_addr("lockA"))
        lock_b = SpinLock(ctx.static_addr("lockB"))
        t1 = yield from ctx.spawn(self.worker, lock_a, 4)
        t2 = yield from ctx.spawn(self.worker, lock_b, 4)
        yield from ctx.join_all([t1, t2])
        return 0

    def worker(self, ctx, lock, rounds):
        for _ in range(rounds):
            yield from ctx.compute(800)
            yield from lock.acquire(ctx)
            yield from ctx.compute(200)
            yield from lock.release(ctx)
        return 0


def test_fig2_sync_buffer(benchmark, record_output, fastish=None):
    def run():
        mvee = MVEE(TwoLocksProgram(), variants=2, agent="total_order",
                    seed=2)
        outcome = mvee.run()
        return mvee, outcome

    mvee, outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.verdict == "clean"

    shared = outcome.agent_shared
    rows = []
    for position in range(len(shared.log)):
        entry = shared.log.entry(position)
        rows.append([str(position), entry.thread, f"{entry.addr:#x}",
                     entry.site])
    text = format_table(["pos", "producer thread", "sync var", "site"],
                        rows,
                        title="Figure 2: shared sync buffer contents "
                              "(master-produced, slave-consumed)")
    text += (f"\n\nslave consumed {shared.next_index[1]} of "
             f"{len(shared.log)} entries (fully drained)")
    record_output("fig2_sync_buffer", text)

    # The slave drained the buffer completely and in order.
    assert shared.next_index[1] == len(shared.log)
    assert shared.stats.replayed == shared.stats.recorded
    # Both logical sync variables appear in the one shared buffer.
    addresses = {shared.log.entry(i).addr for i in range(len(shared.log))}
    assert len(addresses) == 2


def test_fig2_woc_per_thread_buffers(benchmark, record_output):
    """The WoC refinement: one buffer per master thread (Figure 4c)."""

    def run():
        mvee = MVEE(TwoLocksProgram(), variants=2,
                    agent="wall_of_clocks", seed=2)
        outcome = mvee.run()
        return mvee, outcome

    mvee, outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.verdict == "clean"
    shared = outcome.agent_shared
    rows = [[producer, str(buffer.produced()),
             str(buffer.consumed(1))]
            for producer, buffer in sorted(shared.buffers.items())]
    text = format_table(["producer thread", "produced", "consumed by v1"],
                        rows,
                        title="Figure 4c topology: per-master-thread "
                              "SPSC buffers")
    record_output("fig2_woc_buffers", text)
    assert len(shared.buffers) == 2  # one per worker thread
    for buffer in shared.buffers.values():
        assert buffer.consumed(1) == buffer.produced()
