"""Figure 4: replay behaviour of the three replication strategies.

The figure's point: on *unrelated* critical sections (lock A in one
thread, lock B in another), the TO agent stalls slave threads on entries
that do not concern them (the red bar of Figure 4a), while the PO and
WoC agents replay independent sections without those stalls.

The bench runs a two-thread/two-lock workload under all three agents
with identical seeds and compares the *unnecessary-stall* counts: TO's
order-stalls dominate; PO and WoC stall only for genuine reasons
(producer lag), and WoC additionally reports any hash-collision
serialization (zero here — two locks rarely collide in a 512-clock wall).
"""

from __future__ import annotations

from repro.core.mvee import MVEE
from repro.guest.program import GuestProgram
from repro.guest.sync import SpinLock
from repro.perf.report import format_table


class IndependentLocksProgram(GuestProgram):
    """Two threads, two unrelated locks, many rounds."""

    name = "fig4"
    static_vars = ("lockA", "lockB")

    def __init__(self, rounds: int = 120):
        self.rounds = rounds

    def main(self, ctx):
        lock_a = SpinLock(ctx.static_addr("lockA"))
        lock_b = SpinLock(ctx.static_addr("lockB"))
        t1 = yield from ctx.spawn(self.worker, lock_a)
        t2 = yield from ctx.spawn(self.worker, lock_b)
        yield from ctx.join_all([t1, t2])
        return 0

    def worker(self, ctx, lock):
        for _ in range(self.rounds):
            yield from ctx.compute(900)
            yield from lock.acquire(ctx)
            yield from ctx.compute(250)
            yield from lock.release(ctx)
        return 0


def run_agent(agent: str):
    mvee = MVEE(IndependentLocksProgram(), variants=2, agent=agent,
                seed=6, record_sync_trace=True)
    outcome = mvee.run()
    assert outcome.verdict == "clean"
    stats = outcome.agent_shared.stats
    return {
        "agent": agent,
        "order_stalls": stats.order_waits,
        "log_stalls": stats.log_waits,
        "scanned": stats.scanned_entries,
        "collision_stalls": stats.clock_collision_stalls,
        "cycles": outcome.cycles,
        "slave_trace": outcome.vms[1].sync_trace,
    }


class Figure4Scenario(GuestProgram):
    """The figure's exact event pattern, with the slave's schedule
    reversed on purpose.

    Master: m1 enters/leaves section A, then (later) section B;
            m2 enters/leaves section B first.
    Slave:  s2 reaches its section-B op *before* s1 runs at all (we
            delay the variant's thread 1 via a role-dependent warmup,
            as the paper's own self-aware PoCs do).

    Under TO, s2 must stall on m1's unrelated section-A entries
    (Figure 4a's red bar); under PO/WoC it proceeds immediately
    (Figures 4b/4c).
    """

    name = "fig4_exact"
    static_vars = ("lockA", "lockB")

    def main(self, ctx):
        role = yield from ctx.mvee_get_role()
        lock_a = SpinLock(ctx.static_addr("lockA"))
        lock_b = SpinLock(ctx.static_addr("lockB"))
        t1 = yield from ctx.spawn(self.thread1, lock_a, lock_b, role)
        t2 = yield from ctx.spawn(self.thread2, lock_b, role)
        yield from ctx.join_all([t1, t2])
        return 0

    def thread1(self, ctx, lock_a, lock_b, role):
        if role != 0:
            yield from ctx.compute(60_000)  # slave: s1 is late
        yield from lock_a.acquire(ctx)      # enter_sec(&A)   (t0)
        yield from ctx.compute(500)
        yield from lock_a.release(ctx)      # leave_sec(&A)   (t1)
        yield from ctx.compute(20_000)
        yield from lock_b.acquire(ctx)      # enter_sec(&B)   (t4)
        yield from lock_b.release(ctx)
        return 0

    def thread2(self, ctx, lock_b, role):
        if role == 0:
            yield from ctx.compute(600)     # master: after m1's A entry
        yield from lock_b.acquire(ctx)      # enter_sec(&B)   (t2)
        yield from ctx.compute(500)
        yield from lock_b.release(ctx)      # leave_sec(&B)   (t3)
        return 0


def first_op_delay(agent: str) -> tuple:
    """When does the slave's thread-2 commit its first sync op?"""
    mvee = MVEE(Figure4Scenario(), variants=2, agent=agent, seed=3,
                record_sync_trace=True)
    outcome = mvee.run()
    assert outcome.verdict == "clean"
    trace = outcome.vms[1].sync_trace
    s2_first = min(entry.time for entry in trace
                   if entry.thread == "main/2")
    return s2_first, trace


def test_fig4_exact_scenario(benchmark, record_output):
    def sweep():
        return {agent: first_op_delay(agent)
                for agent in ("total_order", "partial_order",
                              "wall_of_clocks")}

    delays = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.perf.timeline import render_timeline
    lines = ["Figure 4 (exact scenario): absolute time of slave thread "
             "s2's first sync-op commit", ""]
    for agent, (delay, trace) in delays.items():
        lines.append(f"{agent:16s} {delay:10.0f} cycles")
    for agent, (delay, trace) in delays.items():
        lines.append("")
        lines.append(f"slave timeline — {agent}:")
        lines.append(render_timeline(trace))
    record_output("fig4_exact_scenario", "\n".join(lines))

    to_delay = delays["total_order"][0]
    po_delay = delays["partial_order"][0]
    woc_delay = delays["wall_of_clocks"][0]
    # Figure 4a's red bar: TO stalls s2 behind s1's unrelated section
    # (~55k extra cycles here); PO and WoC release it immediately.
    assert to_delay > 2 * po_delay
    assert to_delay > 2 * woc_delay
    assert abs(po_delay - woc_delay) < 0.5 * woc_delay


def test_fig4_replay_sequences(benchmark, record_output):
    def sweep():
        return [run_agent(agent) for agent in
                ("total_order", "partial_order", "wall_of_clocks")]

    rows_data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[d["agent"], str(d["order_stalls"]), str(d["log_stalls"]),
             str(d["scanned"]), str(d["collision_stalls"]),
             f"{d['cycles']:.0f}"]
            for d in rows_data]
    text = format_table(
        ["agent", "order stalls", "producer-lag stalls",
         "PO entries scanned", "WoC collision stalls", "run cycles"],
        rows,
        title="Figure 4: stall behaviour on two unrelated critical "
              "sections (TO's red bar vs PO/WoC)")
    from repro.perf.timeline import render_timeline
    for data in rows_data:
        text += ("\n\nslave replay timeline — " + data["agent"] + ":\n"
                 + render_timeline(data["slave_trace"]))
    record_output("fig4_replay_sequences", text)

    to, po, woc = rows_data
    # TO stalls on unrelated entries far more than PO/WoC (Figure 4a).
    assert to["order_stalls"] > 3 * max(po["order_stalls"], 1)
    assert to["order_stalls"] > 3 * max(woc["order_stalls"], 1)
    # PO does lookahead work that TO/WoC do not (the window scan).
    assert po["scanned"] >= 0
    # Two distinct locks in a 512-clock wall: no collision serialization.
    assert woc["collision_stalls"] == 0
