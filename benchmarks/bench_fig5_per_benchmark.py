"""Figure 5: per-benchmark run-time overhead, 3 agents x 2-4 variants.

Regenerates the paper's per-benchmark series (three stacks per benchmark)
and asserts its headline shapes:

* wall-of-clocks wins (or ties within noise) on essentially every
  benchmark;
* the PO agent's contention pathologies appear exactly where the paper
  reports them — radiosity, fluidanimate, swaptions (2 variants);
* pipelined benchmarks (dedup, ferret) degrade superlinearly from 3 to 4
  variants because total threads exceed the 16 cores (§5.1);
* the paper's spotlight slowdowns hold roughly: dedup ~1.78x, barnes
  ~1.61x, radiosity ~1.47x under WoC with two variants.
"""

from __future__ import annotations

from repro.experiments.runner import run_benchmark_grid
from repro.experiments.tables import figure5_series


def test_fig5_per_benchmark(benchmark, record_output, bench_scale,
                            bench_jobs):
    def sweep():
        return run_benchmark_grid(scale=bench_scale, jobs=bench_jobs)

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_output("fig5_per_benchmark",
                  figure5_series(results, scale=bench_scale))

    cell = {(r.benchmark, r.agent, r.variants): r.slowdown
            for r in results}

    # WoC never loses by more than noise.
    for r in results:
        if r.agent == "wall_of_clocks":
            to = cell[(r.benchmark, "total_order", r.variants)]
            po = cell[(r.benchmark, "partial_order", r.variants)]
            assert r.slowdown <= min(to, po) * 1.10, (
                r.benchmark, r.variants)

    # PO pathologies where the paper reports them (2 variants).
    for storm in ("radiosity", "fluidanimate", "swaptions"):
        assert cell[(storm, "partial_order", 2)] > \
            cell[(storm, "total_order", 2)], storm

    # Superlinear pipelined degradation (threads exceed cores at 4
    # variants: dedup 12 threads/variant, ferret 18).
    for pipelined in ("dedup", "ferret"):
        two = cell[(pipelined, "wall_of_clocks", 2)]
        four = cell[(pipelined, "wall_of_clocks", 4)]
        assert four > two * 1.3, pipelined

    # Spotlight WoC numbers (paper: dedup 1.78x, barnes 1.61x,
    # radiosity 1.47x) — hold within a factor-ish band.
    assert 1.2 < cell[("dedup", "wall_of_clocks", 2)] < 2.6
    assert 1.1 < cell[("barnes", "wall_of_clocks", 2)] < 2.4
    assert 1.1 < cell[("radiosity", "wall_of_clocks", 2)] < 2.4
