"""Section 5.5: the nginx use case, end to end.

Reproduces every claim of the section:

* **un-instrumented custom primitives** → the server starts but diverges
  as soon as traffic flows;
* **after the analysis/refactoring workflow** (51 sync ops identified,
  matching the paper) → clean runs under ASLR + DCL;
* **throughput**: the MVEE costs ~3% over a remote (gigabit) client link
  but ~48% over loopback — the network latency hides the monitor's
  overhead; we sweep both latencies and assert the ordering and rough
  magnitudes;
* **attack detection**: the CVE-2013-2028-style exploit succeeds against
  a native server and is killed as divergence under the MVEE.
"""

from __future__ import annotations

from repro.analysis.corpus import nginx_module, paper_corpus
from repro.analysis.identify import identify_sync_ops
from repro.analysis.instrument import instrumented_sites
from repro.core.injection import instrument_sites
from repro.core.mvee import MVEE
from repro.diversity.spec import DiversitySpec, layouts_for
from repro.kernel.net import Network
from repro.perf.report import format_table
from repro.run import run_native
from repro.workloads.attacks import exploit_payload
from repro.workloads.nginx import (
    NginxConfig,
    NginxServer,
    TrafficStats,
    make_traffic,
    pthread_only_sites,
)

#: One-way latencies: ~120 us models the paper's gigabit client link,
#: ~0 the loopback test.
REMOTE_LATENCY_S = 0.000_120
LOOPBACK_LATENCY_S = 0.0

CONFIG = NginxConfig(pool_threads=16, connections=10,
                     requests_per_connection=6, work_cycles=25_000.0)

DIVERSITY = DiversitySpec(aslr=True, dcl=True, seed=11)


def native_throughput(latency_s: float) -> float:
    stats = TrafficStats()
    run_native(NginxServer(CONFIG), seed=1, network=Network(),
               traffic=make_traffic(CONFIG, latency_s, stats))
    return stats.throughput_rps()


def mvee_throughput(latency_s: float, instrument=None,
                    max_cycles=2e10) -> tuple:
    stats = TrafficStats()
    mvee = MVEE(NginxServer(CONFIG), variants=2, agent="wall_of_clocks",
                seed=1, diversity=DIVERSITY, with_network=True,
                instrument=(instrument if instrument is not None
                            else (lambda site: True)),
                traffic=make_traffic(CONFIG, latency_s, stats),
                max_cycles=max_cycles)
    outcome = mvee.run()
    return outcome, stats.throughput_rps()


def test_nginx_usecase(benchmark, record_output):
    def experiment():
        # The analysis workflow output drives the instrumentation.
        sites = instrumented_sites(
            identify_sync_ops(nginx_module()),
            *(identify_sync_ops(m) for m in paper_corpus()[:3]))
        data = {"sites": sites}
        data["native_remote"] = native_throughput(REMOTE_LATENCY_S)
        data["native_loop"] = native_throughput(LOOPBACK_LATENCY_S)
        # Un-instrumented replay wedges or diverges quickly; a tight
        # cycle budget keeps the spin-loop livelock from running long.
        data["uninstrumented"], _ = mvee_throughput(
            LOOPBACK_LATENCY_S, instrument=pthread_only_sites,
            max_cycles=1.5e9)
        outcome_remote, remote_rps = mvee_throughput(
            REMOTE_LATENCY_S, instrument=instrument_sites(sites))
        outcome_loop, loop_rps = mvee_throughput(
            LOOPBACK_LATENCY_S, instrument=instrument_sites(sites))
        data["mvee_remote"] = (outcome_remote, remote_rps)
        data["mvee_loop"] = (outcome_loop, loop_rps)
        return data

    data = benchmark.pedantic(experiment, rounds=1, iterations=1)

    nginx_ops = sum(identify_sync_ops(nginx_module()).counts)
    remote_outcome, remote_rps = data["mvee_remote"]
    loop_outcome, loop_rps = data["mvee_loop"]
    remote_loss = 1 - remote_rps / data["native_remote"]
    loop_loss = 1 - loop_rps / data["native_loop"]

    rows = [
        ["nginx sync ops identified", f"{nginx_ops}", "51"],
        ["uninstrumented custom sync",
         data["uninstrumented"].verdict, "divergence"],
        ["instrumented, ASLR+DCL (remote)", remote_outcome.verdict,
         "clean"],
        ["instrumented, ASLR+DCL (loopback)", loop_outcome.verdict,
         "clean"],
        ["throughput loss, remote client", f"{remote_loss:.0%}", "~3%"],
        ["throughput loss, loopback", f"{loop_loss:.0%}", "~48%"],
    ]
    record_output("nginx_usecase", format_table(
        ["experiment", "measured", "paper"], rows,
        title="Section 5.5: the nginx use case"))

    assert nginx_ops == 51
    assert data["uninstrumented"].verdict != "clean"
    assert remote_outcome.verdict == "clean"
    assert loop_outcome.verdict == "clean"
    # The shape claim: network latency hides the MVEE overhead.
    assert remote_loss < loop_loss
    assert remote_loss < 0.25
    assert 0.15 < loop_loss < 0.80


def test_nginx_attack_detection(benchmark, record_output):
    config = NginxConfig(pool_threads=8, connections=4,
                         requests_per_connection=2, vulnerable=True)

    def experiment():
        # Native: the tailored exploit spawns a shell.
        stats = TrafficStats()
        from repro.kernel.vmem import LayoutBases
        native = run_native(
            NginxServer(config), seed=1, network=Network(),
            traffic=make_traffic(config, 0.0, stats,
                                 exploit_payload=exploit_payload(
                                     LayoutBases())))
        # MVEE: the same technique, tailored to variant 0's layout.
        victim = layouts_for(DIVERSITY, 2)[0]
        stats2 = TrafficStats()
        mvee = MVEE(NginxServer(config), variants=2,
                    agent="wall_of_clocks", seed=1, diversity=DIVERSITY,
                    with_network=True,
                    traffic=make_traffic(config, 0.0, stats2,
                                         exploit_payload=exploit_payload(
                                             victim)),
                    max_cycles=1e10)
        return native, mvee.run()

    native, outcome = benchmark.pedantic(experiment, rounds=1,
                                         iterations=1)
    rows = [
        ["native server", "shell spawned"
         if native.vm.kernel.exec_log else "survived",
         "compromised"],
        ["2-variant MVEE (ASLR+DCL)", outcome.verdict, "divergence"],
        ["shell spawned under MVEE",
         str(any(vm.kernel.exec_log for vm in outcome.vms)), "False"],
    ]
    record_output("nginx_attack", format_table(
        ["target", "result", "paper"], rows,
        title="Section 5.5: CVE-2013-2028-style attack"))
    assert native.vm.kernel.exec_log
    assert outcome.verdict == "divergence"
    assert not any(vm.kernel.exec_log for vm in outcome.vms)
