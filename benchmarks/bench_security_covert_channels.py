"""Section 5.4: covert-channel proof-of-concepts.

Demonstrates both channels end to end and reports the leaked bits:

* the replicated-``gettimeofday`` channel transfers each variant's
  randomized address bits to every other variant (and then out through
  ordinary, divergence-free output);
* the mutex-``trylock`` channel transmits the master's bits through the
  replicated synchronization results themselves, under each of the three
  agents.
"""

from __future__ import annotations

from repro.core.mvee import run_mvee
from repro.diversity.spec import DiversitySpec
from repro.perf.costs import CostModel
from repro.perf.report import format_table
from repro.workloads.attacks import (
    TimingCovertChannel,
    TrylockCovertChannel,
)

#: ASLR seed under which the variants' role hashes differ.
ASLR = DiversitySpec(aslr=True, seed=2)

FAST = CostModel(monitor_syscall_overhead=2_000.0)


def test_covert_channels(benchmark, record_output):
    def experiment():
        timing = run_mvee(TimingCovertChannel(), variants=2, agent=None,
                          seed=5, costs=FAST, diversity=ASLR)
        trylock = {}
        for agent in ("total_order", "partial_order", "wall_of_clocks"):
            trylock[agent] = run_mvee(TrylockCovertChannel(), variants=2,
                                      agent=agent, seed=7, costs=FAST,
                                      diversity=ASLR)
        return timing, trylock

    timing, trylock = benchmark.pedantic(experiment, rounds=1,
                                         iterations=1)

    rows = []
    first = timing.vms[0].threads["main"].result
    second = timing.vms[1].threads["main"].result
    rows.append(["gettimeofday delta", timing.verdict,
                 f"streams {first['streams']} "
                 f"(secrets {first['my_secret']:#x}/"
                 f"{second['my_secret']:#x})"])
    for agent, outcome in trylock.items():
        master = outcome.vms[0].threads["main"].result
        slave = outcome.vms[1].threads["main"].result
        rows.append([f"trylock via {agent}", outcome.verdict,
                     f"slave decoded {slave['decoded']:#x} == master "
                     f"secret {master['my_secret']:#x}"])
    record_output("security_covert_channels", format_table(
        ["channel", "verdict (must be clean!)", "leak"], rows,
        title="Section 5.4: covert channels — leaks without divergence"))

    # The defining property: the leak is NOT detected as divergence.
    assert timing.verdict == "clean"
    sender1 = first if first["my_role"] == 1 else second
    assert first["streams"][1] == sender1["my_secret"]
    for outcome in trylock.values():
        assert outcome.verdict == "clean"
        master = outcome.vms[0].threads["main"].result
        slave = outcome.vms[1].threads["main"].result
        assert slave["decoded"] == master["my_secret"]
