"""Table 1: aggregated average slowdowns per agent and variant count.

Paper values: TO 2.76/2.83/2.87, PO 2.83/2.83/3.00, WoC 1.14/1.27/1.38
for 2/3/4 variants.  The bench runs the full PARSEC+SPLASH grid and
asserts the paper's two headline *shape* claims: the wall-of-clocks agent
wins at every variant count, and overheads grow with the variant count.
"""

from __future__ import annotations

from repro.experiments.runner import AGENTS, run_benchmark_grid
from repro.experiments.tables import table1
from repro.perf.report import aggregate_slowdowns


def test_table1_agent_slowdowns(benchmark, record_output, bench_scale,
                                bench_jobs):
    def sweep():
        return run_benchmark_grid(scale=bench_scale, jobs=bench_jobs)

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_output("table1_agent_slowdowns",
                  table1(results, scale=bench_scale))

    assert all(r.verdict == "clean" for r in results), (
        "every grid cell must replay without divergence")
    means = aggregate_slowdowns([r.to_slowdown() for r in results])
    for variants in (2, 3, 4):
        woc = means[("wall_of_clocks", variants)]
        assert woc < means[("total_order", variants)]
        assert woc < means[("partial_order", variants)]
        # The paper's WoC numbers are 1.14-1.38; stay in that regime.
        assert woc < 1.9
    # Overhead grows with the variant count for every agent.
    for agent in AGENTS:
        assert means[(agent, 2)] <= means[(agent, 4)] * 1.05
