"""Table 2: native run times, syscall rates, and sync-op rates.

The synthetic twins simulate a rate-faithful *slice* of each original
benchmark; this bench measures the achieved rates and prints them next to
the paper's numbers.  Shape assertions: the rate *ranking* that drives
the rest of the evaluation must hold (radiosity is the sync-op extreme,
dedup/water_spatial the syscall extremes, blackscholes near zero).
"""

from __future__ import annotations

from repro.experiments.tables import table2
from repro.run import run_native
from repro.workloads.spec import ALL_SPECS
from repro.workloads.synthetic import make_benchmark


def _measure(scale):
    rates = {}
    for name in ALL_SPECS:
        result = run_native(make_benchmark(name, scale=scale), seed=1)
        seconds = result.report.seconds
        rates[name] = (result.report.total_syscalls / seconds / 1000.0,
                       result.report.total_sync_ops / seconds / 1000.0)
    return rates


def test_table2_native_rates(benchmark, record_output, bench_scale,
                             bench_jobs):
    rates = benchmark.pedantic(_measure, args=(bench_scale,),
                               rounds=1, iterations=1)
    record_output("table2_native_rates",
                  table2(scale=bench_scale, jobs=bench_jobs))

    sync = {name: rate[1] for name, rate in rates.items()}
    syscalls = {name: rate[0] for name, rate in rates.items()}
    # Sync-op extremes (Table 2's defining ranks).  radiosity and
    # fluidanimate share the top tier (both budget-capped at bench
    # scales, within a percent of each other); everything else is far
    # below them.
    assert sync["radiosity"] >= 0.9 * max(sync.values())
    assert min(sync["radiosity"], sync["fluidanimate"]) \
        > sync["barnes"] > sync["bodytrack"]
    assert sync["blackscholes"] == 0.0
    # Syscall extremes.
    assert syscalls["dedup"] > syscalls["bodytrack"]
    assert syscalls["water_spatial"] > syscalls["water_nsquared"]
