"""Table 3: sync ops identified per module and instruction class.

Runs the full two-stage identification pipeline (stage-1 scan + Andersen
points-to) over the modelled library corpora and checks the counts against
the paper's Table 3 row by row — these reproduce *exactly*, because the
corpora encode the same populations the pipeline is meant to find.
Also reports the nginx count (51 sync ops, Section 5.5) and the
Steensgaard-vs-Andersen precision gap (Section 4.3.1).
"""

from __future__ import annotations

from repro.analysis.corpus import (
    NGINX_SYNC_OPS,
    TABLE3_PAPER,
    heap_imprecision_module,
    nginx_module,
    paper_corpus,
)
from repro.analysis.identify import identify_sync_ops, table3_rows
from repro.experiments.tables import table3


def test_table3_syncop_analysis(benchmark, record_output):
    def analyze():
        return table3_rows(paper_corpus(), analysis="andersen")

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)
    lines = [table3(), ""]

    for name, type1, type2, type3 in rows:
        assert (type1, type2, type3) == TABLE3_PAPER[name], name

    nginx = identify_sync_ops(nginx_module())
    lines.append(f"nginx: {sum(nginx.counts)} sync ops "
                 f"(paper: {NGINX_SYNC_OPS})")
    assert sum(nginx.counts) == NGINX_SYNC_OPS

    steens = identify_sync_ops(heap_imprecision_module(),
                               analysis="steensgaard")
    anders = identify_sync_ops(heap_imprecision_module(),
                               analysis="andersen")
    lines.append(
        f"heap-imprecision corpus: steensgaard marks "
        f"{len(steens.type3)} type (iii) ops, andersen "
        f"{len(anders.type3)} (the DSA unification failure, §4.3.1)")
    assert len(steens.type3) > len(anders.type3)

    record_output("table3_syncop_analysis", "\n".join(lines))
