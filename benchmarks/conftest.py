"""Shared infrastructure for the paper-reproduction benches.

Every bench regenerates one table or figure of the paper, prints it (run
pytest with ``-s`` to see it live), and appends it to
``benchmarks/results/`` so EXPERIMENTS.md can reference stable outputs.

``REPRO_BENCH_SCALE`` (default 0.25) scales the per-benchmark event
budgets: raise it toward 1.0 for higher-fidelity (slower) sweeps.
``REPRO_BENCH_JOBS`` (default 1) shards each sweep's cells across that
many worker processes via :mod:`repro.par` — results are identical to
serial (the differential suite under ``tests/par/`` pins this), only
the wall-clock changes.
"""

from __future__ import annotations

import os
import pathlib

import pytest

#: Event-budget scale for the performance sweeps.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

#: Worker processes per sweep (1 = historical serial collection).
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_output():
    """Returns a callable(name, text) that prints and persists output."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return SCALE


@pytest.fixture(scope="session")
def bench_jobs() -> int:
    return JOBS
