#!/usr/bin/env python3
"""A miniature Figure 5 / Table 1 sweep from the public API.

Runs a representative benchmark subset through all three agents at 2-4
variants and prints paper-style slowdown tables.  (The full 25-benchmark
sweep lives in benchmarks/bench_fig5_per_benchmark.py.)

Run:  python examples/benchmark_sweep.py [scale]
"""

import sys

from repro.experiments.runner import run_benchmark_grid
from repro.experiments.tables import figure5_series
from repro.perf.report import aggregate_slowdowns

SUBSET = ["blackscholes", "bodytrack", "dedup", "swaptions",
          "barnes", "radiosity", "streamcluster"]


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    print(f"running {len(SUBSET)} benchmarks x 3 agents x 2-4 variants "
          f"(scale={scale}) ...\n")
    results = run_benchmark_grid(benchmarks=SUBSET, scale=scale)
    print(figure5_series(results, scale=scale))
    print()
    means = aggregate_slowdowns([r.to_slowdown() for r in results])
    print("subset means (paper full-suite Table 1 in parentheses):")
    paper = {"total_order": (2.76, 2.83, 2.87),
             "partial_order": (2.83, 2.83, 3.00),
             "wall_of_clocks": (1.14, 1.27, 1.38)}
    for agent, targets in paper.items():
        cells = "  ".join(
            f"{variants}v {means[(agent, variants)]:.2f}x "
            f"({target:.2f}x)"
            for variants, target in zip((2, 3, 4), targets,
                                        strict=True))
        print(f"  {agent:16s} {cells}")


if __name__ == "__main__":
    main()
