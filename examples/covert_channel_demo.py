#!/usr/bin/env python3
"""Section 5.4's covert channels, live.

Shows that MVEE replication itself can be abused by *malicious* programs
to exchange variant-private data (randomized pointer bits) between
variants — and then emit it through ordinary output without any
divergence for the monitor to detect.

Run:  python examples/covert_channel_demo.py
"""

from repro.core.mvee import run_mvee
from repro.diversity.spec import DiversitySpec
from repro.workloads.attacks import (
    TimingCovertChannel,
    TrylockCovertChannel,
)

ASLR = DiversitySpec(aslr=True, seed=2)


def main():
    print("== channel 1: replicated gettimeofday deltas ==")
    outcome = run_mvee(TimingCovertChannel(), variants=2, agent=None,
                       seed=5, diversity=ASLR)
    first = outcome.vms[0].threads["main"].result
    second = outcome.vms[1].threads["main"].result
    print(f"verdict: {outcome.verdict} (the monitor saw nothing)")
    print(f"variant 0 secret: {first['my_secret']:#04x} "
          f"(role {first['my_role']})")
    print(f"variant 1 secret: {second['my_secret']:#04x} "
          f"(role {second['my_role']})")
    print(f"decoded streams, identical in both variants: "
          f"{first['streams']}")
    print(f"emitted to stdout: {outcome.stdout.strip()!r}")
    print("-> both variants' randomized bits left the system.\n")

    print("== channel 2: replicated mutex-trylock results ==")
    for agent in ("total_order", "partial_order", "wall_of_clocks"):
        outcome = run_mvee(TrylockCovertChannel(), variants=2,
                           agent=agent, seed=7, diversity=ASLR)
        master = outcome.vms[0].threads["main"].result
        slave = outcome.vms[1].threads["main"].result
        print(f"{agent:16s}: verdict={outcome.verdict}, master secret "
              f"{master['my_secret']:#04x}, slave decoded "
              f"{slave['decoded']:#04x}")
    print("\nThe paper's conclusion: this is an issue with MVEEs in "
          "general, not with\nthe synchronization agents — but turning "
          "it into an attack on a real\nprogram would require code "
          "patterns that make the channel superfluous.")


if __name__ == "__main__":
    main()
