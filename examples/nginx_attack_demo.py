#!/usr/bin/env python3
"""The Section 5.5 story, end to end: protecting a threaded web server.

Acts out the paper's nginx narrative:

1. Run the server under the MVEE with only its pthread-based sync
   instrumented — it boots, then diverges as soon as requests arrive,
   because its *custom* (inline-assembly-style) primitives were missed.
2. Run the static analysis pipeline over the modelled nginx binary:
   51 sync ops identified (matching the paper), including the custom
   ``nginx.*`` sites.
3. Re-run fully instrumented, with ASLR + Disjoint Code Layouts: clean,
   all requests served, responses delivered exactly once.
4. Attack it with a CVE-2013-2028-style exploit tailored to variant 0's
   code layout: the native server is compromised (execve reached); the
   MVEE detects the divergence and kills the variants first.

Run:  python examples/nginx_attack_demo.py
"""

from repro.analysis.identify import identify_sync_ops
from repro.analysis.corpus import nginx_module
from repro.core.injection import instrument_sites
from repro.core.mvee import MVEE
from repro.diversity.spec import DiversitySpec, layouts_for
from repro.kernel.net import Network
from repro.kernel.vmem import LayoutBases
from repro.run import run_native
from repro.workloads.attacks import exploit_payload
from repro.workloads.nginx import (
    NginxConfig,
    NginxServer,
    TrafficStats,
    make_traffic,
    pthread_only_sites,
)

CONFIG = NginxConfig(pool_threads=8, connections=6,
                     requests_per_connection=3)
DIVERSITY = DiversitySpec(aslr=True, dcl=True, seed=11)


def serve(instrument, title, config=CONFIG, payload=None):
    stats = TrafficStats()
    mvee = MVEE(NginxServer(config), variants=2, agent="wall_of_clocks",
                seed=1, diversity=DIVERSITY, with_network=True,
                instrument=instrument,
                traffic=make_traffic(config, 0.0, stats,
                                     exploit_payload=payload),
                max_cycles=1e10)
    outcome = mvee.run()
    print(f"{title}: verdict={outcome.verdict}, "
          f"responses={stats.responses}")
    return outcome


def main():
    print("== 1. un-instrumented custom primitives ==")
    outcome = serve(pthread_only_sites, "pthread-only instrumentation")
    print(f"   (paper: 'quickly triggers a divergence when network "
          f"traffic starts flowing in')\n   -> {outcome.divergence}\n")

    print("== 2. static analysis of the nginx binary ==")
    report = identify_sync_ops(nginx_module())
    print(f"identified {sum(report.counts)} sync ops "
          f"(paper: 51); custom sites include:")
    for site in sorted(s for s in report.sites()
                       if s.startswith("nginx."))[:5]:
        print(f"   {site}")
    print()

    print("== 3. fully instrumented, ASLR + DCL ==")
    from repro.analysis.corpus import paper_corpus
    from repro.analysis.instrument import instrumented_sites
    sites = instrumented_sites(
        report, *(identify_sync_ops(m) for m in paper_corpus()[:3]))
    serve(instrument_sites(sites), "analysis-driven instrumentation")
    print("   (the paper: 'This whole process took less than fifteen "
          "minutes.')\n")

    print("== 4. the attack ==")
    attack_config = NginxConfig(pool_threads=8, connections=4,
                                requests_per_connection=2,
                                vulnerable=True)
    native_stats = TrafficStats()
    native = run_native(
        NginxServer(attack_config), seed=1, network=Network(),
        traffic=make_traffic(attack_config, 0.0, native_stats,
                             exploit_payload=exploit_payload(
                                 LayoutBases())))
    print(f"native server: "
          f"{'COMPROMISED (shell spawned)' if native.vm.kernel.exec_log else 'survived'}")

    victim_layout = layouts_for(DIVERSITY, 2)[0]
    outcome = serve(lambda site: True, "MVEE under attack",
                    config=attack_config,
                    payload=exploit_payload(victim_layout))
    spawned = any(vm.kernel.exec_log for vm in outcome.vms)
    print(f"shell spawned under MVEE: {spawned} "
          f"(the monitor killed the variants first)")


if __name__ == "__main__":
    main()
