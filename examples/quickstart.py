#!/usr/bin/env python3
"""Quickstart: why multithreaded programs break MVEEs, and how the
paper's synchronization agents fix it.

Runs a small communicating multithreaded program three ways:

1. natively (no MVEE) — for the baseline time;
2. under the MVEE with no agent — scheduling nondeterminism makes the
   variants' outputs diverge, and the monitor kills the set;
3. under the MVEE with each of the paper's three agents — the master's
   sync-op order is replayed in the slave, and execution stays in
   lockstep even with ASLR enabled.

Run:  python examples/quickstart.py
"""

from repro.core.mvee import run_mvee
from repro.diversity.spec import DiversitySpec
from repro.guest.program import GuestProgram
from repro.guest.sync import SpinLock
from repro.run import run_native


class BankAccount(GuestProgram):
    """Four tellers race to post transactions to one account; each
    prints a receipt containing the balance it observed — an output that
    depends on the thread schedule."""

    name = "bank"
    static_vars = ("lock", "balance")

    def main(self, ctx):
        lock = SpinLock(ctx.static_addr("lock"))
        tellers = yield from ctx.spawn_all(
            self.teller, [(lock, i) for i in range(4)])
        yield from ctx.join_all(tellers)
        balance = ctx.mem_load(ctx.static_addr("balance"))
        yield from ctx.printf(f"final balance: {balance}\n")
        return balance

    def teller(self, ctx, lock, teller_id):
        for txn in range(100):
            yield from ctx.compute(1_500)
            yield from lock.acquire(ctx)
            balance = ctx.mem_load(ctx.static_addr("balance"))
            ctx.mem_store(ctx.static_addr("balance"), balance + 10)
            yield from lock.release(ctx)
            if txn % 25 == 24:
                yield from ctx.printf(
                    f"teller {teller_id} saw balance {balance}\n")
        return 0


def main():
    program = BankAccount()

    native = run_native(program, seed=42)
    print("=== native run ===")
    print(native.stdout)
    print(f"native time: {native.report.seconds * 1e6:.0f} us simulated\n")

    print("=== MVEE, 2 variants, NO synchronization agent ===")
    outcome = run_mvee(program, variants=2, agent=None, seed=42)
    print(f"verdict: {outcome.verdict}")
    print(f"reason:  {outcome.divergence}\n")

    for agent in ("total_order", "partial_order", "wall_of_clocks"):
        outcome = run_mvee(program, variants=2, agent=agent, seed=42,
                           diversity=DiversitySpec(aslr=True, seed=7))
        slowdown = outcome.cycles / native.report.cycles
        print(f"=== MVEE + {agent} agent (ASLR on) ===")
        print(f"verdict: {outcome.verdict},  "
              f"slowdown vs native: {slowdown:.2f}x")
    print()
    print("The wall-of-clocks agent is the paper's contribution: same "
          "correctness,\nlowest overhead (Table 1: 1.14x for two "
          "variants vs ~2.8x for the others).")


if __name__ == "__main__":
    main()
