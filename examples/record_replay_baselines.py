#!/usr/bin/env python3
"""Why the paper chose record/replay over deterministic multithreading.

Demonstrates Section 2.1's argument executable-style:

* A Kendo-style DMT scheduler makes *identical* variants deterministic —
  the same schedule on every run, no MVEE divergence without recording
  anything.
* Diversify the variants (NOP-insertion-style instruction-count noise)
  and each variant deterministically computes a *different* schedule:
  the MVEE detects divergence again.
* The paper's record/replay agents are insensitive to instruction
  counts and handle the same diversity cleanly.
* Offline RecPlay-style record/replay reproduces a recorded schedule
  under any scheduler seed — the classic foundation the online agents
  adapt for MVEE use.

Run:  python examples/record_replay_baselines.py
"""

import pathlib
import sys

# Reuse the guest-program library that ships with the test suite.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro.baselines.recplay import record_execution, replay_execution
from repro.core.mvee import run_mvee
from repro.diversity.spec import DiversitySpec
from tests.guestlib import ScheduleWitnessProgram


def main():
    witness = ScheduleWitnessProgram(workers=4, iters=40)
    noise = DiversitySpec(noise=0.3, seed=5)

    print("== DMT (Kendo-style) ==")
    for seed in (0, 1, 2):
        outcome = run_mvee(witness, variants=2, agent="dmt", seed=seed,
                           max_cycles=5e9)
        print(f"identical variants, scheduler seed {seed}: "
              f"{outcome.verdict}  {outcome.stdout.strip()!r}")
    outcome = run_mvee(witness, variants=2, agent="dmt", seed=0,
                       max_cycles=5e9, diversity=noise)
    print(f"NOP-diversified variants: {outcome.verdict}  "
          "(each variant has a fixed but *different* schedule)")

    print("\n== the paper's agent on the same diversity ==")
    outcome = run_mvee(witness, variants=2, agent="wall_of_clocks",
                       seed=0, diversity=noise)
    print(f"wall-of-clocks, NOP-diversified: {outcome.verdict}")

    print("\n== RecPlay-style offline record/replay ==")
    log, recorded = record_execution(witness, seed=0)
    print(f"recorded {log.total} sync ops; output: "
          f"{recorded.stdout.strip()!r}")
    for replay_seed in (3, 4, 5):
        agent, replayed = replay_execution(witness, log,
                                           seed=replay_seed)
        match = replayed.stdout == recorded.stdout
        print(f"replay under seed {replay_seed}: "
              f"{'reproduced' if match else 'MISMATCH'} "
              f"({agent.immediate} ops immediate, "
              f"{agent.stalled} stalled)")
    print("\nnative control (no replay): outputs vary across seeds:")
    for seed in (3, 4, 5):
        print(f"  seed {seed}: "
              f"{run_native(witness, seed=seed).stdout.strip()!r}")


if __name__ == "__main__":
    main()
