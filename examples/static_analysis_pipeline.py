#!/usr/bin/env python3
"""The Section 4.3 pipeline, step by step, on the paper's own listings.

Walks through:

1. Stage 1 (the ``analysis.rb`` analogue) on Listing 1's spinlock:
   the LOCK CMPXCHG is found, the plain unlock store is not (yet).
2. Stage 2 (points-to): the unlock store aliases the CAS's variable and
   is classified as a type (iii) sync op.
3. Listing 2 (volatile-only flag): the documented false negative, and
   the paper's proposed volatile extension recovering it.
4. The DSA-vs-SVF imprecision corpus (Section 4.3.1).
5. The _Atomic type-qualifier fixpoint workflow of Figure 3.
6. Table 3 over the full modelled library corpus, and the bridge into a
   live MVEE run: the identified sites drive the instrumentation.

Run:  python examples/static_analysis_pipeline.py
"""

from repro.analysis.corpus import (
    TABLE3_PAPER,
    heap_imprecision_module,
    paper_corpus,
    spinlock_module,
    volatile_flag_module,
)
from repro.analysis.identify import identify_sync_ops, table3_rows
from repro.analysis.instrument import instrument_module, instrumented_sites
from repro.analysis.qualify import (
    CAddrOf,
    CAsmUse,
    CAssign,
    CProgram,
    CVar,
    refactor_to_fixpoint,
)
from repro.analysis.scanner import scan_module


def main():
    print("== 1+2. Listing 1: the ad-hoc spinlock ==")
    module = spinlock_module()
    scan = scan_module(module)
    print(f"stage 1 marked {len(scan.type1)} LOCK-prefixed and "
          f"{len(scan.type2)} XCHG instructions")
    print(f"sync-variable roots: {sorted(scan.sync_pointers)}")
    report = identify_sync_ops(module)
    print(f"stage 2 added {len(report.type3)} type (iii) accesses: "
          f"{[str(i) for i in report.type3]}")
    instrumented = instrument_module(module, report)
    print(f"instrumentation wrapped {instrumented.wrapped} sync ops "
          f"(Listing 3)\n")

    print("== 3. Listing 2: the volatile-only primitive ==")
    missed = identify_sync_ops(volatile_flag_module())
    print(f"identified sync ops: {sum(missed.counts)} "
          "(the documented false negative)")
    recovered = identify_sync_ops(volatile_flag_module(),
                                  treat_volatile_as_sync=True)
    print(f"with the volatile extension: {sum(recovered.counts)}\n")

    print("== 4. DSA (Steensgaard) vs SVF (Andersen) ==")
    steens = identify_sync_ops(heap_imprecision_module(),
                               analysis="steensgaard")
    anders = identify_sync_ops(heap_imprecision_module(),
                               analysis="andersen")
    print(f"unification marks {len(steens.type3)} heap accesses as sync "
          f"ops; subset analysis marks {len(anders.type3)} "
          "(the §4.3.1 imprecision)\n")

    print("== 5. the _Atomic qualifier fixpoint (Figure 3) ==")
    program = CProgram()
    for var in [CVar("spinlock"), CVar("p", is_pointer=True),
                CVar("q", is_pointer=True), CVar("asm_lock")]:
        program.add_var(var)
    program.statements = [CAddrOf(ptr="p", var="spinlock"),
                          CAssign(dst="q", src="p"),
                          CAddrOf(ptr="q", var="asm_lock"),
                          CAsmUse("asm_lock")]
    result = refactor_to_fixpoint(program, seed_vars={"spinlock"})
    print(f"qualified after {result.iterations} iterations: "
          f"{sorted(result.qualified)}")
    print(f"unfixable (inline asm): "
          f"{[d.message for d in result.unfixable]}\n")

    print("== 6. Table 3 over the modelled corpus ==")
    for name, t1, t2, t3 in table3_rows(paper_corpus()):
        paper = TABLE3_PAPER[name]
        print(f"  {name:24s} {t1:4d} {t2:4d} {t3:4d}   (paper {paper})")

    print("\n== bridge: analysis output drives a live MVEE ==")
    from repro.core.injection import instrument_sites
    from repro.core.mvee import run_mvee
    from repro.guest.program import GuestProgram
    from repro.guest.sync import Mutex

    class Demo(GuestProgram):
        static_vars = ("m", "x")

        def main(self, ctx):
            mutex = Mutex(ctx.static_addr("m"))
            tids = yield from ctx.spawn_all(
                self.worker, [(mutex,)] * 3)
            yield from ctx.join_all(tids)
            yield from ctx.printf(
                f"x={ctx.mem_load(ctx.static_addr('x'))}\n")

        def worker(self, ctx, mutex):
            for _ in range(50):
                yield from ctx.compute(800)
                yield from mutex.acquire(ctx)
                ctx.mem_store(ctx.static_addr("x"),
                              ctx.mem_load(ctx.static_addr("x")) + 1)
                yield from mutex.release(ctx)

    corpus = {m.name: m for m in paper_corpus()}
    sites = instrumented_sites(
        identify_sync_ops(corpus["libpthreads-2.19.so"]),
        identify_sync_ops(corpus["libc-2.19.so"]))
    outcome = run_mvee(Demo(), variants=2, agent="wall_of_clocks",
                       seed=1, instrument=instrument_sites(sites))
    print(f"MVEE with analysis-derived instrumentation: "
          f"{outcome.verdict} — {outcome.stdout.strip()}")


if __name__ == "__main__":
    main()
