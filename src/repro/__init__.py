"""repro — reproduction of "Taming Parallelism in a Multi-Variant
Execution Environment" (Volckaert et al., EuroSys 2017).

The package simulates a multi-core machine running diversified program
variants under a security-oriented MVEE, and implements the paper's
contribution — MVEE-aware synchronization-agent replication (total-order,
partial-order, and wall-of-clocks agents) — together with every substrate
it depends on: a virtual kernel, a nondeterministic thread scheduler, the
guest runtime libraries, the sync-op identification analyses, diversity
transforms, and the DMT / record-replay baselines.

Quick start::

    from repro.core.mvee import run_mvee
    from repro.workloads.parsec import make_benchmark

    program = make_benchmark("dedup")
    outcome = run_mvee(program, variants=2, agent="wall_of_clocks")
    print(outcome.verdict)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.errors import (
    DeadlockError,
    DivergenceError,
    GuestFault,
    ReproError,
)
from repro.run import NativeResult, run_native

__version__ = "1.0.0"

__all__ = [
    "run_native",
    "NativeResult",
    "ReproError",
    "DivergenceError",
    "DeadlockError",
    "GuestFault",
    "__version__",
]
