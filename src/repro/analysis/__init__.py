"""Static identification and instrumentation of sync ops (Sections 4.3-4.4).

The pipeline mirrors the paper's workflow end to end:

1. :mod:`repro.analysis.ir` — an x86-flavoured mini-IR with LOCK prefixes,
   XCHG, aligned loads/stores, pointer-assignment statements and debug
   info (the compiled binary + symbols).
2. :mod:`repro.analysis.scanner` — stage 1, the ``analysis.rb`` analogue:
   mark every type (i) (LOCK-prefixed) and type (ii) (XCHG) instruction
   and map it to its source variable through debug info.
3. :mod:`repro.analysis.pointsto` — Steensgaard (unification, DSA-style)
   and Andersen (subset, SVF-style) points-to analyses, including the
   paper's observation that unification collapses incompatible heap
   objects and over-approximates.
4. :mod:`repro.analysis.identify` — stage 2: mark type (iii) aligned
   loads/stores that may alias a stage-1 variable; soundness caveats
   (volatile-only primitives are missed — Listing 2).
5. :mod:`repro.analysis.qualify` — the modified-clang ``_Atomic``
   qualifier checker and the fixpoint refactoring loop of Figure 3.
6. :mod:`repro.analysis.instrument` — wrap identified sync ops with
   ``before_sync_op`` / ``after_sync_op`` calls (Listing 3) and emit the
   site set the MVEE's injection layer consumes.

On top of the pipeline sits a reusable interprocedural framework:

7. :mod:`repro.analysis.cfg` — basic-block CFG construction per function.
8. :mod:`repro.analysis.dataflow` — a generic worklist fixpoint engine
   (forward/backward, configurable join) with the must-hold lock-set
   analysis as its first client.
9. :mod:`repro.analysis.callgraph` — call graphs with indirect calls
   resolved through the points-to results.
10. :mod:`repro.analysis.lockorder` — RacerX-style static lock-order
    graph, cycle enumeration into deadlock candidates with trylock /
    gate-ordered suppression, and the cross-check against the runtime
    wait-for-graph evidence (:mod:`repro.races.deadlock`).
"""

from repro.analysis.ir import (
    Function,
    Instruction,
    Module,
    GlobalVar,
    mem,
    imm,
)
from repro.analysis.scanner import ScanReport, scan_module
from repro.analysis.pointsto import AndersenAnalysis, SteensgaardAnalysis
from repro.analysis.identify import IdentificationReport, identify_sync_ops
from repro.analysis.instrument import (
    InstrumentationMismatchError,
    instrument_module,
    instrumented_sites,
)
from repro.analysis.qualify import (
    AtomicQualifierChecker,
    refactor_to_fixpoint,
)
from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.dataflow import (
    DataflowProblem,
    DataflowResult,
    LockHeldAnalysis,
    solve,
)
from repro.analysis.callgraph import CallGraph, CallSite, build_callgraph
from repro.analysis.lockorder import (
    AcquisitionEdge,
    CandidateVerdict,
    DeadlockCandidate,
    LockOrderReport,
    analyze_corpus,
    analyze_module,
    cross_check,
)

__all__ = [
    "Module",
    "Function",
    "Instruction",
    "GlobalVar",
    "mem",
    "imm",
    "ScanReport",
    "scan_module",
    "SteensgaardAnalysis",
    "AndersenAnalysis",
    "IdentificationReport",
    "identify_sync_ops",
    "instrumented_sites",
    "instrument_module",
    "InstrumentationMismatchError",
    "AtomicQualifierChecker",
    "refactor_to_fixpoint",
    "CFG",
    "BasicBlock",
    "build_cfg",
    "DataflowProblem",
    "DataflowResult",
    "LockHeldAnalysis",
    "solve",
    "CallGraph",
    "CallSite",
    "build_callgraph",
    "AcquisitionEdge",
    "DeadlockCandidate",
    "CandidateVerdict",
    "LockOrderReport",
    "analyze_module",
    "analyze_corpus",
    "cross_check",
]
