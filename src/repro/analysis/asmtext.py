"""Parse textual (AT&T-flavoured) assembly listings into the analysis IR.

The paper's stage-1 tool is "a Ruby script [that] marks all instructions
of type (i) and (ii) and uses the debugging info in the program binary to
map the instructions to their corresponding source lines".  This module
is the front end that makes our pipeline consume the same kind of input:
a disassembly listing with debug annotations.

Accepted syntax, one statement per line::

    .module libfoo.so             # names the module
    .func   spinlock_lock         # starts a function
    .loc    spinlock.c 4          # debug info for following instructions
    .fact   ptr = &spinlock       # pointer facts for stage 2:
    .fact   q = ptr               #   copy
    .fact   q = *ptr              #   load
    .fact   *ptr = q              #   store
    .fact   h = malloc buffer_t @alloc1   # heap object w/ type + site id
    lock cmpxchg %eax, (ptr)      ; site=listing1.lock.cmpxchg
    xchg %eax, (ptr)
    mov $0, (ptr)                 # plain store (candidate type iii)
    mov (ptr), %eax               # plain load
    mov.u $1, (ptr)               # '.u' suffix: unaligned access

Memory operands name *pointer variables* directly (``(ptr)`` or
``8(ptr)``), matching how the source-level stage-2 analysis reasons;
register and immediate operands use ``%name`` / ``$value``.  ``; site=``
comments attach the run-time site label that links the analysis to the
simulator's instrumentation.
"""

from __future__ import annotations

import re

from repro.analysis.ir import (
    AddrOf,
    Copy,
    Function,
    HeapAlloc,
    Imm,
    Instruction,
    LoadPtr,
    Mem,
    Module,
    Reg,
    StorePtr,
)


class AsmParseError(ValueError):
    """A malformed listing line (reported with its line number)."""


_FACT_PATTERNS = [
    (re.compile(r"^(\w+)\s*=\s*&(\w+)$"),
     lambda m: AddrOf(dst=m.group(1), obj=m.group(2))),
    (re.compile(r"^(\w+)\s*=\s*malloc\s+(\w+)\s*@(\w+)$"),
     lambda m: HeapAlloc(dst=m.group(1), site_id=m.group(3),
                         type_name=m.group(2))),
    (re.compile(r"^(\w+)\s*=\s*\*(\w+)$"),
     lambda m: LoadPtr(dst=m.group(1), src=m.group(2))),
    (re.compile(r"^\*(\w+)\s*=\s*(\w+)$"),
     lambda m: StorePtr(dst=m.group(1), src=m.group(2))),
    (re.compile(r"^(\w+)\s*=\s*(\w+)$"),
     lambda m: Copy(dst=m.group(1), src=m.group(2))),
]

_MEM_OPERAND = re.compile(r"^(?:(-?\d+))?\((\w+)\)$")


def _parse_operand(token: str):
    token = token.strip()
    if token.startswith("%"):
        return Reg(token[1:])
    if token.startswith("$"):
        try:
            return Imm(int(token[1:], 0))
        except ValueError as exc:
            raise AsmParseError(f"bad immediate {token!r}") from exc
    match = _MEM_OPERAND.match(token)
    if match:
        offset = int(match.group(1)) if match.group(1) else 0
        return Mem(ptr=match.group(2), offset=offset)
    raise AsmParseError(f"unrecognized operand {token!r}")


def _split_comment(line: str) -> tuple[str, str | None]:
    """Strip comments; return (code, site-label-or-None)."""
    site = None
    if ";" in line:
        line, _, annotation = line.partition(";")
        annotation = annotation.strip()
        if annotation.startswith("site="):
            site = annotation[len("site="):].strip()
    if "#" in line:
        line = line.partition("#")[0]
    return line.strip(), site


def parse_asm(text: str, default_module: str = "listing") -> Module:
    """Parse a listing into a :class:`Module` ready for the pipeline."""
    module = Module(name=default_module)
    function: Function | None = None
    current_loc: tuple[str, int] | None = None

    def ensure_function() -> Function:
        nonlocal function
        if function is None:
            function = Function(name="anonymous")
            module.functions.append(function)
        return function

    for lineno, raw in enumerate(text.splitlines(), start=1):
        code, site = _split_comment(raw)
        if not code:
            continue
        try:
            if code.startswith(".module"):
                module.name = code.split(None, 1)[1].strip()
            elif code.startswith(".func"):
                function = Function(name=code.split(None, 1)[1].strip())
                module.functions.append(function)
            elif code.startswith(".loc"):
                _, source_file, line_number = code.split()
                current_loc = (source_file, int(line_number))
            elif code.startswith(".fact"):
                fact_text = code.split(None, 1)[1].strip()
                for pattern, builder in _FACT_PATTERNS:
                    match = pattern.match(fact_text)
                    if match:
                        ensure_function().pointer_facts.append(
                            builder(match))
                        break
                else:
                    raise AsmParseError(
                        f"unrecognized fact {fact_text!r}")
            else:
                ensure_function().instructions.append(
                    _parse_instruction(code, site, current_loc))
        except AsmParseError as exc:
            raise AsmParseError(f"line {lineno}: {exc}") from None
        except (IndexError, ValueError) as exc:
            raise AsmParseError(f"line {lineno}: {exc}") from None
    return module


def _parse_instruction(code: str, site: str | None,
                       loc: tuple[str, int] | None) -> Instruction:
    lock_prefix = False
    tokens = code.split(None, 1)
    opcode = tokens[0].lower()
    if opcode == "lock":
        lock_prefix = True
        if len(tokens) < 2:
            raise AsmParseError("dangling lock prefix")
        tokens = tokens[1].split(None, 1)
        opcode = tokens[0].lower()
    aligned = True
    if opcode.endswith(".u"):
        aligned = False
        opcode = opcode[:-2]
    operand_text = tokens[1] if len(tokens) > 1 else ""
    operands = tuple(_parse_operand(tok)
                     for tok in operand_text.split(",") if tok.strip())
    # AT&T order is src, dst; the IR stores (dst, src...) like its
    # builders do, so swap two-operand instructions.
    if len(operands) == 2:
        operands = (operands[1], operands[0])
    return Instruction(opcode=opcode, operands=operands,
                       lock_prefix=lock_prefix, site=site, source=loc,
                       aligned=aligned)


#: Listing 1 of the paper, as a disassembly listing (the textual twin of
#: :func:`repro.analysis.corpus.spinlock_module`).
LISTING1_ASM = """
.module listing1
.func spinlock_lock
.loc listing1.c 4
.fact ptr_lock = &spinlock
lock cmpxchg %eax, (ptr_lock)    ; site=listing1.lock.cmpxchg
.func spinlock_unlock
.loc listing1.c 9
.fact ptr_unlock = &spinlock
mov $0, (ptr_unlock)             ; site=listing1.unlock.store
"""
