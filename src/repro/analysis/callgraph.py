"""Call graphs over the mini-IR, with points-to-resolved indirect calls.

A ``call`` instruction's operand is either a ``str`` naming the callee
(direct) or a :class:`~repro.analysis.ir.Reg` whose name is a pointer
variable (indirect).  Indirect targets resolve through the same
Steensgaard/Andersen results stage 2 uses: a function is *address
taken* when some ``AddrOf`` fact's object is its name, and an indirect
call may reach every address-taken function its pointer may point to.
Unresolvable indirect calls (empty points-to set, or no address-taken
functions) produce a call site with no callees — the lock-order pass
treats those as lock-balanced no-ops, the same optimistic assumption
it makes for calls out of the module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.ir import Instruction, Module, Reg
from repro.analysis.pointsto import AndersenAnalysis, SteensgaardAnalysis


@dataclass(frozen=True)
class CallSite:
    """One ``call`` instruction and its resolved callees."""

    caller: str
    callees: tuple[str, ...]
    direct: bool
    instruction: Instruction

    def __str__(self) -> str:
        kind = "direct" if self.direct else "indirect"
        targets = ", ".join(self.callees) or "<unresolved>"
        return f"{self.caller} --{kind}--> {targets}"


@dataclass
class CallGraph:
    """Who calls whom, per module."""

    module: Module
    sites: list[CallSite] = field(default_factory=list)
    #: caller name -> set of callee names.
    edges: dict[str, set[str]] = field(default_factory=dict)

    def callees(self, function: str) -> frozenset[str]:
        return frozenset(self.edges.get(function, ()))

    def callers(self, function: str) -> frozenset[str]:
        return frozenset(name for name, targets in self.edges.items()
                         if function in targets)

    def roots(self) -> list[str]:
        """Functions never called within the module (entry candidates).

        Falls back to every function when the graph is one big cycle —
        the lock-order pass must not silently skip such modules.
        """
        called: set[str] = set()
        for targets in self.edges.values():
            called |= targets
        roots = [fn.name for fn in self.module.functions
                 if fn.name not in called]
        return roots or [fn.name for fn in self.module.functions]

    def reachable(self, start: str) -> frozenset[str]:
        seen = {start}
        frontier = [start]
        while frontier:
            name = frontier.pop()
            for callee in self.edges.get(name, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return frozenset(seen)


def build_callgraph(module: Module,
                    analysis: str | object = "andersen") -> CallGraph:
    """Build the call graph of ``module``.

    ``analysis`` is a points-to analysis name (``"andersen"`` /
    ``"steensgaard"``) or an already-computed analysis object exposing
    ``points_to``; pass the object to share one fixpoint across the
    call graph and the lock-order pass.
    """
    if isinstance(analysis, str):
        from repro.analysis.identify import ANALYSES
        if analysis not in ANALYSES:
            raise ValueError(f"unknown points-to analysis {analysis!r}; "
                             f"choose from {sorted(ANALYSES)}")
        pointsto = ANALYSES[analysis](module)
    else:
        pointsto = analysis
    function_names = {fn.name for fn in module.functions}
    graph = CallGraph(module=module)
    graph.edges = {fn.name: set() for fn in module.functions}
    for function in module.functions:
        for instruction in function.instructions:
            if not instruction.is_call:
                continue
            target = instruction.call_target()
            if isinstance(target, str):
                callees = ((target,) if target in function_names else ())
                direct = True
            elif isinstance(target, Reg):
                resolved = pointsto.points_to(target.name)
                callees = tuple(sorted(
                    obj for obj in resolved
                    if isinstance(obj, str) and obj in function_names))
                direct = False
            else:
                callees, direct = (), True
            site = CallSite(caller=function.name, callees=callees,
                            direct=direct, instruction=instruction)
            graph.sites.append(site)
            graph.edges[function.name].update(callees)
    return graph


__all__ = [
    "CallGraph",
    "CallSite",
    "build_callgraph",
    "AndersenAnalysis",
    "SteensgaardAnalysis",
]
