"""Basic-block control-flow graphs over the analysis mini-IR.

The corpus functions were straight-line code until the interprocedural
layer arrived; :mod:`repro.analysis.ir` now defines conventional control
opcodes (``call``/``ret``/``jmp``/``jcc``/``label``) and this module
turns a :class:`~repro.analysis.ir.Function` into the classic
basic-block CFG every dataflow client consumes:

* a *leader* is the first instruction, any ``label``, and any
  instruction following a terminator (``ret``/``jmp``/``jcc``);
* a block ending in ``jmp`` has one successor (the target), ``jcc`` has
  two (target + fall-through), ``ret`` has none, and anything else falls
  through;
* ``call`` does **not** end a block — interprocedural effects are the
  call graph's business (:mod:`repro.analysis.callgraph`), not the
  CFG's.

A branch to an unknown label is a malformed function and raises
``ValueError`` — silently treating it as a fall-through would make the
lock-order analysis unsound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.ir import (
    BRANCH_OPCODE,
    JUMP_OPCODE,
    RET_OPCODE,
    Function,
    Instruction,
)


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run."""

    index: int
    instructions: list[Instruction] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)
    #: Label naming this block, when it starts with a ``label`` pseudo-op.
    label: str | None = None

    @property
    def terminator(self) -> Instruction | None:
        last = self.instructions[-1] if self.instructions else None
        return last if last is not None and last.is_terminator else None

    def __str__(self) -> str:
        head = f"B{self.index}" + (f" ({self.label})" if self.label else "")
        succ = ", ".join(f"B{s}" for s in self.successors) or "-"
        return f"{head} -> {succ}"


@dataclass
class CFG:
    """The control-flow graph of one function."""

    function: Function
    blocks: list[BasicBlock] = field(default_factory=list)

    @property
    def entry(self) -> BasicBlock | None:
        return self.blocks[0] if self.blocks else None

    def exit_blocks(self) -> list[BasicBlock]:
        """Blocks with no successors (``ret`` or fall-off-the-end)."""
        return [block for block in self.blocks if not block.successors]

    def block_count(self) -> int:
        return len(self.blocks)

    def edge_count(self) -> int:
        return sum(len(block.successors) for block in self.blocks)

    def reverse_postorder(self) -> list[BasicBlock]:
        """Blocks in reverse postorder from the entry (the canonical
        worklist seeding order for forward problems)."""
        if not self.blocks:
            return []
        seen: set[int] = set()
        order: list[int] = []
        # Iterative DFS with an explicit stack (deep CFGs must not hit
        # the interpreter recursion limit).
        stack: list[tuple[int, int]] = [(0, 0)]
        seen.add(0)
        while stack:
            index, child = stack[-1]
            successors = self.blocks[index].successors
            if child < len(successors):
                stack[-1] = (index, child + 1)
                succ = successors[child]
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, 0))
            else:
                stack.pop()
                order.append(index)
        order.reverse()
        # Unreachable blocks go last, in index order, so clients still
        # see every block exactly once.
        order.extend(i for i in range(len(self.blocks)) if i not in seen)
        return [self.blocks[i] for i in order]


def build_cfg(function: Function) -> CFG:
    """Split ``function`` into basic blocks and wire the edges."""
    instructions = function.instructions
    cfg = CFG(function=function)
    if not instructions:
        return cfg
    # 1. leaders.
    leaders = {0}
    for position, instruction in enumerate(instructions):
        if instruction.is_label:
            leaders.add(position)
        if instruction.is_terminator and position + 1 < len(instructions):
            leaders.add(position + 1)
    starts = sorted(leaders)
    # 2. blocks + label map.
    label_to_block: dict[str, int] = {}
    for block_index, start in enumerate(starts):
        end = (starts[block_index + 1] if block_index + 1 < len(starts)
               else len(instructions))
        block = BasicBlock(index=block_index,
                           instructions=instructions[start:end])
        first = block.instructions[0]
        if first.is_label:
            block.label = first.operands[0]
            label_to_block[block.label] = block_index
        cfg.blocks.append(block)
    # 3. edges.
    for block in cfg.blocks:
        terminator = block.terminator
        fall_through = block.index + 1 < len(cfg.blocks)
        if terminator is None:
            if fall_through:
                block.successors.append(block.index + 1)
            continue
        if terminator.opcode == RET_OPCODE:
            continue
        target = terminator.branch_target()
        if target not in label_to_block:
            raise ValueError(
                f"{function.name}: branch to unknown label {target!r}")
        if terminator.opcode == JUMP_OPCODE:
            block.successors.append(label_to_block[target])
        elif terminator.opcode == BRANCH_OPCODE:
            block.successors.append(label_to_block[target])
            if fall_through:
                block.successors.append(block.index + 1)
    for block in cfg.blocks:
        for succ in block.successors:
            cfg.blocks[succ].predecessors.append(block.index)
    return cfg
