"""IR corpora modelling the code bases the paper analyzed (Table 3).

The real evaluation disassembled glibc, libpthread, libgomp, libstdc++
and four PARSEC binaries.  We model each as an IR module with the same
*population structure*: the number of type (i), (ii) and (iii)
instructions matches the paper's Table 3 row, built out of synthetic
primitives (a LOCK-prefixed op + plain accesses aliasing its variable)
plus a large population of non-sync filler accesses the analysis must
reject.

Two kinds of instructions coexist:

* **runtime-site instructions** carry the exact site labels of the guest
  runtime libraries (:mod:`repro.guest.sync`, ``libc``, ``gomp``, and the
  nginx custom primitives), so the pipeline's output can be fed straight
  into the MVEE's instrumentation predicate — the end-to-end bridge the
  tests exercise;
* **synthetic padding** brings each module to the paper's counts.

Also provided: Listing 1 (the ad-hoc spinlock whose unlock store is found
via points-to), Listing 2 (the volatile-only primitive the analysis
misses), and a heap-imprecision corpus exposing the Steensgaard/DSA
unification failure of Section 4.3.1.
"""

from __future__ import annotations

from repro.analysis.ir import (
    AddrOf,
    Copy,
    Function,
    GlobalVar,
    HeapAlloc,
    Instruction,
    Module,
    Reg,
    imm,
    mem,
)

#: Paper Table 3 rows: module -> (type i, type ii, type iii).
TABLE3_PAPER = {
    "libc-2.19.so": (319, 409, 94),
    "libpthreads-2.19.so": (163, 81, 160),
    "libgomp.so": (68, 38, 13),
    "libstdc++.so": (162, 3, 25),
    "bodytrack": (201, 0, 8),
    "facesim": (385, 0, 8),
    "raytrace": (170, 0, 8),
    "vips": (4, 0, 6),
}

#: Total sync ops identified in the paper's nginx configuration (§5.5).
NGINX_SYNC_OPS = 51

#: Runtime sites per modelled library: (site, kind) where kind selects the
#: instruction class: "cmpxchg"/"xadd" -> type (i), "xchg" -> type (ii),
#: "load"/"store" -> type (iii).
_LIBPTHREAD_SITES = [
    ("libpthread.spinlock.lock.cmpxchg", "cmpxchg"),
    ("libpthread.spinlock.unlock.store", "store"),
    ("libpthread.ticketlock.take.xadd", "xadd"),
    ("libpthread.ticketlock.poll.load", "load"),
    ("libpthread.ticketlock.serve.store", "store"),
    ("libpthread.mutex.lock.cmpxchg", "cmpxchg"),
    ("libpthread.mutex.lock.xchg", "xchg"),
    ("libpthread.mutex.trylock.cmpxchg", "cmpxchg"),
    ("libpthread.mutex.unlock.xchg", "xchg"),
    ("libpthread.cond.wait.load", "load"),
    ("libpthread.cond.signal.xadd", "xadd"),
    ("libpthread.barrier.arrive.xadd", "xadd"),
    ("libpthread.barrier.generation.load", "load"),
    ("libpthread.barrier.generation.xadd", "xadd"),
    ("libpthread.barrier.reset.store", "store"),
    ("libpthread.sem.trywait.cmpxchg", "cmpxchg"),
    ("libpthread.sem.value.load", "load"),
    ("libpthread.sem.post.xadd", "xadd"),
    ("libpthread.once.claim.cmpxchg", "cmpxchg"),
    ("libpthread.once.state.load", "load"),
    ("libpthread.once.done.store", "store"),
    ("libpthread.rwlock.state.cmpxchg", "cmpxchg"),
    ("libpthread.rwlock.state.load", "load"),
    ("libpthread.rwlock.writers.xadd", "xadd"),
    ("libpthread.rwlock.writers.load", "load"),
]

_LIBC_SITES = [
    ("libc.malloc.lock.cmpxchg", "cmpxchg"),
    ("libc.malloc.unlock.store", "store"),
]

_LIBGOMP_SITES = [
    ("libgomp.dynamic_next.xadd", "xadd"),
    ("libgomp.remaining.load", "load"),
]

#: nginx's custom synchronization (inline asm + intrinsics, §5.5).
NGINX_SITES = [
    ("nginx.spinlock.lock.cmpxchg", "cmpxchg"),
    ("nginx.spinlock.unlock.store", "store"),
    ("nginx.queue.head.xadd", "xadd"),
    ("nginx.queue.tail.xadd", "xadd"),
    ("nginx.queue.slot.load", "load"),
    ("nginx.queue.slot.store", "store"),
    ("nginx.accept_mutex.xchg", "xchg"),
    ("nginx.stats.requests.xadd", "xadd"),
]


def _primitive(var: str, site: str | None, kind: str, index: int,
               source_file: str) -> Function:
    """One synthetic primitive: a pointer to ``var`` plus one access."""
    pointer = f"p_{var}_{index}"
    facts = [AddrOf(pointer, var)]
    source = (source_file, 100 + index)
    if kind == "cmpxchg":
        instruction = Instruction("cmpxchg", (mem(pointer), Reg("eax")),
                                  lock_prefix=True, site=site,
                                  source=source)
    elif kind == "xadd":
        instruction = Instruction("xadd", (mem(pointer), Reg("eax")),
                                  lock_prefix=True, site=site,
                                  source=source)
    elif kind == "xchg":
        instruction = Instruction("xchg", (mem(pointer), Reg("eax")),
                                  site=site, source=source)
    elif kind == "load":
        instruction = Instruction("mov", (Reg("eax"), mem(pointer)),
                                  site=site, source=source)
    elif kind == "store":
        instruction = Instruction("mov", (mem(pointer), imm(0)),
                                  site=site, source=source)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown primitive kind {kind!r}")
    return Function(name=f"fn_{var}_{index}",
                    instructions=[instruction], pointer_facts=facts)


def _filler(index: int, source_file: str) -> Function:
    """A non-sync access the analysis must reject."""
    pointer = f"fill_p{index}"
    return Function(
        name=f"filler{index}",
        instructions=[Instruction("mov", (Reg("ebx"), mem(pointer)),
                                  source=(source_file, 5000 + index))],
        pointer_facts=[AddrOf(pointer, f"plain_var{index}")])


def make_library_module(name: str, counts: tuple[int, int, int],
                        runtime_sites: list[tuple[str, str]] = (),
                        fillers: int = 200) -> Module:
    """Build a module whose two-stage analysis yields exactly ``counts``.

    Runtime-site instructions come first; synthetic primitives pad each
    class to the target.  Every type (iii) access aliases the sync
    variable of some type (i)/(ii) primitive, so stage 2 genuinely has to
    find it via points-to.
    """
    want1, want2, want3 = counts
    module = Module(name=name)
    have1 = have2 = have3 = 0
    index = 0
    locked_var_names: list[str] = []

    def add(var: str, site: str | None, kind: str):
        nonlocal index
        module.functions.append(_primitive(var, site, kind, index, name))
        if kind in ("cmpxchg", "xadd", "xchg"):
            locked_var_names.append(var)
        index += 1

    # 1. runtime sites, each on its own sync variable; plain accesses
    #    alias the variable of the matching locked primitive.
    site_vars: dict[str, str] = {}
    for site, kind in runtime_sites:
        prefix = site.rsplit(".", 2)[0]  # e.g. libpthread.spinlock
        var = site_vars.setdefault(prefix, f"sv_{prefix.replace('.', '_')}")
        add(var, site, kind)
        if kind in ("cmpxchg", "xadd"):
            have1 += 1
        elif kind == "xchg":
            have2 += 1
        else:
            have3 += 1
    # Ensure every plain runtime access aliases a locked op on its
    # variable: add an (unlabeled) locked op for prefixes with only
    # plain accesses.  (Real primitives always have one; our site lists
    # do too, so this is a safety net that normally adds nothing.)
    locked_vars = {fn.pointer_facts[0].obj
                   for fn in module.functions
                   if fn.instructions[0].lock_prefix
                   or fn.instructions[0].opcode == "xchg"}
    for var in site_vars.values():
        if var not in locked_vars:
            add(var, None, "cmpxchg")
            have1 += 1
    # 2. synthetic padding.
    while have1 < want1:
        add(f"syn1_{have1}", None, "cmpxchg" if have1 % 2 else "xadd")
        have1 += 1
    while have2 < want2:
        add(f"syn2_{have2}", None, "xchg")
        have2 += 1
    pad3 = 0
    while have3 < want3:
        # alias an existing locked-primitive variable (round-robin).
        target = locked_var_names[pad3 % len(locked_var_names)]
        add(target, None, "load" if pad3 % 2 else "store")
        have3 += 1
        pad3 += 1
    # 3. fillers (rejected by stage 2).
    for filler_index in range(fillers):
        module.functions.append(_filler(filler_index, name))
    return module


def paper_corpus() -> list[Module]:
    """All eight Table 3 modules with the paper's counts."""
    runtime = {
        "libc-2.19.so": _LIBC_SITES,
        "libpthreads-2.19.so": _LIBPTHREAD_SITES,
        "libgomp.so": _LIBGOMP_SITES,
    }
    return [make_library_module(name, counts,
                                runtime_sites=runtime.get(name, []))
            for name, counts in TABLE3_PAPER.items()]


def nginx_module() -> Module:
    """The nginx binary: custom primitives plus padding to 51 sync ops."""
    labeled = len(NGINX_SITES)
    pad = NGINX_SYNC_OPS - labeled
    # distribute padding over classes roughly like ad-hoc server code:
    # mostly locked RMWs, some plain flag reads.
    pad1 = pad * 2 // 3
    pad3 = pad - pad1
    counts = (pad1 + sum(1 for _, k in NGINX_SITES
                         if k in ("cmpxchg", "xadd")),
              sum(1 for _, k in NGINX_SITES if k == "xchg"),
              pad3 + sum(1 for _, k in NGINX_SITES
                         if k in ("load", "store")))
    return make_library_module("nginx", counts,
                               runtime_sites=NGINX_SITES, fillers=400)


def spinlock_module() -> Module:
    """Listing 1: spinlock_lock (LOCK CMPXCHG) + spinlock_unlock (plain
    store found by points-to)."""
    module = Module(name="listing1")
    module.functions.append(Function(
        name="spinlock_lock",
        instructions=[Instruction(
            "cmpxchg", (mem("ptr_lock"), Reg("eax")), lock_prefix=True,
            site="listing1.lock.cmpxchg", source=("listing1.c", 4))],
        pointer_facts=[AddrOf("ptr_lock", "spinlock")]))
    module.functions.append(Function(
        name="spinlock_unlock",
        instructions=[Instruction(
            "mov", (mem("ptr_unlock"), imm(0)),
            site="listing1.unlock.store", source=("listing1.c", 9))],
        pointer_facts=[AddrOf("ptr_unlock", "spinlock")]))
    module.globals.append(GlobalVar("spinlock"))
    return module


def volatile_flag_module() -> Module:
    """Listing 2: a volatile flag accessed only by plain load/store — the
    documented false negative (no LOCK/XCHG root exists)."""
    module = Module(name="listing2")
    module.functions.append(Function(
        name="signal_thread",
        instructions=[Instruction(
            "mov", (mem("ptr_sig"), imm(1)),
            site="listing2.signal.store", source=("listing2.c", 4))],
        pointer_facts=[AddrOf("ptr_sig", "flag")]))
    module.functions.append(Function(
        name="wait_until_signaled",
        instructions=[Instruction(
            "mov", (Reg("eax"), mem("ptr_wait")),
            site="listing2.wait.load", source=("listing2.c", 8))],
        pointer_facts=[AddrOf("ptr_wait", "flag")]))
    module.globals.append(GlobalVar("flag", volatile=True))
    return module


def guarded_counter_module() -> Module:
    """A shared counter correctly guarded by a spinlock — the lockset
    lint's clean baseline.

    Both accessor functions follow acquire (LOCK CMPXCHG on the lock) →
    plain access to the counter → release (plain store to the lock), so
    the counter's lockset intersection is ``{lock}`` and no candidate is
    reported, even though two functions write the same global.
    """
    module = Module(name="guarded_counter")
    for index, name in enumerate(("bump_counter", "read_counter")):
        lock_ptr = f"g_lock_{index}"
        counter_ptr = f"g_counter_{index}"
        access = (Instruction("mov", (mem(counter_ptr), imm(1)),
                              site=f"guarded.{name}.store",
                              source=("guarded.c", 10 + index))
                  if name == "bump_counter" else
                  Instruction("mov", (Reg("eax"), mem(counter_ptr)),
                              site=f"guarded.{name}.load",
                              source=("guarded.c", 10 + index)))
        module.functions.append(Function(
            name=name,
            instructions=[
                Instruction("cmpxchg", (mem(lock_ptr), Reg("eax")),
                            lock_prefix=True,
                            source=("guarded.c", 8 + index)),
                access,
                Instruction("mov", (mem(lock_ptr), imm(0)),
                            source=("guarded.c", 12 + index)),
            ],
            pointer_facts=[AddrOf(lock_ptr, "lock"),
                           AddrOf(counter_ptr, "counter")]))
    module.globals.append(GlobalVar("counter"))
    module.globals.append(GlobalVar("lock"))
    return module


def racy_counter_module() -> Module:
    """The same counter with the locking forgotten in one accessor.

    ``bump_counter`` takes the lock; ``peek_counter`` reads the counter
    bare.  The locksets are ``{lock}`` and ``{}``, the intersection is
    empty, and the counter is written — a textbook Eraser candidate.
    """
    module = Module(name="racy_counter")
    module.functions.append(Function(
        name="bump_counter",
        instructions=[
            Instruction("cmpxchg", (mem("r_lock"), Reg("eax")),
                        lock_prefix=True, source=("racy.c", 8)),
            Instruction("mov", (mem("r_counter"), imm(1)),
                        site="racy.bump_counter.store",
                        source=("racy.c", 9)),
            Instruction("mov", (mem("r_lock"), imm(0)),
                        source=("racy.c", 10)),
        ],
        pointer_facts=[AddrOf("r_lock", "lock"),
                       AddrOf("r_counter", "counter")]))
    module.functions.append(Function(
        name="peek_counter",
        instructions=[Instruction(
            "mov", (Reg("eax"), mem("r_peek")),
            site="racy.peek_counter.load", source=("racy.c", 15))],
        pointer_facts=[AddrOf("r_peek", "counter")]))
    module.globals.append(GlobalVar("counter"))
    module.globals.append(GlobalVar("lock"))
    return module


def _lock_acquire(pointer: str, site: str | None,
                  source: tuple[str, int]) -> Instruction:
    return Instruction("cmpxchg", (mem(pointer), Reg("eax")),
                       lock_prefix=True, site=site, source=source)


def _lock_release(pointer: str, source: tuple[str, int]) -> Instruction:
    return Instruction("mov", (mem(pointer), imm(0)), source=source)


def abba_module() -> Module:
    """The seeded ABBA inversion: two functions nest two locks in
    opposite orders — the textbook lock-order deadlock the static pass
    must flag (cycle ``lock_a -> lock_b -> lock_a``)."""
    module = Module(name="abba")
    module.functions.append(Function(
        name="thread_a",
        instructions=[
            _lock_acquire("a_lock_a", "abba.thread_a.lock_a.cmpxchg",
                          ("abba.c", 10)),
            _lock_acquire("a_lock_b", "abba.thread_a.lock_b.cmpxchg",
                          ("abba.c", 11)),
            _lock_release("a_lock_b", ("abba.c", 13)),
            _lock_release("a_lock_a", ("abba.c", 14)),
        ],
        pointer_facts=[AddrOf("a_lock_a", "lock_a"),
                       AddrOf("a_lock_b", "lock_b")]))
    module.functions.append(Function(
        name="thread_b",
        instructions=[
            _lock_acquire("b_lock_b", "abba.thread_b.lock_b.cmpxchg",
                          ("abba.c", 20)),
            _lock_acquire("b_lock_a", "abba.thread_b.lock_a.cmpxchg",
                          ("abba.c", 21)),
            _lock_release("b_lock_a", ("abba.c", 23)),
            _lock_release("b_lock_b", ("abba.c", 24)),
        ],
        pointer_facts=[AddrOf("b_lock_a", "lock_a"),
                       AddrOf("b_lock_b", "lock_b")]))
    module.globals.append(GlobalVar("lock_a"))
    module.globals.append(GlobalVar("lock_b"))
    return module


def trylock_module() -> Module:
    """The ABBA shape with the inner inverted acquisition guarded by a
    trylock — a lock-order cycle on paper, but the ``.trylock`` site
    cannot block, so the suppression heuristic must demote it."""
    module = Module(name="trylock_guarded")
    module.functions.append(Function(
        name="worker",
        instructions=[
            _lock_acquire("w_lock_a", "tryl.worker.lock_a.cmpxchg",
                          ("tryl.c", 10)),
            _lock_acquire("w_lock_b", "tryl.worker.lock_b.cmpxchg",
                          ("tryl.c", 11)),
            _lock_release("w_lock_b", ("tryl.c", 13)),
            _lock_release("w_lock_a", ("tryl.c", 14)),
        ],
        pointer_facts=[AddrOf("w_lock_a", "lock_a"),
                       AddrOf("w_lock_b", "lock_b")]))
    module.functions.append(Function(
        name="scavenger",
        instructions=[
            _lock_acquire("s_lock_b", "tryl.scavenger.lock_b.cmpxchg",
                          ("tryl.c", 20)),
            _lock_acquire("s_lock_a",
                          "tryl.scavenger.lock_a.trylock.cmpxchg",
                          ("tryl.c", 21)),
            _lock_release("s_lock_a", ("tryl.c", 23)),
            _lock_release("s_lock_b", ("tryl.c", 24)),
        ],
        pointer_facts=[AddrOf("s_lock_a", "lock_a"),
                       AddrOf("s_lock_b", "lock_b")]))
    module.globals.append(GlobalVar("lock_a"))
    module.globals.append(GlobalVar("lock_b"))
    return module


def philosophers_module(philosophers: int = 3) -> Module:
    """Dining philosophers as the interprocedural test: each
    ``philosopher_i`` takes its left fork, then *calls* ``take_right_i``
    (callee acquires the next fork — the edge only exists across the
    call boundary), and a spawner reaches the philosophers through
    indirect calls the points-to analysis must resolve.

    The acquisition sites reuse the guest Mutex's fast-path label so the
    static candidate lines up with the runtime wait-for-graph evidence
    from :class:`repro.workloads.philosophers.DiningPhilosophers`.
    """
    module = Module(name="philosophers")
    lock_site = "libpthread.mutex.lock.cmpxchg"
    spawner = Function(name="spawn_table")
    for i in range(philosophers):
        left = f"ph{i}_left"
        right = f"ph{i}_right"
        next_fork = f"fork_{(i + 1) % philosophers}"
        module.functions.append(Function(
            name=f"philosopher_{i}",
            instructions=[
                _lock_acquire(left, lock_site,
                              ("philosophers.c", 10 + 10 * i)),
                Instruction("call", (f"take_right_{i}",),
                            source=("philosophers.c", 11 + 10 * i)),
                _lock_release(left, ("philosophers.c", 12 + 10 * i)),
            ],
            pointer_facts=[AddrOf(left, f"fork_{i}")]))
        module.functions.append(Function(
            name=f"take_right_{i}",
            instructions=[
                _lock_acquire(right, lock_site,
                              ("philosophers.c", 15 + 10 * i)),
                _lock_release(right, ("philosophers.c", 16 + 10 * i)),
            ],
            pointer_facts=[AddrOf(right, next_fork)]))
        spawner.instructions.append(Instruction(
            "call", (Reg(f"fp_{i}"),),
            source=("philosophers.c", 100 + i)))
        spawner.pointer_facts.append(AddrOf(f"fp_{i}", f"philosopher_{i}"))
    module.functions.append(spawner)
    for i in range(philosophers):
        module.globals.append(GlobalVar(f"fork_{i}"))
    return module


def deadlock_corpus() -> list[Module]:
    """The lock-order corpus: one true positive, one guarded false
    positive, one interprocedural/indirect-call cycle."""
    return [abba_module(), trylock_module(), philosophers_module()]


def heap_imprecision_module() -> Module:
    """Corpus exposing the DSA/Steensgaard unification failure.

    Two heap objects of *incompatible types* — a mutex allocated at site
    ``h_lock`` and a plain data buffer at ``h_data`` — flow through a
    generic (void*) helper.  Under unification the helper's parameter
    merges both objects, so the buffer access is misclassified as a sync
    op; under Andersen the sets stay separate.
    """
    module = Module(name="heap_imprecision")
    module.functions.append(Function(
        name="make_lock",
        instructions=[Instruction(
            "cmpxchg", (mem("lock_ptr"), Reg("eax")), lock_prefix=True,
            site="heap.lock.cmpxchg", source=("heap.c", 10))],
        pointer_facts=[
            HeapAlloc("lock_ptr", "h_lock", type_name="mutex_t"),
            # generic helper: void *p = lock; (and later) p = data;
            Copy("generic_ptr", "lock_ptr"),
        ]))
    module.functions.append(Function(
        name="make_data",
        instructions=[Instruction(
            "mov", (Reg("eax"), mem("data_ptr")),
            site="heap.data.load", source=("heap.c", 20))],
        pointer_facts=[
            HeapAlloc("data_ptr", "h_data", type_name="buffer_t"),
            Copy("generic_ptr", "data_ptr"),
        ]))
    return module
