"""A generic worklist fixpoint engine over basic-block CFGs.

The engine is deliberately small and classical: a
:class:`DataflowProblem` supplies direction, boundary value, ``top``
(the value of an unreached block), a join, and a per-instruction
transfer function; :func:`solve` iterates to a fixpoint with a
worklist seeded in reverse postorder.  Termination is the client's
obligation (finite lattice + monotone transfer); the engine enforces a
generous iteration cap so a buggy client raises instead of spinning.

First client: :class:`LockHeldAnalysis`, the forward *must*-hold lock
set analysis the lock-order pass (:mod:`repro.analysis.lockorder`)
runs per function.  Its transfer rules are exactly the intraprocedural
recipe :mod:`repro.races.lockset` established:

* a LOCK-prefixed RMW (or ``xchg``) on a lock object **acquires** it;
* a plain store to a held lock object **releases** it;
* plain loads are polling, not synchronization;
* ``call`` is held-neutral — callees are assumed lock-balanced; the
  interprocedural pass handles callee effects itself by re-analysing
  callees under the caller's held set.

Because this is a *must* analysis the join is set intersection and the
unreached value is ``None`` (identity of the join), so merge points
keep only locks held on **every** incoming path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.cfg import CFG, BasicBlock
from repro.analysis.ir import XCHG_OPCODE, Instruction, Mem

#: Iteration safety cap: (blocks * this) worklist pops before the engine
#: declares the client non-monotone and raises.
MAX_VISITS_PER_BLOCK = 64


class DataflowProblem:
    """Base class for dataflow problems.

    Subclasses override :meth:`initial`, :meth:`top`, :meth:`join`, and
    :meth:`transfer_instruction` (or :meth:`transfer` wholesale).
    Values must be immutable (or treated as such) and support ``==``.
    """

    #: ``"forward"`` or ``"backward"``.
    direction = "forward"

    def initial(self, cfg: CFG):
        """The value at the boundary (entry for forward problems)."""
        raise NotImplementedError

    def top(self, cfg: CFG):
        """The value of a not-yet-reached block (identity of the join)."""
        return None

    def join(self, values: list):
        """Combine the values flowing into a confluence point.

        Receives only non-``top`` values; never called with an empty
        list.
        """
        raise NotImplementedError

    def transfer_instruction(self, instruction: Instruction, value):
        """Flow ``value`` across one instruction."""
        raise NotImplementedError

    def transfer(self, block: BasicBlock, value):
        """Flow ``value`` across a whole block (defaults to folding
        :meth:`transfer_instruction`; backward problems fold reversed)."""
        instructions = block.instructions
        if self.direction == "backward":
            instructions = reversed(instructions)
        for instruction in instructions:
            value = self.transfer_instruction(instruction, value)
        return value


@dataclass
class DataflowResult:
    """Fixpoint values per block (``None`` marks unreached blocks)."""

    cfg: CFG
    block_in: dict[int, object] = field(default_factory=dict)
    block_out: dict[int, object] = field(default_factory=dict)
    iterations: int = 0

    def value_before(self, block: BasicBlock):
        return self.block_in.get(block.index)

    def value_after(self, block: BasicBlock):
        return self.block_out.get(block.index)


def solve(cfg: CFG, problem: DataflowProblem) -> DataflowResult:
    """Run ``problem`` over ``cfg`` to a fixpoint."""
    result = DataflowResult(cfg=cfg)
    if not cfg.blocks:
        return result
    forward = problem.direction != "backward"
    top = problem.top(cfg)

    if forward:
        def edges_in(block: BasicBlock) -> list[int]:
            return block.predecessors

        def edges_out(block: BasicBlock) -> list[int]:
            return block.successors

        boundary_blocks = [cfg.blocks[0].index]
    else:
        def edges_in(block: BasicBlock) -> list[int]:
            return block.successors

        def edges_out(block: BasicBlock) -> list[int]:
            return block.predecessors

        boundary_blocks = [b.index for b in cfg.exit_blocks()] or \
            [cfg.blocks[-1].index]

    block_in = {block.index: top for block in cfg.blocks}
    block_out = {block.index: top for block in cfg.blocks}

    order = [b.index for b in cfg.reverse_postorder()]
    if not forward:
        order = list(reversed(order))
    worklist = list(order)
    queued = set(worklist)
    budget = len(cfg.blocks) * MAX_VISITS_PER_BLOCK

    while worklist:
        result.iterations += 1
        if result.iterations > budget:
            raise RuntimeError(
                f"dataflow fixpoint did not converge on "
                f"{cfg.function.name!r} after {budget} visits "
                f"(non-monotone transfer function?)")
        index = worklist.pop(0)
        queued.discard(index)
        block = cfg.blocks[index]
        incoming = [block_out[p] for p in edges_in(block)
                    if block_out[p] is not top]
        if index in boundary_blocks:
            boundary = problem.initial(cfg)
            incoming = incoming + [boundary]
        if not incoming:
            continue  # unreached so far
        value_in = incoming[0] if len(incoming) == 1 \
            else problem.join(incoming)
        value_out = problem.transfer(block, value_in)
        if value_in == block_in[index] and value_out == block_out[index]:
            continue
        block_in[index] = value_in
        block_out[index] = value_out
        for succ in edges_out(block):
            if succ not in queued:
                queued.add(succ)
                worklist.append(succ)

    for index in block_in:
        if block_in[index] is not top:
            result.block_in[index] = block_in[index]
        if block_out[index] is not top:
            result.block_out[index] = block_out[index]
    return result


# -- first client: must-hold lock sets ---------------------------------------


class LockHeldAnalysis(DataflowProblem):
    """Forward must-analysis computing the set of lock objects held at
    each program point.

    ``pointsto`` is a callable mapping a pointer-variable name to a
    frozenset of abstract objects (either points-to analysis result
    object's ``points_to`` works); ``lock_objects`` is the set of
    abstract objects the lock-order pass treats as locks.
    """

    direction = "forward"

    def __init__(self, pointsto: Callable[[str], frozenset],
                 lock_objects: frozenset,
                 entry: frozenset = frozenset()):
        self._pointsto = pointsto
        self._lock_objects = lock_objects
        self._entry = frozenset(entry)

    def initial(self, cfg: CFG) -> frozenset:
        return self._entry

    def top(self, cfg: CFG):
        return None

    def join(self, values: list) -> frozenset:
        joined = values[0]
        for value in values[1:]:
            joined = joined & value
        return joined

    def locks_of(self, instruction: Instruction) -> frozenset:
        """The lock objects an instruction's memory operands may name."""
        locks: frozenset = frozenset()
        for operand in instruction.operands:
            if isinstance(operand, Mem):
                locks = locks | (self._pointsto(operand.ptr)
                                 & self._lock_objects)
        return locks

    @staticmethod
    def is_rmw(instruction: Instruction) -> bool:
        return instruction.lock_prefix or instruction.opcode == XCHG_OPCODE

    def transfer_instruction(self, instruction: Instruction,
                             value: frozenset) -> frozenset:
        locks = self.locks_of(instruction)
        if not locks:
            return value
        if self.is_rmw(instruction):
            return value | locks
        if instruction.is_store and (value & locks):
            return value - locks
        return value
