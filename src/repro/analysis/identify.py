"""Stage 2: classify type (iii) instructions via points-to (Section 4.3).

An aligned plain load/store is a sync op if and only if its memory
operand *may alias* a variable pointed to by some type (i)/(ii)
instruction.  The example is Listing 1: ``spinlock_unlock``'s plain store
writes through a pointer that aliases the LOCK CMPXCHG's operand, so the
store must be instrumented.

Soundness caveat reproduced faithfully (Section 4.3 "Limitations"):
primitives that *only* use aligned loads/stores on a ``volatile`` flag
(Listing 2) are invisible to stage 1 and therefore never classified —
unless the optional ``treat_volatile_as_sync`` extension is enabled,
which marks volatile globals as additional roots (the over-approximating
extension the paper proposes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.ir import Instruction, Module
from repro.analysis.pointsto import AndersenAnalysis, SteensgaardAnalysis
from repro.analysis.scanner import ScanReport, scan_module

ANALYSES = {
    "andersen": AndersenAnalysis,
    "steensgaard": SteensgaardAnalysis,
}


@dataclass
class IdentificationReport:
    """Full two-stage identification result for one module."""

    module: str
    analysis: str
    type1: list[Instruction] = field(default_factory=list)
    type2: list[Instruction] = field(default_factory=list)
    type3: list[Instruction] = field(default_factory=list)
    #: Candidate plain accesses examined but not classified as sync ops.
    rejected: int = 0

    @property
    def counts(self) -> tuple[int, int, int]:
        """(type i, type ii, type iii) — one Table 3 row."""
        return (len(self.type1), len(self.type2), len(self.type3))

    def all_sync_instructions(self) -> list[Instruction]:
        return self.type1 + self.type2 + self.type3

    def sites(self) -> frozenset[str]:
        """Site labels of every identified sync op (instrumentation input)."""
        return frozenset(ins.site
                         for ins in self.all_sync_instructions()
                         if ins.site is not None)


def identify_sync_ops(module: Module, analysis: str = "andersen",
                      treat_volatile_as_sync: bool = False,
                      scan: ScanReport | None = None
                      ) -> IdentificationReport:
    """Run both stages on ``module`` and classify every instruction."""
    if analysis not in ANALYSES:
        raise ValueError(f"unknown points-to analysis {analysis!r}; "
                         f"choose from {sorted(ANALYSES)}")
    if scan is None:
        scan = scan_module(module)
    report = IdentificationReport(module=module.name, analysis=analysis)
    report.type1 = list(scan.type1)
    report.type2 = list(scan.type2)
    pointsto = ANALYSES[analysis](module)
    # The objects reachable from the stage-1 roots are the sync variables.
    sync_objects: set = set()
    for pointer in scan.sync_pointers:
        sync_objects |= pointsto.points_to(pointer)
    if treat_volatile_as_sync:
        # The proposed extension: volatile globals are sync variables too.
        for gvar in module.globals:
            if gvar.volatile:
                sync_objects.add(gvar.name)
    marked = set(id(i) for i in scan.type1 + scan.type2)
    for _, instruction in module.all_instructions():
        if id(instruction) in marked:
            continue
        if not (instruction.is_load or instruction.is_store):
            continue
        if not instruction.aligned:
            continue  # unaligned accesses are never atomic on x86
        operands = instruction.memory_operands()
        if any(pointsto.points_to(op.ptr) & sync_objects
               for op in operands):
            report.type3.append(instruction)
        else:
            report.rejected += 1
    return report


def table3_rows(modules: list[Module], analysis: str = "andersen",
                treat_volatile_as_sync: bool = False
                ) -> list[tuple[str, int, int, int]]:
    """Produce (module, i, ii, iii) rows — the shape of the paper's
    Table 3."""
    rows = []
    for module in modules:
        report = identify_sync_ops(
            module, analysis=analysis,
            treat_volatile_as_sync=treat_volatile_as_sync)
        type1, type2, type3 = report.counts
        rows.append((module.name, type1, type2, type3))
    return rows
