"""Instrumentation: wrapping identified sync ops (Section 4.4, Listing 3).

Given an identification report, produce (a) an *instrumented module* in
which every identified sync op is bracketed by ``before_sync_op`` /
``after_sync_op`` calls, and (b) the set of run-time *site labels* that
the MVEE's injection layer (:mod:`repro.core.injection`) turns into the
instrumentation predicate.  Un-identified sites keep executing bare —
exactly the weak-symbol no-op behaviour the paper describes, and the
mechanism behind the un-instrumented-nginx divergence demo.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.identify import IdentificationReport
from repro.analysis.ir import Function, Instruction, Module

BEFORE_CALL = "call before_sync_op"
AFTER_CALL = "call after_sync_op"


class InstrumentationMismatchError(ValueError):
    """The report does not describe this module object.

    ``instrument_module`` matches report instructions by identity, so a
    report built from a *different copy* of the module (a re-parse, a
    deep copy) matches nothing and used to silently wrap zero sites —
    producing an "instrumented" module that leaves every sync op bare.
    """


@dataclass
class InstrumentedModule:
    """An instrumented copy of a module plus bookkeeping."""

    module: Module
    wrapped: int = 0
    sites: frozenset[str] = frozenset()


def instrumented_sites(*reports: IdentificationReport) -> frozenset[str]:
    """Union of site labels identified across several modules.

    This is the artifact handed to
    :func:`repro.core.injection.instrument_sites` — the bridge between
    the static pipeline and the run-time agents.
    """
    sites: set[str] = set()
    for report in reports:
        sites |= report.sites()
    return frozenset(sites)


def instrument_module(module: Module,
                      report: IdentificationReport,
                      strict: bool = True) -> InstrumentedModule:
    """Produce an instrumented copy of ``module``.

    Wrapper calls are inserted as pseudo-instructions around each
    identified sync op, mirroring Listing 3's source-level rewrite.

    Identified instructions are matched by object identity, so the
    report must have been produced from this very ``module`` object.
    When fewer sites get wrapped than the report identified — the
    report came from a different module copy — ``strict=True`` (the
    default) raises :class:`InstrumentationMismatchError` instead of
    returning a silently un-instrumented module.
    """
    targets = set(id(i) for i in report.all_sync_instructions())
    wrapped = 0
    new_functions = []
    for function in module.functions:
        new_instructions: list[Instruction] = []
        for instruction in function.instructions:
            if id(instruction) in targets:
                new_instructions.append(Instruction(
                    opcode=BEFORE_CALL, operands=instruction.operands,
                    site=instruction.site, source=instruction.source))
                new_instructions.append(instruction)
                new_instructions.append(Instruction(
                    opcode=AFTER_CALL, operands=instruction.operands,
                    site=instruction.site, source=instruction.source))
                wrapped += 1
            else:
                new_instructions.append(instruction)
        new_functions.append(Function(
            name=function.name, instructions=new_instructions,
            pointer_facts=list(function.pointer_facts)))
    if strict and wrapped < len(targets):
        raise InstrumentationMismatchError(
            f"report identifies {len(targets)} sync instruction(s) but "
            f"only {wrapped} matched module {module.name!r} — the report "
            f"was built from a different module copy; re-run "
            f"identify_sync_ops on this module (or pass strict=False to "
            f"accept partial instrumentation)")
    instrumented = Module(name=f"{module.name}+agent",
                          functions=new_functions,
                          globals=list(module.globals))
    return InstrumentedModule(module=instrumented, wrapped=wrapped,
                              sites=report.sites())
