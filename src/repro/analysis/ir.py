"""The analysis IR: an x86-flavoured instruction set with pointer facts.

The paper's stage-1 analysis runs over *disassembled binaries with debug
symbols*; stage 2 runs (conceptually) at the source/LLVM-IR level.  Our IR
captures both views in one structure:

* instruction level — opcodes, LOCK prefixes, memory operands;
* pointer level — each function carries the pointer-assignment statements
  (``p = &x``, ``p = q``, ``p = *q``, ``*p = q``, ``p = malloc()``) that a
  compiler front end would hand to a points-to analysis.

Memory operands reference *pointer variables*; the points-to analysis
resolves which abstract objects those can address.  Debug info maps each
instruction back to a source line, as the paper's Ruby script relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

# -- operands ----------------------------------------------------------------


@dataclass(frozen=True)
class Mem:
    """A memory operand: dereference of pointer variable ``ptr``."""

    ptr: str
    offset: int = 0

    def __str__(self) -> str:
        if self.offset:
            return f"[{self.ptr}+{self.offset:#x}]"
        return f"[{self.ptr}]"


@dataclass(frozen=True)
class Imm:
    """An immediate operand."""

    value: int

    def __str__(self) -> str:
        return f"${self.value}"


@dataclass(frozen=True)
class Reg:
    """A register operand."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


def mem(ptr: str, offset: int = 0) -> Mem:
    return Mem(ptr, offset)


def imm(value: int) -> Imm:
    return Imm(value)


#: Opcodes that imply atomic access when LOCK-prefixed (type i).
LOCKABLE_OPCODES = frozenset({
    "cmpxchg", "cmpxchg8b", "xadd", "add", "sub", "and", "or", "xor",
    "inc", "dec", "bts", "btr",
})

#: Opcode that is implicitly locked on x86 (type ii).
XCHG_OPCODE = "xchg"

#: Plain aligned data-movement opcodes (candidate type iii).
MOVE_OPCODES = frozenset({"mov", "movl", "movq"})

# -- control flow (by convention; interpreted by repro.analysis.cfg) ---------
#
# The corpus builders originally emitted straight-line functions only, so
# the IR had no control transfer.  The interprocedural layer adds these
# conventional opcodes.  Operand conventions:
#
# * ``call`` — one operand: a ``str`` naming the callee (direct call), or
#   a :class:`Reg` whose name is a *pointer variable* (indirect call; the
#   points-to analysis resolves it against address-taken function names).
# * ``jmp`` / ``jcc`` — one ``str`` operand naming a ``label``; ``jcc``
#   additionally falls through.
# * ``label`` — one ``str`` operand; a pseudo-instruction marking a
#   branch target (no machine effect).
# * ``ret`` — no operands; ends the function's control flow.

CALL_OPCODE = "call"
RET_OPCODE = "ret"
JUMP_OPCODE = "jmp"
BRANCH_OPCODE = "jcc"
LABEL_OPCODE = "label"

#: Opcodes that end a basic block (a label *starts* one instead).
BLOCK_TERMINATORS = frozenset({RET_OPCODE, JUMP_OPCODE, BRANCH_OPCODE})


@dataclass
class Instruction:
    """One machine instruction."""

    opcode: str
    operands: tuple = ()
    lock_prefix: bool = False
    #: Run-time site label; links analysis results to the simulator's
    #: instrumentation predicate (None for pure-corpus instructions).
    site: str | None = None
    #: Debug info: (source file, line number).
    source: tuple[str, int] | None = None
    #: Whether memory operands are naturally aligned (unaligned plain
    #: accesses are never atomic on x86 and are excluded from type iii).
    aligned: bool = True

    def memory_operands(self) -> list[Mem]:
        return [op for op in self.operands if isinstance(op, Mem)]

    @property
    def is_call(self) -> bool:
        return self.opcode == CALL_OPCODE

    @property
    def is_label(self) -> bool:
        return self.opcode == LABEL_OPCODE

    @property
    def is_terminator(self) -> bool:
        return self.opcode in BLOCK_TERMINATORS

    def branch_target(self) -> str | None:
        """The label a ``jmp``/``jcc`` transfers to (None otherwise)."""
        if self.opcode in (JUMP_OPCODE, BRANCH_OPCODE) and self.operands:
            return self.operands[0]
        return None

    def call_target(self):
        """The callee of a ``call``: a ``str`` (direct) or ``Reg``
        (indirect, resolved through points-to); None for non-calls."""
        if self.opcode == CALL_OPCODE and self.operands:
            return self.operands[0]
        return None

    @property
    def is_store(self) -> bool:
        return (self.opcode in MOVE_OPCODES and self.operands
                and isinstance(self.operands[0], Mem))

    @property
    def is_load(self) -> bool:
        return (self.opcode in MOVE_OPCODES
                and any(isinstance(op, Mem) for op in self.operands[1:]))

    def __str__(self) -> str:
        prefix = "lock " if self.lock_prefix else ""
        ops = ", ".join(str(op) for op in self.operands)
        return f"{prefix}{self.opcode} {ops}".strip()


# -- pointer facts ----------------------------------------------------------------


@dataclass(frozen=True)
class AddrOf:
    """``dst = &obj`` — dst may point to the named abstract object."""

    dst: str
    obj: str


@dataclass(frozen=True)
class Copy:
    """``dst = src`` — pointer copy."""

    dst: str
    src: str


@dataclass(frozen=True)
class LoadPtr:
    """``dst = *src`` — load a pointer through a pointer."""

    dst: str
    src: str


@dataclass(frozen=True)
class StorePtr:
    """``*dst = src`` — store a pointer through a pointer."""

    dst: str
    src: str


@dataclass(frozen=True)
class HeapAlloc:
    """``dst = malloc()`` — fresh heap object at this allocation site.

    ``type_name`` matters to the field-sensitivity discussion: Steensgaard
    unifies heap objects of incompatible types, Andersen keeps them apart
    (Section 4.3.1).
    """

    dst: str
    site_id: str
    type_name: str = "void"


PointerStatement = AddrOf | Copy | LoadPtr | StorePtr | HeapAlloc


# -- program containers -------------------------------------------------------------


@dataclass
class GlobalVar:
    """A global variable as the front end sees it."""

    name: str
    size: int = 4
    volatile: bool = False
    atomic_qualified: bool = False


@dataclass
class Function:
    """A function: instructions + the pointer facts of its body."""

    name: str
    instructions: list[Instruction] = field(default_factory=list)
    pointer_facts: list[PointerStatement] = field(default_factory=list)


@dataclass
class Module:
    """A compilation unit / shared library (libc, libpthread, a binary)."""

    name: str
    functions: list[Function] = field(default_factory=list)
    globals: list[GlobalVar] = field(default_factory=list)

    def all_instructions(self) -> Iterable[tuple[Function, Instruction]]:
        for function in self.functions:
            for instruction in function.instructions:
                yield function, instruction

    def all_pointer_facts(self) -> Iterable[PointerStatement]:
        for function in self.functions:
            yield from function.pointer_facts

    def global_by_name(self, name: str) -> GlobalVar | None:
        for candidate in self.globals:
            if candidate.name == name:
                return candidate
        return None

    def instruction_count(self) -> int:
        return sum(len(fn.instructions) for fn in self.functions)
