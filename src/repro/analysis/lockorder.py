"""RacerX-style static lock-order analysis over the mini-IR.

The §4.3 pipeline identifies *which* instructions are synchronization;
under replicated ordering a guest lock-order inversion then wedges all
variants identically, so the next static question is *in which order*
locks nest.  This pass answers it interprocedurally:

1. The stage-1 sync-pointer roots, closed under points-to, are the
   *abstract lock objects* (exactly the stage-2/lockset set).
2. From each call-graph root, functions are re-analysed under the
   caller's held set (context = entry lock set, memoised): per function
   the :class:`~repro.analysis.dataflow.LockHeldAnalysis` fixpoint
   gives the must-held set at block entry, and a linear walk records an
   ordering edge ``A -> B`` at every acquisition of ``B`` while ``A``
   is held.  Each edge carries witnesses: function, site label, source
   line, the full held set, and the call chain that established it.
3. Cycles in the lock-order graph are enumerated into
   :class:`DeadlockCandidate` records (canonical rotation, deduped).
4. Two RacerX-style suppression heuristics demote likely false
   positives: a cycle with an edge acquired *only* through trylock
   sites cannot block indefinitely (``trylock``), and a cycle whose
   every witness runs under one common *gate* lock outside the cycle
   cannot have its edges interleave (``gate-ordered``).

The dynamic mirror lives in :mod:`repro.races.deadlock`;
:func:`cross_check` classifies each static candidate against that
runtime evidence as ``confirmed`` / ``unexercised`` /
``refuted-by-guard``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import LockHeldAnalysis, solve
from repro.analysis.ir import Module
from repro.analysis.scanner import scan_module

#: Substring marking an acquisition site as a non-blocking attempt.
TRYLOCK_MARKER = ".trylock"


@dataclass(frozen=True)
class AcquisitionEdge:
    """One witnessed ``first``-held-while-acquiring-``second`` event."""

    first: str
    second: str
    function: str
    site: str | None
    source: tuple[str, int] | None
    held: frozenset
    call_chain: tuple[str, ...]

    @property
    def trylock(self) -> bool:
        return bool(self.site) and TRYLOCK_MARKER in self.site

    def __str__(self) -> str:
        where = self.site or (f"{self.source[0]}:{self.source[1]}"
                              if self.source else self.function)
        chain = " > ".join(self.call_chain + (self.function,))
        return (f"{self.first} -> {self.second} @ {where} (path: {chain})")


@dataclass(frozen=True)
class DeadlockCandidate:
    """A cycle in the lock-order graph."""

    #: Lock names in canonical rotation; ``cycle[i]`` is held while
    #: ``cycle[(i+1) % n]`` is acquired.
    cycle: tuple[str, ...]
    #: Every witness of every edge on the cycle.
    witnesses: tuple[AcquisitionEdge, ...]
    suppressed: bool = False
    #: ``"trylock"`` or ``"gate-ordered"`` when suppressed.
    suppression: str | None = None

    def name(self) -> str:
        loop = [str(lock) for lock in self.cycle]
        return " -> ".join(loop + [loop[0]])

    def sites(self) -> frozenset[str]:
        return frozenset(w.site for w in self.witnesses
                         if w.site is not None)

    def source_lines(self) -> frozenset[tuple[str, int]]:
        return frozenset(w.source for w in self.witnesses
                         if w.source is not None)

    def functions(self) -> frozenset[str]:
        return frozenset(w.function for w in self.witnesses)

    def witnesses_for(self, first, second) -> tuple[AcquisitionEdge, ...]:
        return tuple(w for w in self.witnesses
                     if w.first == first and w.second == second)

    def __str__(self) -> str:
        status = f" [suppressed: {self.suppression}]" if self.suppressed \
            else ""
        return (f"{self.name()}: {len(self.witnesses)} witness(es) in "
                f"{len(self.functions())} function(s){status}")


@dataclass
class LockOrderReport:
    """Lock-order analysis result for one module."""

    module: str
    analysis: str
    candidates: list[DeadlockCandidate] = field(default_factory=list)
    lock_objects: frozenset = frozenset()
    #: Ordered edges observed, as (first, second) pairs.
    edges: frozenset = frozenset()
    functions_analyzed: int = 0

    @property
    def flagged(self) -> list[DeadlockCandidate]:
        """Candidates that survived suppression."""
        return [c for c in self.candidates if not c.suppressed]

    @property
    def clean(self) -> bool:
        return not self.flagged

    def candidate_sites(self) -> frozenset[str]:
        sites: set[str] = set()
        for candidate in self.candidates:
            sites |= candidate.sites()
        return frozenset(sites)

    def summary(self) -> str:
        if not self.candidates:
            return (f"{self.module}: no lock-order cycles "
                    f"({len(self.lock_objects)} lock(s), "
                    f"{len(self.edges)} ordering edge(s))")
        suppressed = sum(1 for c in self.candidates if c.suppressed)
        return (f"{self.module}: {len(self.flagged)} deadlock "
                f"candidate(s) ({suppressed} suppressed) over "
                f"{len(self.edges)} ordering edge(s)")


class _Walker:
    """The interprocedural acquisition walk."""

    def __init__(self, module: Module, pointsto, lock_objects: frozenset,
                 callgraph: CallGraph):
        self.module = module
        self.pointsto = pointsto
        self.lock_objects = lock_objects
        self.callgraph = callgraph
        self.functions = {fn.name: fn for fn in module.functions}
        self.witnesses: dict[tuple, list[AcquisitionEdge]] = {}
        self._visited: set[tuple[str, frozenset]] = set()
        self._call_targets = {
            id(site.instruction): site.callees
            for site in callgraph.sites}

    def run(self) -> None:
        for root in self.callgraph.roots():
            self.visit(root, frozenset(), ())

    def visit(self, name: str, entry: frozenset,
              chain: tuple[str, ...]) -> None:
        # Memoised on (function, entry held set): a second visit under
        # the same context adds no new edges.  Witness call chains are
        # therefore the *first* chain that reached each context.
        key = (name, entry)
        if key in self._visited or name not in self.functions:
            return
        self._visited.add(key)
        function = self.functions[name]
        cfg = build_cfg(function)
        problem = LockHeldAnalysis(self.pointsto.points_to,
                                   self.lock_objects, entry=entry)
        result = solve(cfg, problem)
        for block in cfg.blocks:
            held = result.block_in.get(block.index)
            if held is None:
                continue  # unreachable block
            for instruction in block.instructions:
                locks = problem.locks_of(instruction)
                if locks and problem.is_rmw(instruction):
                    for second in locks:
                        for first in held - {second}:
                            self._witness(first, second, function.name,
                                          instruction, held, chain)
                if instruction.is_call:
                    for callee in self._call_targets.get(
                            id(instruction), ()):
                        self.visit(callee, frozenset(held),
                                   chain + (name,))
                held = problem.transfer_instruction(instruction, held)

    def _witness(self, first, second, function: str, instruction,
                 held: frozenset, chain: tuple[str, ...]) -> None:
        edge = AcquisitionEdge(
            first=first, second=second, function=function,
            site=instruction.site, source=instruction.source,
            held=frozenset(held), call_chain=chain)
        self.witnesses.setdefault((first, second), []).append(edge)


def _enumerate_cycles(edges: dict) -> list[tuple]:
    """All elementary cycles, each in canonical rotation (smallest node
    first), found by DFS restricted to nodes >= the start node."""
    nodes = sorted(edges, key=str)
    rank = {node: i for i, node in enumerate(nodes)}
    cycles: list[tuple] = []
    seen: set[tuple] = set()

    def search(start, node, path: list, on_path: set) -> None:
        for succ in sorted(edges.get(node, ()), key=str):
            if rank.get(succ, -1) < rank[start]:
                continue
            if succ == start:
                cycle = tuple(path)
                if cycle not in seen:
                    seen.add(cycle)
                    cycles.append(cycle)
            elif succ not in on_path:
                path.append(succ)
                on_path.add(succ)
                search(start, succ, path, on_path)
                on_path.discard(succ)
                path.pop()

    for start in nodes:
        search(start, start, [start], {start})
    return cycles


def _suppression(cycle: tuple,
                 witnesses: dict) -> str | None:
    """Apply the RacerX heuristics; return the reason or None."""
    count = len(cycle)
    per_edge = []
    for i, first in enumerate(cycle):
        second = cycle[(i + 1) % count]
        per_edge.append(tuple(witnesses.get((first, second), ())))
    # trylock: some edge is only ever a non-blocking attempt.
    for edge_witnesses in per_edge:
        if edge_witnesses and all(w.trylock for w in edge_witnesses):
            return "trylock"
    # gate-ordered: one lock outside the cycle is held across every
    # witness of every edge, so the edges cannot interleave.
    in_cycle = set(cycle)
    gates: frozenset | None = None
    for edge_witnesses in per_edge:
        for witness in edge_witnesses:
            outside = witness.held - in_cycle
            gates = outside if gates is None else (gates & outside)
    if gates:
        return "gate-ordered"
    return None


def analyze_module(module: Module, analysis: str = "andersen"
                   ) -> LockOrderReport:
    """Run the full static lock-order pass over one module."""
    from repro.analysis.identify import ANALYSES
    if analysis not in ANALYSES:
        raise ValueError(f"unknown points-to analysis {analysis!r}; "
                         f"choose from {sorted(ANALYSES)}")
    scan = scan_module(module)
    pointsto = ANALYSES[analysis](module)
    lock_objects: set = set()
    for pointer in scan.sync_pointers:
        lock_objects |= pointsto.points_to(pointer)
    callgraph = build_callgraph(module, pointsto)
    walker = _Walker(module, pointsto, frozenset(lock_objects), callgraph)
    walker.run()
    adjacency: dict = {}
    for (first, second) in walker.witnesses:
        adjacency.setdefault(first, set()).add(second)
    report = LockOrderReport(
        module=module.name, analysis=analysis,
        lock_objects=frozenset(lock_objects),
        edges=frozenset(walker.witnesses),
        functions_analyzed=len(module.functions))
    for cycle in _enumerate_cycles(adjacency):
        count = len(cycle)
        all_witnesses: list[AcquisitionEdge] = []
        for i, first in enumerate(cycle):
            second = cycle[(i + 1) % count]
            all_witnesses.extend(walker.witnesses.get((first, second), ()))
        reason = _suppression(cycle, walker.witnesses)
        report.candidates.append(DeadlockCandidate(
            cycle=cycle, witnesses=tuple(all_witnesses),
            suppressed=reason is not None, suppression=reason))
    report.candidates.sort(key=lambda c: c.name())
    return report


def analyze_corpus(modules, analysis: str = "andersen"
                   ) -> list[LockOrderReport]:
    """Analyze every module of a corpus."""
    return [analyze_module(module, analysis=analysis)
            for module in modules]


# -- static vs dynamic cross-check -------------------------------------------


CONFIRMED = "confirmed"
UNEXERCISED = "unexercised"
REFUTED = "refuted-by-guard"


@dataclass(frozen=True)
class CandidateVerdict:
    """One static candidate classified against runtime evidence."""

    candidate: DeadlockCandidate
    classification: str
    reason: str

    def __str__(self) -> str:
        return (f"{self.candidate.name()}: {self.classification} "
                f"({self.reason})")


def cross_check(report: LockOrderReport,
                dynamic=None) -> list[CandidateVerdict]:
    """Classify each static candidate against dynamic evidence.

    ``dynamic`` is a :class:`repro.races.deadlock.DeadlockReport` (or
    None, when no detector-attached run happened): its record sites are
    the lock-hold sites of actual runtime deadlock cycles, and its
    ``guard_sites`` are trylock sites observed exercising their guard.
    """
    verdicts: list[CandidateVerdict] = []
    dynamic_cycle_sites: frozenset[str] = frozenset()
    guard_sites: frozenset[str] = frozenset()
    observed_sites: frozenset[str] = frozenset()
    if dynamic is not None:
        for record in dynamic.records:
            dynamic_cycle_sites |= record.sites()
        guard_sites = frozenset(dynamic.guard_sites)
        observed_sites = frozenset(dynamic.observed_sites)
    for candidate in report.candidates:
        sites = candidate.sites()
        if candidate.suppressed:
            verdicts.append(CandidateVerdict(
                candidate, REFUTED,
                f"statically suppressed ({candidate.suppression})"))
        elif sites & dynamic_cycle_sites:
            verdicts.append(CandidateVerdict(
                candidate, CONFIRMED,
                "runtime wait-for cycle hit the same site(s): "
                + ", ".join(sorted(sites & dynamic_cycle_sites))))
        elif sites & guard_sites:
            verdicts.append(CandidateVerdict(
                candidate, REFUTED,
                "runtime trylock guard engaged at: "
                + ", ".join(sorted(sites & guard_sites))))
        elif sites and sites <= observed_sites:
            verdicts.append(CandidateVerdict(
                candidate, UNEXERCISED,
                "sites executed but the interleaving never formed a "
                "cycle"))
        else:
            verdicts.append(CandidateVerdict(
                candidate, UNEXERCISED,
                "no run exercised these sites"))
    return verdicts
