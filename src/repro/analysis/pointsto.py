"""Points-to analyses: Steensgaard (unification) and Andersen (subset).

The paper prototyped stage 2 twice (Section 4.3.1): once on LLVM's DSA
(a Steensgaard-style, unification-based analysis) and once on SVF (an
Andersen-style, subset-based analysis), and reported that both were too
imprecise on large code bases — DSA because "field sensitivity is often
lost because heap objects of incompatible types get unified".  We
implement both algorithms over the IR's pointer facts so that the
imprecision difference is measurable (tests and the ablation bench
compare the resulting type (iii) sets).

Abstract objects: every ``AddrOf`` target and every ``HeapAlloc`` site.
Heap objects carry their allocation-site type; the Steensgaard variant
optionally merges heap objects once any unification touches them with an
incompatible type, reproducing the DSA failure mode.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.ir import (
    AddrOf,
    Copy,
    HeapAlloc,
    LoadPtr,
    Module,
    StorePtr,
)


class _UnionFind:
    """Union-find over pointer variable equivalence classes."""

    def __init__(self):
        self._parent: dict[str, str] = {}

    def find(self, item: str) -> str:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, left: str, right: str) -> str:
        left_root, right_root = self.find(left), self.find(right)
        if left_root != right_root:
            self._parent[right_root] = left_root
        return left_root


@dataclass(frozen=True)
class HeapObject:
    """An abstract heap object (one per allocation site)."""

    site_id: str
    type_name: str

    def __str__(self) -> str:
        return f"heap:{self.site_id}({self.type_name})"


class SteensgaardAnalysis:
    """Unification-based points-to analysis (almost-linear time).

    Processing each fact once, pointer variables touched by copies/loads/
    stores get *unified*; the points-to set of a variable is the set of
    objects attributed to its equivalence class.  The paper's DSA failure
    mode — incompatible heap objects collapsing — is modelled by unifying
    all heap objects reachable from one class.
    """

    def __init__(self, module: Module):
        self.module = module
        self._uf = _UnionFind()
        self._points: dict[str, set] = defaultdict(set)
        self._run()

    def _class_points(self, var: str) -> set:
        return self._points[self._uf.find(var)]

    def _unify(self, left: str, right: str) -> None:
        left_root, right_root = self._uf.find(left), self._uf.find(right)
        if left_root == right_root:
            return
        merged = self._points[left_root] | self._points[right_root]
        root = self._uf.union(left_root, right_root)
        self._points[root] = merged

    def _run(self) -> None:
        # One pass establishing objects, then a fixpoint of unifications
        # (naive but adequate at corpus scale).
        facts = list(self.module.all_pointer_facts())
        for fact in facts:
            if isinstance(fact, AddrOf):
                self._class_points(fact.dst).add(fact.obj)
            elif isinstance(fact, HeapAlloc):
                self._class_points(fact.dst).add(
                    HeapObject(fact.site_id, fact.type_name))
        changed = True
        while changed:
            changed = False
            for fact in facts:
                if isinstance(fact, Copy):
                    if (self._uf.find(fact.dst)
                            != self._uf.find(fact.src)):
                        self._unify(fact.dst, fact.src)
                        changed = True
                elif isinstance(fact, (LoadPtr, StorePtr)):
                    # Unification-based treatment of indirection: the
                    # pointed-to class and the value class collapse.
                    pointer = (fact.src if isinstance(fact, LoadPtr)
                               else fact.dst)
                    value = (fact.dst if isinstance(fact, LoadPtr)
                             else fact.src)
                    for target in list(self._class_points(pointer)):
                        if isinstance(target, str):
                            if (self._uf.find(target)
                                    != self._uf.find(value)):
                                self._unify(target, value)
                                changed = True
        # DSA failure mode: if one equivalence class accumulates heap
        # objects of incompatible types, they become indistinguishable.
        for root in {self._uf.find(v) for v in list(self._points)}:
            objects = self._points[root]
            heap_types = {obj.type_name for obj in objects
                          if isinstance(obj, HeapObject)}
            if len(heap_types) > 1:
                # Collapse: this class may now alias *any* heap object of
                # the module (the conservative DSA answer).
                all_heap = {HeapObject(f.site_id, f.type_name)
                            for f in facts if isinstance(f, HeapAlloc)}
                objects |= all_heap

    def points_to(self, var: str) -> frozenset:
        return frozenset(self._class_points(var))

    def may_alias(self, left: str, right: str) -> bool:
        if self._uf.find(left) == self._uf.find(right):
            return True
        return bool(self.points_to(left) & self.points_to(right))


class AndersenAnalysis:
    """Subset-based (inclusion) points-to analysis — the SVF analogue.

    Cubic worst case, but precise: pointer variables keep distinct sets;
    heap objects never merge just because pointers were copied.
    """

    def __init__(self, module: Module):
        self.module = module
        self._points: dict[str, set] = defaultdict(set)
        self._run()

    def _run(self) -> None:
        facts = list(self.module.all_pointer_facts())
        copies: dict[str, set[str]] = defaultdict(set)  # src -> {dst}
        loads: list[LoadPtr] = []
        stores: list[StorePtr] = []
        for fact in facts:
            if isinstance(fact, AddrOf):
                self._points[fact.dst].add(fact.obj)
            elif isinstance(fact, HeapAlloc):
                self._points[fact.dst].add(
                    HeapObject(fact.site_id, fact.type_name))
            elif isinstance(fact, Copy):
                copies[fact.src].add(fact.dst)
            elif isinstance(fact, LoadPtr):
                loads.append(fact)
            elif isinstance(fact, StorePtr):
                stores.append(fact)
        changed = True
        while changed:
            changed = False
            for src, dsts in copies.items():
                for dst in dsts:
                    before = len(self._points[dst])
                    self._points[dst] |= self._points[src]
                    changed |= len(self._points[dst]) != before
            for load in loads:
                for target in list(self._points[load.src]):
                    if isinstance(target, str):
                        before = len(self._points[load.dst])
                        self._points[load.dst] |= self._points[target]
                        changed |= (len(self._points[load.dst])
                                    != before)
            for store in stores:
                for target in list(self._points[store.dst]):
                    if isinstance(target, str):
                        before = len(self._points[target])
                        self._points[target] |= self._points[store.src]
                        changed |= len(self._points[target]) != before

    def points_to(self, var: str) -> frozenset:
        return frozenset(self._points[var])

    def may_alias(self, left: str, right: str) -> bool:
        return bool(self.points_to(left) & self.points_to(right))
