"""Explicit ``_Atomic`` type qualification — the modified clang (§4.3.1).

The paper's second automation route avoids points-to analysis entirely:
if the programmer qualifies every synchronization variable with C11's
``_Atomic``, clang emits explicitly-atomic IR and the instrumentation
points are exact.  The catch is that C lets qualifiers leak away through
casts, so the authors modified clang to enforce a stronger discipline:

(i)   *warning* when a pointer to a non-qualified type is cast to a
      pointer to an ``_Atomic``-qualified type;
(ii)  *error* when a pointer to an ``_Atomic``-qualified type is cast to
      a pointer to a non-qualified type;
(iii) *error* when an ``_Atomic``-qualified variable is used in inline
      assembly.

Figure 3's workflow then iterates: compile, read the diagnostics,
propagate the qualifier up and down the def-use chains of all pointers to
sync variables, and repeat until a fixpoint where clang is silent.

We model a miniature typed C program (variables, pointer assignments,
address-taking, atomic intrinsics, inline-asm uses) and implement both
the checker and the fixpoint refactoring loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CVar:
    """A source variable: either a scalar or a single-level pointer."""

    name: str
    is_pointer: bool = False
    #: Scalar: carries the _Atomic qualifier itself.
    atomic: bool = False
    #: Pointer: whether the pointee type is _Atomic-qualified.
    pointee_atomic: bool = False
    volatile: bool = False


@dataclass(frozen=True)
class CAssign:
    """``dst = (cast) src`` between two pointer variables."""

    dst: str
    src: str


@dataclass(frozen=True)
class CAddrOf:
    """``ptr = &var``."""

    ptr: str
    var: str


@dataclass(frozen=True)
class CAtomicIntrinsic:
    """A C11 intrinsic applied through ``ptr`` (atomic_load/store/CAS)."""

    ptr: str


@dataclass(frozen=True)
class CAsmUse:
    """``var`` appears in an inline-assembly block.

    ``easy`` marks blocks simple enough to analyze mechanically — the
    paper's third proposed improvement ("in certain cases, we could
    permit the use of _Atomic in easy-to-analyze inline assembly
    blocks").  The checker accepts _Atomic variables in easy blocks.
    """

    var: str
    easy: bool = False


CStatement = CAssign | CAddrOf | CAtomicIntrinsic | CAsmUse


@dataclass
class CProgram:
    """The refactoring unit: variables plus statements."""

    variables: dict[str, CVar] = field(default_factory=dict)
    statements: list[CStatement] = field(default_factory=list)

    def var(self, name: str) -> CVar:
        return self.variables[name]

    def add_var(self, var: CVar) -> CVar:
        self.variables[var.name] = var
        return var


@dataclass(frozen=True)
class Diagnostic:
    """One compiler diagnostic."""

    severity: str          # "warning" | "error"
    kind: str              # "qualify-add" | "qualify-drop" | "asm-atomic"
    statement: CStatement
    message: str


class AtomicQualifierChecker:
    """The modified-clang diagnostics pass."""

    def __init__(self, program: CProgram):
        self.program = program

    def check(self) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for statement in self.program.statements:
            if isinstance(statement, CAssign):
                dst = self.program.var(statement.dst)
                src = self.program.var(statement.src)
                if dst.pointee_atomic and not src.pointee_atomic:
                    diagnostics.append(Diagnostic(
                        "warning", "qualify-add", statement,
                        f"cast of non-_Atomic pointer {src.name!r} to "
                        f"_Atomic pointer {dst.name!r}"))
                elif src.pointee_atomic and not dst.pointee_atomic:
                    diagnostics.append(Diagnostic(
                        "error", "qualify-drop", statement,
                        f"cast drops _Atomic: {src.name!r} -> "
                        f"{dst.name!r}"))
            elif isinstance(statement, CAddrOf):
                pointer = self.program.var(statement.ptr)
                var = self.program.var(statement.var)
                if var.atomic and not pointer.pointee_atomic:
                    diagnostics.append(Diagnostic(
                        "error", "qualify-drop", statement,
                        f"&{var.name} (_Atomic) stored in non-_Atomic "
                        f"pointer {pointer.name!r}"))
                elif pointer.pointee_atomic and not var.atomic:
                    diagnostics.append(Diagnostic(
                        "warning", "qualify-add", statement,
                        f"&{var.name} (non-_Atomic) stored in _Atomic "
                        f"pointer {pointer.name!r}"))
            elif isinstance(statement, CAtomicIntrinsic):
                pointer = self.program.var(statement.ptr)
                if not pointer.pointee_atomic:
                    diagnostics.append(Diagnostic(
                        "warning", "qualify-add", statement,
                        f"C11 intrinsic applied through non-_Atomic "
                        f"pointer {pointer.name!r}"))
            elif isinstance(statement, CAsmUse):
                var = self.program.var(statement.var)
                if var.atomic and not statement.easy:
                    diagnostics.append(Diagnostic(
                        "error", "asm-atomic", statement,
                        f"_Atomic variable {var.name!r} used in inline "
                        f"assembly"))
        return diagnostics


@dataclass
class RefactorResult:
    """Outcome of the Figure 3 fixpoint loop."""

    qualified: set[str]
    iterations: int
    #: Diagnostics that refactoring cannot fix (inline-asm uses).
    unfixable: list[Diagnostic]


def volatile_seed_vars(program: CProgram) -> set[str]:
    """The paper's first proposed improvement: "extend the tool to assign
    the _Atomic qualifier automatically to volatile variables" — volatile
    is how load/store-only synchronization variables (Listing 2) must be
    declared for correct compilation, so they are candidate seeds the
    stage-1 scan cannot see."""
    return {var.name for var in program.variables.values()
            if var.volatile and not var.is_pointer}


def refactor_to_fixpoint(program: CProgram, seed_vars: set[str],
                         max_iterations: int = 100,
                         include_volatile: bool = False) -> RefactorResult:
    """Iteratively qualify variables until the checker is silent.

    ``seed_vars`` is the Ruby script's report: the variables accessed by
    type (i)/(ii) instructions.  ``include_volatile=True`` additionally
    seeds every volatile scalar (the §4.3.1 extension recovering
    Listing 2-style primitives).  Each round applies the qualifier fixes
    the diagnostics imply (propagating _Atomic up and down pointer
    def-use chains); inline-asm conflicts are collected as unfixable.
    """
    if include_volatile:
        seed_vars = set(seed_vars) | volatile_seed_vars(program)
    for name in seed_vars:
        var = program.var(name)
        if var.is_pointer:
            var.pointee_atomic = True
        else:
            var.atomic = True
    checker = AtomicQualifierChecker(program)
    unfixable: list[Diagnostic] = []
    for iteration in range(1, max_iterations + 1):
        progress = False
        unfixable = []
        for diag in checker.check():
            statement = diag.statement
            if diag.kind == "asm-atomic":
                unfixable.append(diag)
                continue
            if isinstance(statement, CAssign):
                dst = program.var(statement.dst)
                src = program.var(statement.src)
                if not dst.pointee_atomic or not src.pointee_atomic:
                    dst.pointee_atomic = src.pointee_atomic = True
                    progress = True
            elif isinstance(statement, CAddrOf):
                pointer = program.var(statement.ptr)
                var = program.var(statement.var)
                if not pointer.pointee_atomic or not var.atomic:
                    pointer.pointee_atomic = True
                    var.atomic = True
                    progress = True
            elif isinstance(statement, CAtomicIntrinsic):
                pointer = program.var(statement.ptr)
                if not pointer.pointee_atomic:
                    pointer.pointee_atomic = True
                    progress = True
        if not progress:
            qualified = {v.name for v in program.variables.values()
                         if v.atomic or v.pointee_atomic}
            return RefactorResult(qualified=qualified,
                                  iterations=iteration,
                                  unfixable=unfixable)
    raise RuntimeError("qualifier propagation did not converge")
