"""Stage 1: the disassembly scanner (the paper's ``analysis.rb``).

Walks every instruction of a module and marks:

* **type (i)** — instructions carrying a LOCK prefix on a lockable opcode
  (``LOCK CMPXCHG``, ``LOCK XADD``, ...);
* **type (ii)** — ``XCHG`` with a memory operand (implicitly locked on
  x86).

For each marked instruction the scanner resolves — "using the debugging
info in the program binary" — which pointer variables its memory operands
dereference; those become the *sync-variable roots* stage 2 feeds into
the points-to analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.ir import (
    LOCKABLE_OPCODES,
    XCHG_OPCODE,
    Instruction,
    Module,
)


@dataclass
class ScanReport:
    """Output of the stage-1 scan over one module."""

    module: str
    type1: list[Instruction] = field(default_factory=list)
    type2: list[Instruction] = field(default_factory=list)
    #: Pointer variables through which type (i)/(ii) instructions access
    #: memory — the roots for the stage-2 aliasing question.
    sync_pointers: set[str] = field(default_factory=set)
    #: Source lines (file, line) of marked instructions, as the Ruby
    #: script reports them for the refactoring workflow.
    source_lines: set[tuple[str, int]] = field(default_factory=set)

    @property
    def counts(self) -> tuple[int, int]:
        return len(self.type1), len(self.type2)


def scan_module(module: Module) -> ScanReport:
    """Run the stage-1 scan and return the marked instruction sets."""
    report = ScanReport(module=module.name)
    for _, instruction in module.all_instructions():
        marked = None
        if (instruction.lock_prefix
                and instruction.opcode in LOCKABLE_OPCODES):
            report.type1.append(instruction)
            marked = instruction
        elif (instruction.opcode == XCHG_OPCODE
                and instruction.memory_operands()):
            report.type2.append(instruction)
            marked = instruction
        if marked is not None:
            for operand in marked.memory_operands():
                report.sync_pointers.add(operand.ptr)
            if marked.source is not None:
                report.source_lines.add(marked.source)
    return report
