"""Baselines the paper positions itself against (Sections 2.1 and 6).

* :mod:`repro.baselines.dmt` — a Kendo-style weak deterministic
  multithreading scheduler driven by logical instruction counts.  Works
  for identical variants; breaks under software diversity, which is the
  paper's argument for record/replay-style agents.
* :mod:`repro.baselines.recplay` — an offline RecPlay-style
  record/replay system with per-variable Lamport timestamps, showing
  what the online agents borrow from classic R+R and what an MVEE must
  do differently (no dynamic allocation, N simultaneous consumers).
"""

from repro.baselines.dmt import DMTAgent
from repro.baselines.recplay import (
    SyncLog,
    record_execution,
    replay_execution,
)

__all__ = [
    "DMTAgent",
    "SyncLog",
    "record_execution",
    "replay_execution",
]
