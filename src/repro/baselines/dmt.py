"""Kendo-style weak deterministic multithreading (DMT) baseline.

Weak-DMT systems such as Kendo [32] make lock acquisition order a
deterministic function of each thread's *logical clock* — typically the
count of retired instructions read from a performance counter.  A thread
may perform a synchronization operation only when its logical clock is
the minimum among all runnable threads (ties broken by thread id), which
yields the same schedule on every run given the same input.

Section 2.1 explains why this is a dead end for MVEEs: diversity changes
instruction counts, so each *variant* deterministically computes a
**different** schedule, and the variants still diverge from one another.
Our implementation makes that argument executable:

* Each variant runs its own independent `DMTAgent` (no shared state —
  unlike the paper's agents, nothing is recorded or replayed).
* The logical clock is ``thread.stats.logical_instructions``, which the
  simulator maintains deterministically (no jitter) and which diversity's
  ``instruction_factor`` perturbs exactly like NOP insertion would.

Tests show: identical variants under DMT never diverge (any seeds);
diversified variants under DMT diverge; the paper's agents handle both.
"""

from __future__ import annotations

from repro.core.agents.base import AgentSharedState, BaseAgent
from repro.sched.interceptor import Proceed, Wait
from repro.sched.thread import ThreadState

#: Clock bump applied after a thread wins a sync op: lets other threads
#: pass it even if it immediately retries (Kendo's "pay for the lock").
ACQUIRE_BUMP = 50.0


class DMTShared(AgentSharedState):
    """Per-run container (the agents themselves share nothing)."""

    def __init__(self, n_variants: int, costs=None, **kwargs):
        super().__init__(n_variants, costs, **kwargs)
        #: (variant, thread logical id) -> penalty added to its clock.
        self.penalties: dict[tuple[int, str], float] = {}
        #: (variant, thread) -> clock value last broadcast to waiters.
        #: Kendo's waiters spin and observe clock advances directly; our
        #: parked waiters must be woken when a clock moves past them.
        self.last_seen: dict[tuple[int, str], tuple] = {}


class DMTAgent(BaseAgent):
    """Deterministic lock-acquisition scheduler (one per variant)."""

    name = "dmt"

    @staticmethod
    def make_shared(n_variants: int, costs=None, **options) -> DMTShared:
        return DMTShared(n_variants, costs, **options)

    # -- helpers -----------------------------------------------------------

    def _clock(self, vm, thread) -> tuple[float, str]:
        penalty = self.shared.penalties.get(
            (vm.index, thread.logical_id), 0.0)
        return (thread.stats.logical_instructions + penalty,
                thread.logical_id)

    def _eligible(self, vm, thread) -> bool:
        """Is ``thread`` the minimum-clock thread of its variant?

        Threads that are DONE/KILLED, or blocked in join (deregistered in
        Kendo terms), do not participate.
        """
        mine = self._clock(vm, thread)
        for other in vm.threads.values():
            if other is thread or not other.alive:
                continue
            if (other.state is ThreadState.BLOCKED and other.park_key
                    and other.park_key[0] == "join"):
                continue
            if self._clock(vm, other) < mine:
                return False
        return True

    # -- agent interface -------------------------------------------------------

    def before_sync_op(self, vm, thread, op):
        # Broadcast this thread's clock advance (compute progress since
        # its last agent interaction) so parked waiters re-evaluate.
        key = (vm.index, thread.logical_id)
        clock = self._clock(vm, thread)
        if self.shared.last_seen.get(key) != clock:
            self.shared.last_seen[key] = clock
            self.shared.wake(("dmt_turn", vm.index))
        if self._eligible(vm, thread):
            return Proceed(cost=self.costs.buffer_consume)
        self.shared.stats.stalls += 1
        return Wait(("dmt_turn", vm.index),
                    cost=self.costs.buffer_consume)

    def after_sync_op(self, vm, thread, op, value) -> float:
        key = (vm.index, thread.logical_id)
        self.shared.penalties[key] = (
            self.shared.penalties.get(key, 0.0) + ACQUIRE_BUMP)
        self.shared.stats.recorded += 1
        # Every commit may change who holds the minimum: recheck everyone.
        self.shared.wake(("dmt_turn", vm.index))
        return self.costs.buffer_consume

    def on_thread_descheduled(self, vm, thread) -> None:
        # A thread leaving the participant set can make a waiter minimal.
        self.shared.wake(("dmt_turn", vm.index))


def register() -> None:
    """Add the DMT baseline to the MVEE agent registry."""
    from repro.core.agents import AGENT_REGISTRY

    AGENT_REGISTRY.setdefault("dmt", DMTAgent)


register()
