"""Offline record/replay in the RecPlay style (Section 6).

RecPlay [35] records a Lamport timestamp per pthread synchronization
operation during one execution and, in later executions, stalls each
operation until every operation with a smaller timestamp on the same
variable has completed.  Non-conflicting operations carry incomparable
timestamps and replay in parallel.

Our implementation records per-variable clocks — the per-variable
projection of Lamport's scheme — which makes the kinship with the paper's
wall-of-clocks agent explicit: WoC is this idea made MVEE-safe by
replacing the *per-variable dynamic clock table* (an offline system may
allocate freely) with a fixed, hashed clock wall, and the offline log
file with per-thread shared-memory buffers consumed online by N slaves.

API: :func:`record_execution` runs a program natively with a recording
agent and returns the log; :func:`replay_execution` re-runs it under any
scheduler seed and enforces the logged order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.guest.program import GuestProgram, build_context
from repro.kernel.fs import VirtualDisk
from repro.kernel.kernel import VirtualKernel
from repro.perf.costs import CostModel
from repro.run import NativeResult
from repro.sched.interceptor import Proceed, SyncAgent, Wait
from repro.sched.machine import Machine
from repro.sched.vm import VariantVM


@dataclass
class LogEntry:
    """One recorded sync op: who, where, and its per-variable time."""

    thread: str
    addr: int
    site: str
    var_time: int


@dataclass
class SyncLog:
    """The recording: a per-thread sequence of timestamped sync ops."""

    per_thread: dict[str, list[LogEntry]] = field(default_factory=dict)
    total: int = 0

    def append(self, entry: LogEntry) -> None:
        self.per_thread.setdefault(entry.thread, []).append(entry)
        self.total += 1


class RecordingAgent(SyncAgent):
    """Logs per-variable Lamport times during a native run."""

    name = "recplay_record"

    def __init__(self, log: SyncLog):
        self.log = log
        self._var_clock: dict[int, int] = {}

    def before_sync_op(self, vm, thread, op):
        return Proceed()

    def after_sync_op(self, vm, thread, op, value) -> float:
        time = self._var_clock.get(op.addr, 0)
        self._var_clock[op.addr] = time + 1
        self.log.append(LogEntry(thread=thread.logical_id, addr=op.addr,
                                 site=op.site, var_time=time))
        return 0.0


class ReplayAgent(SyncAgent):
    """Enforces a recorded log during a later run."""

    name = "recplay_replay"

    def __init__(self, log: SyncLog, wake=lambda key: None):
        self.log = log
        self._wake = wake
        self._var_clock: dict[int, int] = {}
        self._cursor: dict[str, int] = {}
        #: Ops that executed concurrently-eligible (parallel replay stat).
        self.immediate = 0
        self.stalled = 0

    def bind_wake(self, wake) -> None:
        self._wake = wake

    def _next_entry(self, thread_logical: str) -> LogEntry | None:
        entries = self.log.per_thread.get(thread_logical)
        index = self._cursor.get(thread_logical, 0)
        if entries is None or index >= len(entries):
            return None
        return entries[index]

    def before_sync_op(self, vm, thread, op):
        entry = self._next_entry(thread.logical_id)
        if entry is None:
            raise RuntimeError(
                f"replay ran past the log in thread {thread.logical_id} "
                f"at site {op.site!r} — recording and replay executions "
                "disagree (different binary or inputs?)")
        current = self._var_clock.get(entry.addr, 0)
        if current < entry.var_time:
            self.stalled += 1
            return Wait(("recplay", entry.addr))
        self.immediate += 1
        return Proceed()

    def after_sync_op(self, vm, thread, op, value) -> float:
        entry = self._next_entry(thread.logical_id)
        self._cursor[thread.logical_id] = (
            self._cursor.get(thread.logical_id, 0) + 1)
        self._var_clock[entry.addr] = entry.var_time + 1
        self._wake(("recplay", entry.addr))
        return 0.0


def _run_with_agent(program: GuestProgram, agent, seed: int,
                    cores: int, costs: CostModel | None,
                    disk: VirtualDisk | None) -> NativeResult:
    disk = disk if disk is not None else VirtualDisk()
    kernel = VirtualKernel(disk, role="native")
    vm = VariantVM(index=0, kernel=kernel,
                   instrument=lambda site: True)
    vm.agent = agent
    machine = Machine(cores=cores, seed=seed, costs=costs)
    machine.add_vm(vm)
    if hasattr(agent, "bind_wake"):
        agent.bind_wake(machine.wake_key)
    ctx = build_context(vm, program)
    machine.add_thread(vm, "main", program.main(ctx))
    report = machine.run()
    return NativeResult(report=report, disk=disk, vm=vm, machine=machine)


def record_execution(program: GuestProgram, seed: int = 0,
                     cores: int = 16, costs: CostModel | None = None,
                     disk: VirtualDisk | None = None
                     ) -> tuple[SyncLog, NativeResult]:
    """Run natively, recording every sync op's per-variable time."""
    log = SyncLog()
    result = _run_with_agent(program, RecordingAgent(log), seed, cores,
                             costs, disk)
    return log, result


def replay_execution(program: GuestProgram, log: SyncLog, seed: int = 0,
                     cores: int = 16, costs: CostModel | None = None,
                     disk: VirtualDisk | None = None
                     ) -> tuple[ReplayAgent, NativeResult]:
    """Re-run under any seed, enforcing the recorded order."""
    agent = ReplayAgent(log)
    result = _run_with_agent(program, agent, seed, cores, costs, disk)
    return agent, result
