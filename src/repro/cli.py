"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table {1,2,3}``
    Regenerate a paper table.
``fig5 [--benchmarks a,b,c]``
    Regenerate (a subset of) Figure 5.
``run BENCH --agent AGENT --variants N``
    Run one benchmark twin under the MVEE and report the verdict and
    slowdown.
``list``
    List the available benchmark twins with their Table 2 rates.
``nginx``
    Run the §5.5 demo (divergence, instrumented run, attack).
``obs {summarize,convert} BUNDLE``
    Inspect a divergence forensics bundle (``summarize``) or convert its
    event tails to Chrome ``trace_event`` JSON for Perfetto (``convert``).
``fault-matrix``
    Survival table: inject each fault kind under each degradation policy
    and report the verdicts (see ``docs/RESILIENCE.md``).
``races {lint,check,bench}``
    Two-sided race detection (see ``docs/RACES.md``): ``lint`` runs the
    Eraser-style lockset lint over the demo modules (optionally the full
    corpus), ``check`` runs the §5.5 coverage cross-check (dynamic races
    vs statically identified sites), ``bench`` prints the races +
    detector-overhead experiment table.
``deadlock {lint,check,bench}``
    Two-sided deadlock detection (see ``docs/DEADLOCK.md``): ``lint``
    runs the RacerX-style static lock-order analysis over the deadlock
    corpus, ``check`` classifies every static candidate against dynamic
    dining-philosophers evidence (confirmed / unexercised /
    refuted-by-guard), ``bench`` prints the diagnosis-latency sweep
    (watchdog deadline vs detection at cycle formation).  Both lints
    accept ``--json``.
``bench [run|diff] [--compare REF]``
    Performance harness: run the benchmark matrix serially and through
    the parallel engine, measure the speedup, and write
    ``BENCH_par.json`` (see ``docs/PERFORMANCE.md``).  ``--compare REF``
    gates the fresh report against a committed reference (digest
    identity hard-fails, wall-clock deltas warn, profile category
    shifts hard-fail); ``bench diff OLD NEW`` compares two existing
    reports without re-running anything.
``profile BENCH [--agent A|all] [--flame-out F] [--lag-out L]``
    Cycle-accounting profile of one workload (``docs/PROFILING.md``):
    per-category cycle attribution, cross-variant lag series, collapsed
    flamegraph stacks, and a markdown comparison report.
``serve {start,status,bench}``
    MVEE-as-a-service (``docs/SERVING.md``): ``start`` runs the session
    daemon in the foreground, ``status`` queries a running daemon, and
    ``bench`` load-tests an in-process daemon with hundreds of short
    sessions and writes ``BENCH_serve.json`` (``--compare REF`` gates
    the fresh report against a committed reference).
``telemetry {dump,merge}`` / ``top``
    Host-level observability (``docs/TELEMETRY.md``): ``dump`` scrapes
    a running daemon's host metrics as Prometheus text, ``merge DIR``
    folds multi-process span logs into one Chrome trace, and ``top``
    is a refreshing terminal view of a live daemon.  Exporting
    ``REPRO_TELEMETRY_DIR`` makes every command record host spans and
    open a trace that serve requests carry into the daemon.
``record BENCH -o LOG`` / ``replay LOG`` / ``checkpoint PATH``
    Decision-stream record/replay (``docs/REPLAY.md``): ``record``
    captures the master's decision stream into a replayable JSONL log
    (also ``run --record OUT``), ``replay`` re-drives a run from a log
    bit-identically (``--to-step N`` fast-forwards then single-steps
    for time-travel forensics), and ``checkpoint`` inspects a
    checkpoint store or decision log.

Every subcommand maps a :class:`repro.errors.ReproError` to exit code 2
with a one-line message on stderr (no tracebacks for expected failures);
see :func:`_run_guarded`.

The ``run`` and ``trace`` commands accept ``--trace-out PATH`` (write a
Perfetto-loadable Chrome trace of the run), ``--metrics`` (print the
metrics snapshot), and ``--bundle-out PATH`` (write a forensics bundle
if the run diverges).  All sweeps accept ``--scale`` (event-budget
multiplier, default 0.25) and ``--jobs N`` (shard sweep cells across N
worker processes via :mod:`repro.par`; output is identical to serial).
"""

from __future__ import annotations

import argparse
import sys


def _make_hub(args):
    """Build an ObsHub when any observability flag is set (else None)."""
    if not (args.trace_out or args.metrics or args.bundle_out):
        return None
    from repro.obs import ObsHub

    return ObsHub()


def _emit_obs(args, hub, outcome=None) -> None:
    """Write/print the observability artifacts the flags asked for."""
    if hub is None:
        return
    if args.trace_out:
        hub.tracer.write_chrome(args.trace_out)
        print(f"trace     : wrote {len(hub.tracer.events)} events to "
              f"{args.trace_out}")
    if args.bundle_out:
        bundle = getattr(outcome, "obs_bundle", None)
        if bundle is not None:
            bundle.save(args.bundle_out)
            print(f"bundle    : wrote forensics bundle to "
                  f"{args.bundle_out}")
        else:
            print("bundle    : run did not diverge; no bundle written")
    if args.metrics:
        print("-- metrics --")
        print(hub.metrics.render_text())


def _cmd_table(args) -> int:
    from repro.experiments import tables

    if args.number == 1:
        print(tables.table1(scale=args.scale, jobs=args.jobs,
                            env=args.env))
    elif args.number == 2:
        print(tables.table2(scale=args.scale, jobs=args.jobs,
                            env=args.env))
    else:
        print(tables.table3(
            analysis=args.analysis,
            treat_volatile_as_sync=args.treat_volatile_as_sync))
    return 0


def _cmd_fig5(args) -> int:
    from repro.experiments.runner import run_benchmark_grid
    from repro.experiments.tables import figure5_series

    benchmarks = (args.benchmarks.split(",") if args.benchmarks
                  else None)
    results = run_benchmark_grid(benchmarks=benchmarks,
                                 scale=args.scale, jobs=args.jobs,
                                 env=args.env)
    print(figure5_series(results, scale=args.scale))
    return 0


def _cmd_run(args) -> int:
    from repro.core.divergence import MonitorPolicy
    from repro.core.mvee import run_mvee
    from repro.diversity.spec import DiversitySpec
    from repro.experiments.runner import native_cycles
    from repro.workloads.synthetic import make_benchmark

    if args.record:
        return _record_to(args, args.record)
    agent = None if args.agent == "none" else args.agent
    diversity = (DiversitySpec(aslr=True, dcl=True, seed=args.seed)
                 if args.diversity else None)
    plan = None
    if args.faults:
        from repro.errors import ConfigError
        from repro.faults import parse_fault_plan

        try:
            plan = parse_fault_plan(args.faults, seed=args.fault_seed,
                                    n_variants=args.variants)
        except ConfigError as exc:
            print(f"repro run: {exc}", file=sys.stderr)
            return 2
    policy = MonitorPolicy(degradation=args.policy,
                           watchdog_cycles=args.watchdog,
                           resync_mode=args.resync_mode)
    hub = _make_hub(args)
    native = native_cycles(args.benchmark, scale=args.scale,
                           seed=args.seed)
    checkpoints = args.checkpoint_every
    if checkpoints is None and args.resync_mode == "checkpoint":
        checkpoints = native / 64.0
    outcome = run_mvee(make_benchmark(args.benchmark, scale=args.scale),
                       variants=args.variants, agent=agent,
                       seed=args.seed, diversity=diversity,
                       policy=policy, checkpoints=checkpoints,
                       max_cycles=native * 400, obs=hub, faults=plan,
                       races=args.race_detect,
                       deadlocks=args.deadlock_detect)
    print(f"benchmark : {args.benchmark}")
    print(f"agent     : {args.agent}, variants: {args.variants}, "
          f"diversity: {'ASLR+DCL' if args.diversity else 'off'}")
    if plan is not None:
        print(f"faults    : planned {len(plan)}, "
              f"injected {len(outcome.faults)} "
              f"(policy: {args.policy}"
              + (f", watchdog: {args.watchdog:.0f} cycles"
                 if args.watchdog is not None else "") + ")")
    print(f"verdict   : {outcome.verdict}")
    store = getattr(outcome.monitor, "checkpoints", None)
    if checkpoints is not None and store is not None and len(store):
        if args.checkpoint_out:
            store.path = args.checkpoint_out
            store.persist()
        print(f"checkpoint: {len(store)} snapshot(s)"
              + (f" in {store.path}" if store.path else ""))
    if outcome.races is not None:
        print(f"races     : {outcome.races.summary()}")
        for race in outcome.races.races:
            print(f"            {race}")
    if outcome.deadlocks is not None:
        print(f"deadlocks : {outcome.deadlocks.summary()}")
        for record in outcome.deadlocks.records:
            print(f"            {record}")
    for event in outcome.quarantines:
        print(f"quarantine: {event.summary()}")
    if outcome.divergence is not None:
        print(outcome.divergence.explain())
    print(f"slowdown  : {outcome.cycles / native:.2f}x vs native")
    _emit_obs(args, hub, outcome)
    return 0 if outcome.verdict in ("clean", "degraded") else 1


def _cmd_trace(args) -> int:
    from repro.core.mvee import MVEE
    from repro.experiments.runner import PAPER_CORES
    from repro.perf.timeline import render_timeline, summarize_trace
    from repro.workloads.synthetic import make_benchmark

    agent = None if args.agent == "none" else args.agent
    hub = _make_hub(args)
    mvee = MVEE(make_benchmark(args.benchmark, scale=args.scale),
                variants=args.variants, agent=agent, seed=args.seed,
                cores=PAPER_CORES, record_trace=True,
                record_sync_trace=True, obs=hub)
    outcome = mvee.run()
    print(f"verdict: {outcome.verdict}\n")
    for vm in outcome.vms:
        role = "master" if vm.index == 0 else f"slave {vm.index}"
        calls = vm.per_thread_syscall_trace()
        print(f"-- variant {vm.index} ({role}): "
              f"{sum(len(c) for c in calls.values())} monitored "
              f"syscalls across {len(calls)} threads")
        if vm.sync_trace:
            print(render_timeline(vm.sync_trace,
                                  label=f"sync-op replay, v{vm.index}"))
            for thread, stat in sorted(
                    summarize_trace(vm.sync_trace).items()):
                print(f"   {thread}: {stat['ops']} ops, mean gap "
                      f"{stat['mean_gap']:.0f} cycles")
        print()
    if outcome.divergence is not None:
        print(outcome.divergence.explain())
    _emit_obs(args, hub, outcome)
    return 0 if outcome.verdict == "clean" else 1


def _cmd_obs(args) -> int:
    from repro.errors import ReproError
    from repro.obs.forensics import (
        DivergenceBundle,
        bundle_to_chrome,
        summarize_bundle,
    )

    try:
        bundle = DivergenceBundle.load(args.bundle)
        if args.action == "summarize":
            print(summarize_bundle(bundle))
            return 0
        import json

        out = args.out or (args.bundle + ".trace.json")
        with open(out, "w") as handle:
            json.dump(bundle_to_chrome(bundle), handle, sort_keys=True)
        print(f"wrote Chrome trace to {out}")
        return 0
    except ReproError as exc:
        print(f"repro obs: {exc}", file=sys.stderr)
        return 2


def _cmd_fault_matrix(args) -> int:
    from repro.experiments.runner import (
        fault_matrix_table,
        run_fault_matrix,
    )

    kinds = args.kinds.split(",") if args.kinds else None
    policies = args.policies.split(",") if args.policies else None
    cells = run_fault_matrix(benchmark=args.benchmark, kinds=kinds,
                             policies=policies, variants=args.variants,
                             agent=args.agent, scale=args.scale,
                             seed=args.seed, jobs=args.jobs,
                             env=args.env,
                             resync_mode=args.resync_mode,
                             checkpoint_every=args.checkpoint_every)
    print(fault_matrix_table(cells))
    return 0


def _record_spec(args):
    """Assemble the SessionSpec a record/replay CLI run works from."""
    from repro.errors import ReproError
    from repro.serve.session import SessionSpec

    if getattr(args, "diversity", False):
        raise ReproError("--record does not support --diversity yet "
                         "(diversity state is not in the decision log)")
    return SessionSpec(
        workload=args.benchmark, agent=args.agent,
        variants=args.variants, seed=args.seed, scale=args.scale,
        faults=args.faults, fault_seed=args.fault_seed,
        policy=args.policy, watchdog=args.watchdog,
        race_detect=getattr(args, "race_detect", False),
        resync_mode=getattr(args, "resync_mode", "history")).validate()


def _record_to(args, out_path: str) -> int:
    """Shared body of ``repro record`` and ``repro run --record``."""
    from repro.replay import record_run

    spec = _record_spec(args)
    hub = _make_hub(args)
    recorded = record_run(
        spec, out_path=out_path,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint_out, hub=hub)
    outcome = recorded.outcome
    footer = recorded.footer or {}
    print(f"recorded  : {spec.workload} x{spec.variants} "
          f"({spec.agent}, seed {spec.seed})")
    print(f"verdict   : {outcome.verdict}")
    print(f"log       : {out_path} ({len(recorded.log.records)} "
          f"decision(s), {footer.get('steps')} step(s))")
    print(f"digest    : {recorded.log.digest()}")
    if recorded.checkpointer is not None:
        store = recorded.checkpointer.store
        print(f"checkpoint: {len(store)} snapshot(s)"
              + (f" in {store.path}" if store.path else " (in-memory)"))
    _emit_obs(args, recorded.hub, outcome)
    return 0 if outcome.verdict in ("clean", "degraded") else 1


def _cmd_record(args) -> int:
    return _record_to(args, args.out)


def _cmd_replay(args) -> int:
    import json

    from repro.replay import replay_run
    from repro.replay.checkpoint import machine_fingerprint

    replayed = replay_run(args.log, to_step=args.to_step)
    log = replayed.log
    spec = log.spec or {}
    print(f"replaying : {args.log} "
          f"({spec.get('workload')} x{spec.get('variants')}, "
          f"{len(log.records)} decision(s))")
    divergence = replayed.replayer.first_divergence
    if args.to_step is not None and replayed.outcome is None:
        print(f"stopped   : step {replayed.stopped_at_step} "
              + ("at first divergence" if divergence is not None
                 else f"(asked for {args.to_step})"))
    if divergence is not None:
        print(f"divergence: {divergence.describe()}")
    if replayed.outcome is not None:
        matches = replayed.matches()
        for key in ("verdict", "cycles", "obs_digest"):
            entry = matches.get(key)
            if entry is None:
                continue
            mark = "match" if entry["match"] else "MISMATCH"
            print(f"{key:10s}: {entry['replayed']} ({mark})")
        if "log_digest_match" in matches:
            print("log digest: "
                  + ("stable" if matches["log_digest_match"]
                     else "MOVED (re-serialization changed the log)"))
    if args.bundle_out:
        bundle = {
            "kind": "repro-replay-forensics",
            "log": args.log,
            "header": log.header_dict(),
            "recorded": log.footer,
            "stopped_at_step": replayed.stopped_at_step,
            "divergence": (divergence.describe()
                           if divergence is not None else None),
            "machine": (machine_fingerprint(replayed.mvee)
                        if replayed.mvee is not None else None),
        }
        with open(args.bundle_out, "w") as handle:
            json.dump(bundle, handle, indent=1, sort_keys=True,
                      default=repr)
            handle.write("\n")
        print(f"bundle    : wrote replay forensics to "
              f"{args.bundle_out}")
    if divergence is not None:
        return 1
    if replayed.outcome is not None:
        matches = replayed.matches()
        checks = [entry["match"] for entry in matches.values()
                  if isinstance(entry, dict) and "match" in entry]
        if not all(checks) or matches.get("log_digest_match") is False:
            return 1
    return 0


def _cmd_checkpoint(args) -> int:
    import json

    from repro.errors import ReplayError
    from repro.replay import CheckpointStore, DecisionLog

    try:
        store = CheckpointStore.load(args.path)
    except ReplayError:
        store = None
    if store is not None:
        if args.json:
            print(json.dumps(store.to_dict(), indent=1, sort_keys=True))
            return 0
        print(f"checkpoint store: {args.path} "
              f"({len(store)} snapshot(s))")
        for ckpt in store.checkpoints:
            print(f"  #{ckpt.index}: at {ckpt.at_cycles:.0f} cycles, "
                  f"step {ckpt.steps}, decision {ckpt.decision_index}, "
                  f"{len(ckpt.master_seq)} master thread(s)")
        return 0
    log = DecisionLog.load(args.path)  # raises typed ReplayError
    if args.json:
        print(json.dumps({"header": log.header_dict(),
                          "records": len(log.records),
                          "footer": log.footer,
                          "digest": log.digest()},
                         indent=1, sort_keys=True))
        return 0
    spec = log.spec or {}
    print(f"decision log: {args.path}")
    print(f"  spec    : {spec.get('workload')} x{spec.get('variants')} "
          f"({spec.get('agent')}, seed {spec.get('seed')})")
    print(f"  records : {len(log.records)}")
    print(f"  digest  : {log.digest()}")
    if log.footer is not None:
        print(f"  sealed  : verdict {log.footer.get('verdict')}, "
              f"{log.footer.get('steps')} step(s), "
              f"cycles {log.footer.get('cycles')}")
    else:
        print("  sealed  : no (torn or in-flight log)")
    return 0


def _races_lint(args) -> int:
    from repro.analysis.corpus import (
        guarded_counter_module,
        nginx_module,
        paper_corpus,
        racy_counter_module,
        spinlock_module,
        volatile_flag_module,
    )
    from repro.races import lint_module

    modules = [spinlock_module(), volatile_flag_module(),
               racy_counter_module(), guarded_counter_module(),
               nginx_module()]
    if args.corpus:
        modules.extend(paper_corpus())
    lints = [lint_module(
        module, analysis=args.analysis,
        treat_volatile_as_sync=args.treat_volatile_as_sync)
        for module in modules]
    flagged = sum(len(lint.candidates) for lint in lints)
    if args.json:
        import json

        payload = [{
            "module": lint.module,
            "analysis": lint.analysis,
            "objects_seen": lint.objects_seen,
            "accesses_recorded": lint.accesses_recorded,
            "candidates": [{
                "object": candidate.obj,
                "writes": candidate.writes,
                "functions": sorted(candidate.functions()),
                "sites": sorted(candidate.sites()),
                "source_lines": [list(line) for line in
                                 sorted(candidate.source_lines())],
            } for candidate in lint.candidates],
        } for lint in lints]
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 1 if flagged else 0
    for lint in lints:
        print(lint.summary())
        for candidate in lint.candidates:
            print(f"  {candidate}")
    print(f"-- {flagged} candidate(s) across {len(modules)} module(s) "
          f"({args.analysis}, treat_volatile_as_sync="
          f"{'on' if args.treat_volatile_as_sync else 'off'})")
    return 1 if flagged else 0


def _races_check(args) -> int:
    from repro.analysis.corpus import nginx_module
    from repro.experiments.runner import (
        nginx_identified_sites,
        run_nginx_condition,
    )
    from repro.races import (
        RaceDetector,
        corroborate,
        cross_check,
        lint_module,
    )

    print("condition 1: nginx with corpus-only identification "
          "(custom primitives un-instrumented)")
    detector = RaceDetector()
    outcome = run_nginx_condition(False, seed=args.seed,
                                  detector=detector)
    coverage = cross_check(detector.report,
                           nginx_identified_sites(after_refactor=False),
                           workload="nginx/bare")
    lint = lint_module(
        nginx_module(), analysis=args.analysis,
        treat_volatile_as_sync=args.treat_volatile_as_sync)
    coverage = corroborate(coverage, lint)
    print(f"  verdict : {outcome.verdict}")
    print(f"  dynamic : {detector.report.summary()}")
    print(f"  static  : {lint.summary()}")
    print(f"  {coverage.summary()}")
    for gap in coverage.gaps:
        print(f"  {gap}")

    print("condition 2: nginx after the §5.5 refactor "
          "(every site identified)")
    detector_full = RaceDetector()
    outcome_full = run_nginx_condition(True, seed=args.seed,
                                       detector=detector_full)
    coverage_full = cross_check(
        detector_full.report,
        nginx_identified_sites(after_refactor=True),
        workload="nginx/full")
    print(f"  verdict : {outcome_full.verdict}")
    print(f"  dynamic : {detector_full.report.summary()}")
    print(f"  {coverage_full.summary()}")

    closed = (not coverage.clean and coverage_full.clean
              and not detector_full.report.races)
    print("cross-check: " +
          ("gap detected before the refactor, closed after — "
           "the Listing-2 blind spot is visible and fixable"
           if closed else
           "UNEXPECTED — see the conditions above"))
    return 0 if closed else 1


def _races_bench(args) -> int:
    from repro.experiments.runner import race_sweep_table, run_race_sweep

    benchmarks = (tuple(args.benchmarks.split(","))
                  if args.benchmarks else ("dedup", "vips"))
    rows = run_race_sweep(benchmarks=benchmarks, scale=args.scale,
                          seed=args.seed,
                          include_nginx=not args.no_nginx,
                          jobs=args.jobs, env=args.env)
    print(race_sweep_table(rows))
    return 0


def _cmd_bench(args) -> int:
    from repro.errors import ReproError
    from repro.par.bench import render_bench, run_bench
    from repro.prof import regress

    if args.action == "diff":
        if len(args.reports) != 2:
            print("repro bench diff: expected exactly two report paths "
                  "(OLD NEW)", file=sys.stderr)
            return 2
        try:
            ref = regress.load_report(args.reports[0])
            new = regress.load_report(args.reports[1])
        except ReproError as exc:
            print(f"repro bench: {exc}", file=sys.stderr)
            return 2
        findings = regress.compare_reports(
            new, ref, wall_tolerance=args.tolerance,
            fail_on_wall=args.fail_on_wall)
        print(regress.render_findings(findings))
        return regress.exit_code(findings)

    ref = trajectory = None
    if args.compare:
        try:
            ref = regress.load_report(args.compare)
        except ReproError as exc:
            print(f"repro bench: {exc}", file=sys.stderr)
            return 2
        # The reference's own history plus the reference itself: the
        # fresh report carries the whole bench trajectory forward.
        trajectory = (list(ref.get("trajectory") or [])
                      + [regress.trajectory_entry(ref)])
    report = run_bench(jobs=args.jobs, quick=args.quick,
                       scale=args.scale, seed=args.seed,
                       env=args.env,
                       out_path=args.out, trace_dir=args.trace_dir,
                       trajectory=trajectory)
    print(render_bench(report))
    if args.out:
        print(f"wrote    : {args.out}")
    code = 0
    if report.get("identical") is False:
        code = 1
    failed = report["serial"]["failed"]
    if report["parallel"] is not None:
        failed += report["parallel"]["failed"]
    if failed:
        code = 1
    if ref is not None:
        findings = regress.compare_reports(
            report, ref, wall_tolerance=args.tolerance,
            fail_on_wall=args.fail_on_wall)
        print(regress.render_findings(findings))
        code = max(code, regress.exit_code(findings))
    return code


def _cmd_profile(args) -> int:
    from repro.errors import ReproError
    from repro.prof.analytics import (
        render_report,
        write_flamegraph,
        write_lag_series,
    )
    from repro.prof.runner import PROFILE_AGENTS, run_profiles
    from repro.workloads.spec import ALL_SPECS

    if args.benchmark != "nginx" and args.benchmark not in ALL_SPECS:
        print(f"repro profile: unknown benchmark {args.benchmark!r} "
              "(see `repro list`; 'nginx' profiles the §5.5 server)",
              file=sys.stderr)
        return 2
    agents = (list(PROFILE_AGENTS) if args.agent == "all"
              else [args.agent])
    try:
        results = run_profiles(args.benchmark, agents,
                               variants=args.variants,
                               scale=args.scale, seed=args.seed,
                               jobs=args.jobs, env=args.env,
                               lag_sample_every=args.lag_sample_every)
    except ReproError as exc:
        print(f"repro profile: {exc}", file=sys.stderr)
        return 2
    for result in results:
        profile = result["profile"]
        print(f"{result['agent']:15s} verdict={result['verdict']:9s} "
              f"machine={result['machine_cycles']:,.0f} cycles  "
              f"accounted={profile['total_cycles']:,.0f}")
    if args.flame_out:
        count = write_flamegraph(results, args.flame_out)
        print(f"flamegraph: {count} collapsed stack(s) -> "
              f"{args.flame_out}")
    if args.lag_out:
        count = write_lag_series(results, args.lag_out)
        print(f"lag series: {count} sample(s) -> {args.lag_out}")
    if args.report_out:
        with open(args.report_out, "w") as handle:
            handle.write(render_report(results))
            handle.write("\n")
        print(f"report    : {args.report_out}")
    else:
        print()
        print(render_report(results))
    return 0 if all(r["verdict"] in ("clean", "degraded")
                    for r in results) else 1


def _cmd_races(args) -> int:
    if args.action == "lint":
        return _races_lint(args)
    if args.action == "check":
        return _races_check(args)
    return _races_bench(args)


def _deadlock_lint(args) -> int:
    from repro.analysis.corpus import deadlock_corpus
    from repro.analysis.lockorder import analyze_module

    reports = [analyze_module(module, analysis=args.analysis)
               for module in deadlock_corpus()]
    flagged = sum(len(report.flagged) for report in reports)
    if args.json:
        import json

        payload = [{
            "module": report.module,
            "analysis": report.analysis,
            "functions_analyzed": report.functions_analyzed,
            "lock_objects": sorted(report.lock_objects),
            "edges": [[str(first), str(second)]
                      for first, second in sorted(
                          report.edges, key=lambda e: (str(e[0]),
                                                       str(e[1])))],
            "candidates": [{
                "cycle": candidate.name(),
                "suppressed": candidate.suppressed,
                "suppression": candidate.suppression,
                "sites": sorted(candidate.sites()),
                "source_lines": [list(line) for line in
                                 sorted(candidate.source_lines())],
                "functions": sorted(candidate.functions()),
            } for candidate in report.candidates],
        } for report in reports]
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 1 if flagged else 0
    for report in reports:
        print(report.summary())
        for candidate in report.candidates:
            status = (f"suppressed ({candidate.suppression})"
                      if candidate.suppressed else "FLAGGED")
            print(f"  {candidate.name()} [{status}]")
            print(f"    sites : {', '.join(sorted(candidate.sites()))}")
            lines = ", ".join(f"{f}:{n}" for f, n in
                              sorted(candidate.source_lines()))
            print(f"    lines : {lines}")
    print(f"-- {flagged} flagged candidate(s) across {len(reports)} "
          f"module(s) ({args.analysis})")
    return 1 if flagged else 0


def _deadlock_check(args) -> int:
    from repro.analysis.corpus import deadlock_corpus
    from repro.analysis.lockorder import (
        CONFIRMED,
        REFUTED,
        UNEXERCISED,
        analyze_module,
        cross_check,
    )
    from repro.core.mvee import run_mvee
    from repro.races import DeadlockDetector, DeadlockReport
    from repro.workloads.philosophers import DiningPhilosophers

    print("dynamic evidence: dining philosophers, blocking and "
          "trylock-guarded tables")
    wedging = DeadlockDetector()
    wedged = run_mvee(DiningPhilosophers(3), variants=2, seed=args.seed,
                      max_cycles=5e7, deadlocks=wedging)
    guarded = DeadlockDetector()
    clean = run_mvee(DiningPhilosophers(3, trylock=True), variants=2,
                     seed=args.seed, max_cycles=5e7, deadlocks=guarded)
    print(f"  blocking : {wedged.verdict} "
          f"({wedging.report.summary()})")
    print(f"  guarded  : {clean.verdict} "
          f"({guarded.report.summary()})")
    evidence = DeadlockReport(
        records=wedging.report.records + guarded.report.records,
        observed_sites=(wedging.report.observed_sites
                        | guarded.report.observed_sites),
        guard_sites=(wedging.report.guard_sites
                     | guarded.report.guard_sites),
        guard_refusals=(wedging.report.guard_refusals
                        + guarded.report.guard_refusals))

    expected = {"philosophers": CONFIRMED, "abba": UNEXERCISED,
                "trylock_guarded": REFUTED}
    all_match = (wedged.verdict == "deadlock"
                 and clean.verdict == "clean")
    print("static candidates vs dynamic evidence:")
    for module in deadlock_corpus():
        report = analyze_module(module, analysis=args.analysis)
        verdicts = cross_check(report, evidence)
        for verdict in verdicts:
            print(f"  {report.module:16s} {verdict.candidate.name():30s} "
                  f"{verdict.classification:17s} {verdict.reason}")
            if verdict.classification != expected.get(report.module):
                all_match = False
        if not verdicts:
            print(f"  {report.module:16s} (no candidates)")
            all_match = False
    print("cross-check: " +
          ("the wedging cycle is confirmed, the never-run inversion "
           "stays unexercised, and the trylock guard refutes its "
           "candidate" if all_match else
           "UNEXPECTED — see the classifications above"))
    return 0 if all_match else 1


def _deadlock_bench(args) -> int:
    from repro.experiments.runner import (
        deadlock_sweep_table,
        run_deadlock_sweep,
    )

    rows = run_deadlock_sweep(seed=args.seed, jobs=args.jobs,
                              env=args.env)
    print(deadlock_sweep_table(rows))
    return 0


def _cmd_deadlock(args) -> int:
    if args.action == "lint":
        return _deadlock_lint(args)
    if args.action == "check":
        return _deadlock_check(args)
    return _deadlock_bench(args)


def _cmd_list(args) -> int:
    from repro.workloads.spec import ALL_SPECS, catalog

    if args.json:
        import json

        print(json.dumps(catalog(), indent=1, sort_keys=True))
        return 0
    print(f"{'benchmark':18s} {'suite':9s} {'topology':14s} "
          f"{'syscalls K/s':>12s} {'sync K/s':>10s}")
    for name, spec in ALL_SPECS.items():
        print(f"{name:18s} {spec.suite:9s} {spec.topology:14s} "
              f"{spec.syscall_rate_k:12.2f} {spec.sync_rate_k:10.2f}")
    return 0


def _serve_start(args) -> int:
    from repro.serve.daemon import ServeConfig, ServeDaemon

    daemon = ServeDaemon(ServeConfig(
        host=args.host, port=args.port, state_dir=args.state_dir,
        max_sessions=args.max_sessions,
        max_cycles_per_session=args.max_cycles,
        jobs=args.jobs, env=args.env, bundle_dir=args.bundle_dir,
        checkpoint_every=args.checkpoint_every,
        telemetry_dir=args.telemetry_dir))
    if daemon.registry.recovered:
        for sid, state in sorted(daemon.registry.recovered.items()):
            print(f"recovered : {sid} -> {state}")
    host, port = daemon.start()
    print(f"serving   : {host}:{port} "
          f"(quota {args.max_sessions} sessions, "
          f"{args.jobs} worker job(s) [{daemon.executor.env}]"
          + (f", state in {args.state_dir}" if args.state_dir else "")
          + ")", flush=True)
    try:
        daemon.join()
    except KeyboardInterrupt:
        print("stopping")
    finally:
        daemon.stop()
    return 0


def _serve_status(args) -> int:
    import json

    from repro.serve.client import ServeClient

    with ServeClient(args.host, args.port) as client:
        status = client.status()
    status.pop("ok", None)
    status.pop("op", None)
    status.pop("status", None)
    print(json.dumps(status, indent=1, sort_keys=True))
    return 0


def _serve_bench(args) -> int:
    from repro.prof import regress
    from repro.serve.bench import (
        compare_serve_reports,
        render_serve_bench,
        run_serve_bench,
        serve_trajectory_entry,
    )

    ref = None
    trajectory = None
    if args.compare:
        ref = regress.load_report(args.compare,
                                  expected_kind="repro-serve-bench")
        trajectory = (list(ref.get("trajectory") or [])
                      + [serve_trajectory_entry(ref)])
    report = run_serve_bench(
        sessions=args.sessions, concurrency=args.concurrency,
        max_sessions=args.max_sessions, jobs=args.jobs, env=args.env,
        workload=args.workload, base_seed=args.seed, mode=args.mode,
        out_path=args.out or None, trajectory=trajectory)
    print(render_serve_bench(report))
    if args.out:
        print(f"wrote    : {args.out}")
    code = 0
    if report["totals"]["failures"]:
        code = 1
    if report["totals"]["completed"] != args.sessions:
        code = 1
    if report.get("verified_single_shot") is False:
        code = 1
    if ref is not None:
        findings = compare_serve_reports(report, ref)
        print(regress.render_findings(findings))
        code = max(code, regress.exit_code(findings))
    return code


def _cmd_serve(args) -> int:
    if args.action == "start":
        return _serve_start(args)
    if args.action == "status":
        return _serve_status(args)
    return _serve_bench(args)


def _cmd_telemetry(args) -> int:
    if args.action == "dump":
        from repro.serve.client import ServeClient

        with ServeClient(args.host, args.port) as client:
            response = client.host_metrics()
        sys.stdout.write(response.get("exposition") or "")
        return 0
    # merge
    if not args.dir:
        print("repro telemetry merge: a span-log directory is required",
              file=sys.stderr)
        return 2
    from repro.telemetry import merge_host_trace

    out = args.out or (args.dir.rstrip("/") + ".trace.json")
    merged = merge_host_trace(args.dir, out, guest_trace=args.guest)
    print(f"merged    : {merged['spans']} span(s) across "
          f"{merged['tracks']} track(s) -> {merged['out']} "
          f"({merged['events']} trace event(s))")
    if merged["spans"] == 0:
        print(f"            (no spans-*.jsonl under {args.dir}; was "
              "the daemon started with --telemetry-dir, or "
              "REPRO_TELEMETRY_DIR exported?)")
    return 0


def _cmd_top(args) -> int:
    from repro.telemetry.top import run_top

    iterations = 1 if args.once else args.iterations
    return run_top(args.host, args.port, interval_s=args.interval,
                   iterations=iterations)


def _cmd_nginx(args) -> int:
    import runpy
    import pathlib

    demo = (pathlib.Path(__file__).resolve().parent.parent.parent
            / "examples" / "nginx_attack_demo.py")
    if demo.exists():
        runpy.run_path(str(demo), run_name="__main__")
        return 0
    print("examples/nginx_attack_demo.py not found in this install; "
          "see the repository checkout.")
    return 1


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="shard sweep cells across N workers "
                             "(default 1 = serial; output is identical "
                             "either way — see docs/PERFORMANCE.md)")
    parser.add_argument("--env", default=None,
                        choices=("inline", "thread", "process",
                                 "process-static"),
                        help="execution environment for the workers: "
                             "serial in-process, worker threads, or a "
                             "persistent work-stealing process pool "
                             "(default: process when --jobs > 1; "
                             "output is digest-identical in every "
                             "environment — see docs/PERFORMANCE.md)")


def _add_replay_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--resync-mode", default="history",
                        choices=("history", "checkpoint"),
                        help="restart-policy resync strategy: replay "
                             "full master history at cost, or "
                             "fast-forward to the latest checkpoint "
                             "frontier (docs/REPLAY.md; default: "
                             "history)")
    parser.add_argument("--checkpoint-every", type=float, default=None,
                        metavar="CYCLES",
                        help="machine checkpoint cadence in simulated "
                             "cycles (default: off; --resync-mode "
                             "checkpoint picks native/64 when unset)")
    parser.add_argument("--checkpoint-out", default=None,
                        metavar="PATH",
                        help="persist checkpoints to PATH "
                             "(.ckpt.json; default: in-memory only)")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a Chrome trace_event JSON of the run "
                             "(open in https://ui.perfetto.dev)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics snapshot after the run")
    parser.add_argument("--bundle-out", default=None, metavar="PATH",
                        help="write a divergence forensics bundle here "
                             "if the run diverges")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Taming Parallelism in a "
                    "Multi-Variant Execution Environment' (EuroSys'17)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("number", type=int, choices=(1, 2, 3))
    p_table.add_argument("--scale", type=float, default=0.25)
    p_table.add_argument("--analysis", default="andersen",
                         choices=("andersen", "steensgaard"),
                         help="table 3: points-to analysis for stage 2 "
                              "(default: andersen)")
    p_table.add_argument("--treat-volatile-as-sync", action="store_true",
                         help="table 3: treat volatile globals as sync "
                              "primitives (closes the Listing-2 gap; "
                              "see docs/RACES.md)")
    _add_jobs_flag(p_table)
    p_table.set_defaults(func=_cmd_table)

    p_fig = sub.add_parser("fig5", help="regenerate Figure 5")
    p_fig.add_argument("--benchmarks", default=None,
                       help="comma-separated subset")
    p_fig.add_argument("--scale", type=float, default=0.25)
    _add_jobs_flag(p_fig)
    p_fig.set_defaults(func=_cmd_fig5)

    p_bench = sub.add_parser(
        "bench",
        help="run the benchmark matrix serially and sharded, measure "
             "the speedup, and write BENCH_par.json")
    p_bench.add_argument("action", nargs="?", default="run",
                         choices=("run", "diff"),
                         help="'run' (default) executes the matrix; "
                              "'diff OLD NEW' compares two existing "
                              "reports without running anything")
    p_bench.add_argument("reports", nargs="*", metavar="REPORT",
                         help="for diff: the two report paths (OLD NEW)")
    p_bench.add_argument("--compare", default=None, metavar="REF",
                         help="after the run, gate the fresh report "
                              "against this reference report "
                              "(non-zero exit on regression)")
    p_bench.add_argument("--tolerance", type=float, default=0.25,
                         metavar="FRAC",
                         help="relative wall-clock tolerance for "
                              "--compare/diff (default 0.25)")
    p_bench.add_argument("--fail-on-wall", action="store_true",
                         help="treat wall-clock regressions as failures "
                              "instead of warnings")
    p_bench.add_argument("--quick", action="store_true",
                         help="small matrix (2 cells) for smoke runs")
    p_bench.add_argument("--scale", type=float, default=None,
                         help="event-budget multiplier (default 0.1, "
                              "or 0.05 with --quick)")
    p_bench.add_argument("--seed", type=int, default=1)
    p_bench.add_argument("-o", "--out", default="BENCH_par.json",
                         metavar="PATH",
                         help="report path (default: BENCH_par.json; "
                              "empty string to skip writing)")
    p_bench.add_argument("--trace-dir", default=None, metavar="DIR",
                         help="collect per-worker obs traces here and "
                              "merge them into DIR/merged.jsonl")
    _add_jobs_flag(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_prof = sub.add_parser(
        "profile",
        help="cycle-accounting profile: per-category attribution, "
             "cross-variant lag, flamegraph (see docs/PROFILING.md)")
    p_prof.add_argument("benchmark", help="benchmark twin or 'nginx'")
    p_prof.add_argument("--agent", default="wall_of_clocks",
                        choices=("total_order", "partial_order",
                                 "wall_of_clocks", "all"),
                        help="sync agent to profile, or 'all' to "
                             "compare the three main agents "
                             "(default: wall_of_clocks)")
    p_prof.add_argument("--variants", type=int, default=2)
    p_prof.add_argument("--seed", type=int, default=1)
    p_prof.add_argument("--scale", type=float, default=0.25)
    p_prof.add_argument("--lag-sample-every", type=int, default=1,
                        metavar="K",
                        help="keep every K-th lag sample in the series "
                             "(default 1 = all; summaries always see "
                             "every event)")
    p_prof.add_argument("--flame-out", default=None, metavar="PATH",
                        help="write collapsed stacks here (flamegraph.pl"
                             " / speedscope format)")
    p_prof.add_argument("--lag-out", default=None, metavar="PATH",
                        help="write the lag series here (JSONL)")
    p_prof.add_argument("--report-out", default=None, metavar="PATH",
                        help="write the markdown report here "
                             "(default: print to stdout)")
    _add_jobs_flag(p_prof)
    p_prof.set_defaults(func=_cmd_profile)

    p_run = sub.add_parser("run", help="run one benchmark under the MVEE")
    p_run.add_argument("benchmark")
    p_run.add_argument("--agent", default="wall_of_clocks",
                       choices=("none", "total_order", "partial_order",
                                "wall_of_clocks", "dmt"))
    p_run.add_argument("--variants", type=int, default=2)
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--scale", type=float, default=0.25)
    p_run.add_argument("--diversity", action="store_true",
                       help="enable ASLR + DCL")
    p_run.add_argument("--faults", default=None, metavar="PLAN",
                       help="fault plan: 'random' (seeded by "
                            "--fault-seed) or comma-separated "
                            "KIND@vN:AT[:PARAM] specs; kinds: crash, "
                            "stall, corrupt_sync, drop_wake, clock_skew")
    p_run.add_argument("--fault-seed", type=int, default=0,
                       help="seed for '--faults random' (default 0)")
    p_run.add_argument("--policy", default="kill-all",
                       choices=("kill-all", "quarantine", "restart"),
                       help="degradation policy when a variant is "
                            "condemned (default: kill-all, the paper's "
                            "behaviour)")
    p_run.add_argument("--race-detect", action="store_true",
                       help="attach the happens-before race detector "
                            "(see docs/RACES.md); zero simulated-cycle "
                            "cost, reports races after the run")
    p_run.add_argument("--deadlock-detect", action="store_true",
                       help="attach the wait-for-graph deadlock "
                            "detector (see docs/DEADLOCK.md); a guest "
                            "lock cycle ends the run with a 'deadlock' "
                            "verdict at cycle formation")
    p_run.add_argument("--watchdog", type=float, default=None,
                       metavar="CYCLES",
                       help="lockstep rendezvous deadline in simulated "
                            "cycles; a variant missing the deadline is "
                            "diagnosed (WATCHDOG_TIMEOUT) instead of "
                            "hanging the run (default: off)")
    _add_replay_flags(p_run)
    p_run.add_argument("--record", default=None, metavar="OUT",
                       help="record the master's decision stream to "
                            "OUT (a JSONL decision log replayable with "
                            "'repro replay'; see docs/REPLAY.md)")
    _add_obs_flags(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_record = sub.add_parser(
        "record",
        help="run a workload and record its decision stream "
             "(docs/REPLAY.md)")
    p_record.add_argument("benchmark",
                          help="workload name ('nginx' or a benchmark "
                               "twin; see 'repro list')")
    p_record.add_argument("-o", "--out", required=True, metavar="PATH",
                          help="decision-log output path")
    p_record.add_argument("--agent", default="wall_of_clocks",
                          choices=("none", "total_order",
                                   "partial_order", "wall_of_clocks",
                                   "dmt"))
    p_record.add_argument("--variants", type=int, default=2)
    p_record.add_argument("--seed", type=int, default=1)
    p_record.add_argument("--scale", type=float, default=0.25)
    p_record.add_argument("--faults", default=None, metavar="PLAN",
                          help="fault plan (same syntax as 'repro run "
                               "--faults')")
    p_record.add_argument("--fault-seed", type=int, default=0)
    p_record.add_argument("--policy", default="kill-all",
                          choices=("kill-all", "quarantine", "restart"))
    p_record.add_argument("--watchdog", type=float, default=None,
                          metavar="CYCLES")
    p_record.add_argument("--race-detect", action="store_true")
    _add_replay_flags(p_record)
    _add_obs_flags(p_record)
    p_record.set_defaults(func=_cmd_record)

    p_replay = sub.add_parser(
        "replay",
        help="re-drive a recorded run from its decision log "
             "(docs/REPLAY.md)")
    p_replay.add_argument("log", help="decision-log path")
    p_replay.add_argument("--to-step", type=int, default=None,
                          metavar="N",
                          help="fast-forward to machine step N, then "
                               "single-step (stops early at the first "
                               "divergence from the log)")
    p_replay.add_argument("--bundle-out", default=None, metavar="PATH",
                          help="write a replay-forensics JSON bundle "
                               "(log header, divergence, machine "
                               "fingerprint at the stop point)")
    p_replay.set_defaults(func=_cmd_replay)

    p_ckpt = sub.add_parser(
        "checkpoint",
        help="inspect a checkpoint store or decision log")
    p_ckpt.add_argument("path",
                        help="checkpoint store (.ckpt.json) or "
                             "decision log (.decisions.jsonl)")
    p_ckpt.add_argument("--json", action="store_true",
                        help="machine-readable dump")
    p_ckpt.set_defaults(func=_cmd_checkpoint)

    p_trace = sub.add_parser(
        "trace", help="run a benchmark and show lockstep/replay traces")
    p_trace.add_argument("benchmark")
    p_trace.add_argument("--agent", default="wall_of_clocks",
                         choices=("none", "total_order", "partial_order",
                                  "wall_of_clocks"))
    p_trace.add_argument("--variants", type=int, default=2)
    p_trace.add_argument("--seed", type=int, default=1)
    p_trace.add_argument("--scale", type=float, default=0.05)
    _add_obs_flags(p_trace)
    p_trace.set_defaults(func=_cmd_trace)

    p_obs = sub.add_parser(
        "obs", help="inspect observability artifacts (forensics bundles)")
    p_obs.add_argument("action", choices=("summarize", "convert"),
                       help="summarize a bundle, or convert its event "
                            "tails to a Chrome trace")
    p_obs.add_argument("bundle", help="path to a forensics bundle JSON")
    p_obs.add_argument("-o", "--out", default=None,
                       help="output path for convert "
                            "(default: BUNDLE.trace.json)")
    p_obs.set_defaults(func=_cmd_obs)

    p_fm = sub.add_parser(
        "fault-matrix",
        help="survival table: degradation policy x injected fault kind")
    p_fm.add_argument("--benchmark", default="dedup")
    p_fm.add_argument("--kinds", default=None,
                      help="comma-separated fault kinds (default: all)")
    p_fm.add_argument("--policies", default=None,
                      help="comma-separated policies "
                           "(default: kill-all,quarantine,restart)")
    p_fm.add_argument("--variants", type=int, default=3)
    p_fm.add_argument("--agent", default="wall_of_clocks")
    p_fm.add_argument("--scale", type=float, default=0.1)
    p_fm.add_argument("--seed", type=int, default=1)
    p_fm.add_argument("--resync-mode", default="history",
                      choices=("history", "checkpoint"),
                      help="how restart-policy cells resync condemned "
                           "variants: full-history replay or "
                           "checkpoint fast-forward (docs/REPLAY.md)")
    p_fm.add_argument("--checkpoint-every", type=float, default=None,
                      metavar="CYCLES",
                      help="checkpoint cadence for --resync-mode "
                           "checkpoint (default: native/64)")
    _add_jobs_flag(p_fm)
    p_fm.set_defaults(func=_cmd_fault_matrix)

    p_races = sub.add_parser(
        "races",
        help="two-sided race detection: lockset lint, §5.5 coverage "
             "cross-check, detector-overhead sweep")
    p_races.add_argument("action", choices=("lint", "check", "bench"))
    p_races.add_argument("--analysis", default="andersen",
                         choices=("andersen", "steensgaard"),
                         help="points-to analysis for the lockset lint "
                              "(default: andersen)")
    p_races.add_argument("--treat-volatile-as-sync", action="store_true",
                         help="treat volatile globals as sync primitives "
                              "in the static analysis (the Listing-2 "
                              "remediation)")
    p_races.add_argument("--corpus", action="store_true",
                         help="lint: also lint the full paper corpus")
    p_races.add_argument("--benchmarks", default=None,
                         help="bench: comma-separated lockstep "
                              "benchmarks (default: dedup,vips)")
    p_races.add_argument("--no-nginx", action="store_true",
                         help="bench: skip the nginx conditions")
    p_races.add_argument("--scale", type=float, default=0.1)
    p_races.add_argument("--seed", type=int, default=1)
    p_races.add_argument("--json", action="store_true",
                         help="lint: machine-readable candidate dump")
    _add_jobs_flag(p_races)
    p_races.set_defaults(func=_cmd_races)

    p_deadlock = sub.add_parser(
        "deadlock",
        help="two-sided deadlock detection: static lock-order lint, "
             "cross-check vs the runtime wait-for graph, latency sweep "
             "(see docs/DEADLOCK.md)")
    p_deadlock.add_argument("action", choices=("lint", "check", "bench"))
    p_deadlock.add_argument("--analysis", default="andersen",
                            choices=("andersen", "steensgaard"),
                            help="points-to analysis resolving lock "
                                 "objects and indirect calls "
                                 "(default: andersen)")
    p_deadlock.add_argument("--seed", type=int, default=1)
    p_deadlock.add_argument("--json", action="store_true",
                            help="lint: machine-readable candidate dump")
    _add_jobs_flag(p_deadlock)
    p_deadlock.set_defaults(func=_cmd_deadlock)

    p_list = sub.add_parser("list", help="list benchmark twins")
    p_list.add_argument("--json", action="store_true",
                        help="machine-readable workload catalog (the "
                             "same structure the serve daemon's "
                             "'workloads' op returns)")
    p_list.set_defaults(func=_cmd_list)

    p_serve = sub.add_parser(
        "serve",
        help="MVEE-as-a-service: session daemon, status client, and "
             "load test (see docs/SERVING.md)")
    p_serve.add_argument("action", choices=("start", "status", "bench"))
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7333,
                         help="daemon port (start: 0 picks an "
                              "ephemeral port; default 7333)")
    p_serve.add_argument("--state-dir", default=None, metavar="DIR",
                         help="start: journal the session registry "
                              "here so it survives daemon restarts "
                              "(default: in-memory only)")
    p_serve.add_argument("--bundle-dir", default=None, metavar="DIR",
                         help="start: write divergence forensics "
                              "bundles for served sessions here")
    p_serve.add_argument("--checkpoint-every", type=float, default=None,
                         metavar="CYCLES",
                         help="start: record stepped sessions' "
                              "decision streams and checkpoint them "
                              "every CYCLES simulated cycles (needs "
                              "--state-dir); interrupted restart-"
                              "policy sessions then resume in-flight "
                              "work after a daemon crash "
                              "(docs/REPLAY.md)")
    p_serve.add_argument("--telemetry-dir", default=None, metavar="DIR",
                         help="start: record host-time spans (daemon "
                              "ops, sessions, pool workers) as JSONL "
                              "under DIR; merge them with 'repro "
                              "telemetry merge DIR' "
                              "(docs/TELEMETRY.md)")
    p_serve.add_argument("--max-sessions", type=int, default=64,
                         help="admission control: max concurrently "
                              "active sessions (default 64)")
    p_serve.add_argument("--max-cycles", type=float, default=None,
                         metavar="CYCLES",
                         help="per-session simulated-cycle quota; a "
                              "session exceeding it is killed "
                              "(default: unlimited)")
    p_serve.add_argument("--sessions", type=int, default=256,
                         help="bench: total sessions to push "
                              "(default 256)")
    p_serve.add_argument("--concurrency", type=int, default=72,
                         help="bench: concurrent client threads "
                              "(default 72, above the default quota so "
                              "admission control engages)")
    p_serve.add_argument("--workload", default="nginx",
                         help="bench: workload for every session "
                              "(default nginx)")
    p_serve.add_argument("--mode", default="batch",
                         choices=("batch", "step"),
                         help="bench: drive sessions through the "
                              "worker pool ('batch') or in step "
                              "batches ('step'); digests are identical")
    p_serve.add_argument("--seed", type=int, default=1,
                         help="bench: base seed for per-session seed "
                              "derivation")
    p_serve.add_argument("--compare", default=None, metavar="REF",
                         help="bench: gate the fresh report against "
                              "REF (digest/completion hard-fail, "
                              "throughput warns) and carry REF's "
                              "trajectory forward")
    p_serve.add_argument("-o", "--out", default="BENCH_serve.json",
                         metavar="PATH",
                         help="bench: artifact path (default: "
                              "BENCH_serve.json; empty string to skip)")
    _add_jobs_flag(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_tel = sub.add_parser(
        "telemetry",
        help="host-level observability: dump a daemon's Prometheus "
             "exposition, or merge span logs into one Chrome trace "
             "(see docs/TELEMETRY.md)")
    p_tel.add_argument("action", choices=("dump", "merge"),
                       help="'dump' scrapes a running daemon's host "
                            "metrics as Prometheus text; 'merge DIR' "
                            "folds every spans-*.jsonl under DIR into "
                            "one trace_event file")
    p_tel.add_argument("dir", nargs="?", default=None,
                       help="merge: the span-log directory (the "
                            "--telemetry-dir the daemon/CLI wrote to)")
    p_tel.add_argument("-o", "--out", default=None, metavar="PATH",
                       help="merge: output path "
                            "(default: DIR.trace.json)")
    p_tel.add_argument("--guest", default=None, metavar="TRACE",
                       help="merge: also fold this guest Chrome trace "
                            "(from --trace-out) into the merged view")
    p_tel.add_argument("--host", default="127.0.0.1",
                       help="dump: daemon host")
    p_tel.add_argument("--port", type=int, default=7333,
                       help="dump: daemon port")
    p_tel.set_defaults(func=_cmd_telemetry)

    p_top = sub.add_parser(
        "top",
        help="live operations view of a serve daemon: sessions, "
             "executor, pool/steal counters, op latency")
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, default=7333)
    p_top.add_argument("--interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="refresh interval (default 2s)")
    p_top.add_argument("--iterations", type=int, default=None,
                       metavar="N",
                       help="draw N frames then exit "
                            "(default: run until Ctrl-C)")
    p_top.add_argument("--once", action="store_true",
                       help="one snapshot and exit "
                            "(same as --iterations 1)")
    p_top.set_defaults(func=_cmd_top)

    p_nginx = sub.add_parser("nginx", help="run the §5.5 demo")
    p_nginx.set_defaults(func=_cmd_nginx)
    return parser


def _run_guarded(func, args) -> int:
    """Run one subcommand under the CLI error contract: any
    :class:`repro.errors.ReproError` becomes exit code 2 with a
    one-line message on stderr — expected failures (bad inputs,
    missing artifacts, unreachable daemon, quota rejections) never
    print tracebacks.  Unexpected exceptions still propagate loudly.
    """
    from repro.errors import ReproError

    try:
        return func(args)
    except ReproError as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 2


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    import os

    telemetry_dir = os.environ.get("REPRO_TELEMETRY_DIR")
    if telemetry_dir:
        # Root of the distributed trace: every serve request this
        # command issues inherits this context, so the merged view
        # shows CLI -> daemon -> session -> worker as one trace.
        from repro.telemetry import configure, span

        configure(telemetry_dir, service="cli")
        with span(f"cli.{args.command}", track="cli",
                  command=args.command):
            return _run_guarded(args.func, args)
    return _run_guarded(args.func, args)


if __name__ == "__main__":
    sys.exit(main())
