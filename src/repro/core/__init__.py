"""The paper's contribution: the MVEE monitor and synchronization agents.

* :mod:`repro.core.mvee` — top-level orchestration (the ReMon analogue):
  bootstraps N diversified variants, injects agents, runs them in lockstep
  and returns a verdict.
* :mod:`repro.core.monitor` — the strict, security-oriented monitor:
  per-thread rendezvous, argument comparison, I/O replication, and the
  Lamport syscall-ordering clock of Section 4.1.
* :mod:`repro.core.agents` — the three synchronization agents of
  Section 4.5: total-order, partial-order, and wall-of-clocks.
* :mod:`repro.core.relaxed` — a VARAN-style loosely-synchronized monitor
  used as a baseline (works for loosely-coupled threads, fails for
  explicitly communicating ones).
"""

from repro.core.divergence import DivergenceReport, MonitorPolicy
from repro.core.mvee import MVEE, MVEEOutcome, run_mvee

__all__ = [
    "MVEE",
    "MVEEOutcome",
    "run_mvee",
    "DivergenceReport",
    "MonitorPolicy",
]
