"""The three synchronization agents of Section 4.5.

All agents share the same injected interface (``before_sync_op`` /
``after_sync_op``, Listing 3) and the same constraint — no dynamic memory
allocation in the master (Section 3.3) — but differ in how they encode the
master's sync-op order:

* :mod:`repro.core.agents.total_order` — one global log, replayed in
  exactly the recorded order (Figure 4a).  Trivial, but stalls unrelated
  operations.
* :mod:`repro.core.agents.partial_order` — a lookahead window over the
  global log; only operations on the same variable are ordered
  (Figure 4b).  Less stalling, more shared-cursor contention.
* :mod:`repro.core.agents.wall_of_clocks` — per-master-thread buffers plus
  a fixed wall of logical clocks indexed by a hash of the sync variable's
  address (Figure 4c).  The paper's contribution and consistent winner.
"""

from repro.core.agents.base import AgentSharedState, BaseAgent, make_agents
from repro.core.agents.total_order import TotalOrderAgent
from repro.core.agents.partial_order import PartialOrderAgent
from repro.core.agents.wall_of_clocks import WallOfClocksAgent
from repro.core.agents.clocks import ClockWall, clock_for_address

#: Registry used by the MVEE front end and the benchmark harness.
AGENT_REGISTRY = {
    "total_order": TotalOrderAgent,
    "partial_order": PartialOrderAgent,
    "wall_of_clocks": WallOfClocksAgent,
}

__all__ = [
    "AgentSharedState",
    "BaseAgent",
    "make_agents",
    "TotalOrderAgent",
    "PartialOrderAgent",
    "WallOfClocksAgent",
    "ClockWall",
    "clock_for_address",
    "AGENT_REGISTRY",
]
