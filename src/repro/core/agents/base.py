"""Shared agent infrastructure.

Each MVEE run creates one :class:`AgentSharedState` — the analogue of the
System V shared-memory segment the real agents attach to during
initialization (Section 4.5) — and one agent instance per variant.  The
variant-0 agent plays the *master* (recording) role; all others replay.
Role assignment happens through the MVEE's injection step, mirroring the
paper's self-awareness pseudo-syscall.

Agents are prohibited from dynamic per-variable allocation (Section 3.3);
concretely, the structures they may grow are the logs themselves (which
live in the pre-mapped shared segment) — never per-sync-variable
metadata.  The WoC agent's fixed clock wall is the visible consequence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.contention import ContentionTracker
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.sched.interceptor import SyncAgent


@dataclass
class AgentStats:
    """Counters reported by the benches and the ablation studies."""

    recorded: int = 0
    replayed: int = 0
    stalls: int = 0
    log_waits: int = 0       # slave waited for the master to produce
    order_waits: int = 0     # slave waited for replay order
    producer_waits: int = 0  # master stalled on a full ring buffer
    scanned_entries: int = 0  # PO lookahead scanning work
    clock_collision_stalls: int = 0  # WoC: stalls on hash-colliding clocks


class AgentSharedState:
    """State shared by all variants' agents (the shared memory segment)."""

    def __init__(self, n_variants: int, costs: CostModel | None = None,
                 contention_window: int = 16,
                 buffer_capacity: int = 1 << 16):
        self.n_variants = n_variants
        self.costs = costs or DEFAULT_COSTS
        self.contention = ContentionTracker(window=contention_window)
        #: Ring-buffer capacity: how far the master's recording may run
        #: ahead of the slowest slave's consumption before the producer
        #: must stall (the paper's buffers are rings; ours are logs with
        #: explicit backpressure).  The default is effectively unbounded
        #: for the benchmark slices; the ablation bench shrinks it.
        self.buffer_capacity = buffer_capacity
        self.stats = AgentStats()
        #: Bound to Machine.wake_key by the MVEE bootstrap.
        self.wake = lambda key: None
        #: Optional :class:`repro.obs.ObsHub`; agents emit record/replay/
        #: stall events and buffer-occupancy samples when set.
        self.obs = None
        #: When True, slave agents verify that the replayed op's site label
        #: matches the recorded one — a debugging aid for diversity that
        #: changes sync behaviour (Section 4.5.1 documents that such
        #: diversity is unsupported).
        self.check_sites = False
        #: Optional :class:`repro.faults.FaultInjector`; subclasses
        #: propagate it into their shared buffers so corrupt_sync faults
        #: reach the records.
        self.faults = None
        #: Variants demoted by the monitor (quarantine): ring-buffer
        #: backpressure must stop waiting for their consumption or the
        #: master stalls forever behind a dead consumer.
        self.retired: set[int] = set()

    def bind_machine(self, machine) -> None:
        """Install the simulator's wake callback (MVEE bootstrap)."""
        self.wake = machine.wake_key

    def bind_faults(self, injector) -> None:
        """Attach the fault injector to the shared sync structures."""
        self.faults = injector

    def retire_variant(self, variant: int) -> None:
        """Stop backpressure from waiting on a quarantined slave.

        Subclasses drop the variant's consumption cursor from their
        slowest-consumer computation and wake a master parked on a full
        ring, then call up."""
        self.retired.add(variant)

    def reset_variant(self, variant: int) -> None:
        """Rewind one slave's replay cursors so a restarted variant
        replays the retained sync history from the beginning."""
        self.retired.discard(variant)

    def coherence_cost(self, line_key, thread_global_id: str) -> float:
        """Charge for touching a logically shared cache line.

        One other recent sharer costs a full line transfer; additional
        sharers add queuing on the line (sub-linear — the line ping-pongs,
        it does not broadcast), matching the saturating behaviour of real
        coherence fabrics.
        """
        from repro.perf.contention import coherence_cycles

        sharers = self.contention.access(line_key, thread_global_id)
        return coherence_cycles(self.costs, sharers)


class BaseAgent(SyncAgent):
    """Common plumbing for the three replication strategies."""

    name = "base"

    def __init__(self, shared: AgentSharedState, variant_index: int):
        self.shared = shared
        self.variant_index = variant_index

    @property
    def is_master(self) -> bool:
        return self.variant_index == 0

    @property
    def costs(self) -> CostModel:
        return self.shared.costs

    def slave_indices(self) -> range:
        return range(1, self.shared.n_variants)


def make_agents(agent_name: str, n_variants: int,
                costs: CostModel | None = None,
                **agent_options):
    """Build the shared state and one agent per variant.

    ``agent_name`` is a key of
    :data:`repro.core.agents.AGENT_REGISTRY`; ``agent_options`` are passed
    to the shared-state factory of the chosen agent class (e.g.
    ``n_clocks`` for wall-of-clocks).
    """
    from repro.core.agents import AGENT_REGISTRY  # deferred: avoid cycle

    if agent_name == "dmt" and agent_name not in AGENT_REGISTRY:
        import repro.baselines.dmt  # noqa: F401  (self-registers)
    try:
        agent_cls = AGENT_REGISTRY[agent_name]
    except KeyError:
        raise ValueError(
            f"unknown agent {agent_name!r}; "
            f"choose from {sorted(AGENT_REGISTRY)}") from None
    shared = agent_cls.make_shared(n_variants, costs, **agent_options)
    agents = [agent_cls(shared, index) for index in range(n_variants)]
    return shared, agents
