"""Logical clocks and the wall-of-clocks address hash.

The WoC agent cannot allocate a clock per synchronization variable at run
time — agents are prohibited from dynamic allocation because the master
and slaves would have to allocate in identical order (Section 3.3).  It
therefore pre-allocates a fixed wall of clocks and hashes each sync
variable's address onto one of them.

Two deliberate properties of the hash (Section 4.5):

* the address is shifted right by 3 bits first, so *adjacent 32-bit
  variables sharing one 64-bit granule map to the same clock* — a single
  ``CMPXCHG8B`` could modify both at once, so they must be serialized;
* collisions between unrelated variables are tolerated: they only cause
  extra serialization (plausible-clocks correctness is preserved —
  "the replication will always be correct", citing Torres-Rojas & Ahamad).
"""

from __future__ import annotations

#: Default wall size (clocks).  Small enough to be "statically allocated",
#: large enough that collisions are rare in the benchmarks; the ablation
#: bench sweeps this.
DEFAULT_CLOCK_COUNT = 512

#: Knuth's multiplicative hash constant.
_HASH_MULTIPLIER = 2654435761


def clock_for_address(addr: int, n_clocks: int = DEFAULT_CLOCK_COUNT) -> int:
    """Map a sync-variable address to a clock id.

    The ``>> 3`` implements the 64-bit-granule aliasing described above.
    """
    granule = addr >> 3
    return (granule * _HASH_MULTIPLIER & 0xFFFF_FFFF) % n_clocks


class ClockWall:
    """A fixed array of logical clocks (one wall per variant)."""

    __slots__ = ("times",)

    def __init__(self, n_clocks: int = DEFAULT_CLOCK_COUNT):
        self.times = [0] * n_clocks

    def read(self, clock_id: int) -> int:
        return self.times[clock_id]

    def tick(self, clock_id: int) -> int:
        """Increment a clock; returns the *pre*-increment time."""
        time = self.times[clock_id]
        self.times[clock_id] = time + 1
        return time

    def __len__(self) -> int:
        return len(self.times)
