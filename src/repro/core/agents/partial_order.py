"""Partial-order (PO) replication agent — Figure 4(b).

The master records the same global log as the TO agent, but slaves only
enforce a total order on *dependent* sync ops — ops touching the same
memory location.  Independent ops may replay in any order that preserves
each thread's program order, eliminating the TO agent's unnecessary
stalls.

The price (Section 4.5): slaves must look *ahead* in a window of not-yet-
replayed entries to decide whether their op is safe, and they must track
consumption in a structure shared by all the variant's threads.  Both are
read-write shared lines; with many threads logging/consuming
simultaneously, cache pressure and coherency traffic explode.  That is why
the paper finds PO losing to TO on sync-op-storm benchmarks (radiosity,
fluidanimate, swaptions, dedup) despite stalling less.

Implementation note: the dependency test "no earlier unconsumed entry on
the same address" is evaluated with per-address queues for simulator
efficiency, but the *cost charged* is the window scan the real agent
performs (``po_scan_per_entry`` × window span).
"""

from __future__ import annotations


from repro.core.agents.base import AgentSharedState, BaseAgent
from repro.core.buffers import ConsumptionWindow, MultiProducerLog, SyncRecord
from repro.sched.interceptor import Proceed, Wait


class PartialOrderShared(AgentSharedState):
    """Shared segment: global log + per-variant consumption windows."""

    def __init__(self, n_variants: int, costs=None, **kwargs):
        super().__init__(n_variants, costs, **kwargs)
        self.log = MultiProducerLog()
        self.windows = {v: ConsumptionWindow()
                        for v in range(1, n_variants)}
        #: Per-address positions in recorded order (master-address keyed).
        self.addr_positions: dict[int, list[int]] = {}
        #: Per (variant, addr): index into addr_positions[addr] of the next
        #: entry that variant must consume on that address.
        self.addr_cursor: dict[tuple[int, int], int] = {}

    def bind_faults(self, injector) -> None:
        super().bind_faults(injector)
        self.log.faults = injector

    def retire_variant(self, variant: int) -> None:
        super().retire_variant(variant)
        self.windows.pop(variant, None)
        self.wake(("po_full",))

    def reset_variant(self, variant: int) -> None:
        super().reset_variant(variant)
        self.windows[variant] = ConsumptionWindow()
        for key in [k for k in self.addr_cursor if k[0] == variant]:
            del self.addr_cursor[key]


class PartialOrderAgent(BaseAgent):
    """Replays only the per-variable (dependence) order."""

    name = "partial_order"

    @staticmethod
    def make_shared(n_variants: int, costs=None,
                    **options) -> PartialOrderShared:
        return PartialOrderShared(n_variants, costs, **options)

    # -- master: record -------------------------------------------------------

    def before_sync_op(self, vm, thread, op):
        if self.is_master:
            return self._master_check(thread)
        return self._slave_check(thread, op)

    def _master_check(self, thread):
        """Ring-buffer backpressure against the slowest window frontier."""
        shared: PartialOrderShared = self.shared
        slowest = min((w.frontier for w in shared.windows.values()),
                      default=len(shared.log))
        if len(shared.log) - slowest >= shared.buffer_capacity:
            shared.stats.producer_waits += 1
            if shared.obs is not None:
                shared.obs.sync_stall(self.variant_index,
                                      thread.logical_id,
                                      "producer_wait", "po")
            return Wait(("po_full",), cost=self.costs.buffer_log)
        return Proceed()

    def after_sync_op(self, vm, thread, op, value) -> float:
        shared: PartialOrderShared = self.shared
        if self.is_master:
            position = shared.log.append(SyncRecord(
                thread=thread.logical_id, addr=op.addr, site=op.site))
            shared.addr_positions.setdefault(op.addr, []).append(position)
            shared.stats.recorded += 1
            if shared.obs is not None:
                shared.obs.sync_record(
                    vm.index, thread.logical_id, "po",
                    shared.log.occupancy(w.frontier for w in
                                         shared.windows.values()))
            cost = (self.costs.buffer_log
                    + self.costs.cursor_contention_factor * shared.coherence_cost(("po", "producer_cursor"),
                                            thread.global_id))
            for slave in self.slave_indices():
                shared.wake(("po_log", slave))
            return cost
        variant = self.variant_index
        window = shared.windows[variant]
        position = shared.log.thread_entry_position(
            thread.logical_id, window.next_index_for(thread.logical_id))
        entry_addr = shared.log.entry(position).addr
        window.mark_consumed(position, thread.logical_id)
        cursor_key = (variant, entry_addr)
        shared.addr_cursor[cursor_key] = (
            shared.addr_cursor.get(cursor_key, 0) + 1)
        shared.stats.replayed += 1
        if shared.obs is not None:
            shared.obs.sync_replay(
                variant, thread.logical_id, "po",
                shared.log.occupancy(w.frontier for w in
                                     shared.windows.values()))
        cost = (self.costs.buffer_consume
                + self.costs.cursor_contention_factor * shared.coherence_cost(("po", "window", variant),
                                        thread.global_id))
        shared.wake(("po_consume", variant))
        shared.wake(("po_full",))
        return cost

    # -- slave: replay -----------------------------------------------------------

    def _slave_check(self, thread, op):
        shared: PartialOrderShared = self.shared
        variant = self.variant_index
        window = shared.windows[variant]
        thread_index = window.next_index_for(thread.logical_id)
        position = shared.log.thread_entry_position(thread.logical_id,
                                                    thread_index)
        if position is None:
            shared.stats.stalls += 1
            shared.stats.log_waits += 1
            if shared.obs is not None:
                shared.obs.sync_stall(variant, thread.logical_id,
                                      "log_wait", "po")
            return Wait(("po_log", variant),
                        cost=self.costs.buffer_consume
                        + self.costs.cursor_contention_factor * shared.coherence_cost(("po", "window", variant),
                                                thread.global_id))
        entry = shared.log.entry(position)
        # Charge the lookahead scan over the unreplayed window.
        span = max(0, position - window.frontier)
        shared.stats.scanned_entries += span
        scan_cost = span * self.costs.po_scan_per_entry
        # Dependence test: are we the oldest unconsumed op on this address?
        positions_on_addr = shared.addr_positions.get(entry.addr, ())
        cursor = shared.addr_cursor.get((variant, entry.addr), 0)
        ready = (cursor < len(positions_on_addr)
                 and positions_on_addr[cursor] == position)
        if not ready:
            shared.stats.stalls += 1
            shared.stats.order_waits += 1
            if shared.obs is not None:
                shared.obs.sync_stall(variant, thread.logical_id,
                                      "order_wait", "po")
            return Wait(("po_consume", variant),
                        cost=scan_cost
                        + self.costs.cursor_contention_factor * shared.coherence_cost(("po", "window", variant),
                                                thread.global_id))
        if shared.check_sites and entry.site != op.site:
            raise RuntimeError(
                f"PO replay mismatch in v{variant} {thread.logical_id}: "
                f"recorded site {entry.site!r}, replaying {op.site!r}")
        cost = scan_cost + self.costs.cursor_contention_factor * shared.coherence_cost(("po", "window", variant),
                                                 thread.global_id)
        return Proceed(cost=cost)
