"""Total-order (TO) replication agent — Figure 4(a).

The master logs every sync op into one global buffer; each slave variant
replays the log *in exactly the recorded order*.  A slave thread about to
execute a sync op is stalled unless the next unconsumed log entry belongs
to it — even when the entry concerns an unrelated lock.  This is the
paper's "trivial to implement, but not very efficient" strategy: the lack
of consumer lookahead introduces unnecessary stalls (the red bar in
Figure 4a), and the single consumption cursor per slave variant is a
shared cache line all that variant's threads fight over.
"""

from __future__ import annotations

from repro.core.agents.base import AgentSharedState, BaseAgent
from repro.core.buffers import MultiProducerLog, SyncRecord
from repro.sched.interceptor import Proceed, Wait


class TotalOrderShared(AgentSharedState):
    """Shared segment: one global log + one cursor per slave variant."""

    def __init__(self, n_variants: int, costs=None, **kwargs):
        super().__init__(n_variants, costs, **kwargs)
        self.log = MultiProducerLog()
        self.next_index = {v: 0 for v in range(1, n_variants)}

    def bind_faults(self, injector) -> None:
        super().bind_faults(injector)
        self.log.faults = injector

    def retire_variant(self, variant: int) -> None:
        super().retire_variant(variant)
        self.next_index.pop(variant, None)
        self.wake(("to_full",))

    def reset_variant(self, variant: int) -> None:
        super().reset_variant(variant)
        self.next_index[variant] = 0


class TotalOrderAgent(BaseAgent):
    """Replays the global total order of sync ops."""

    name = "total_order"

    @staticmethod
    def make_shared(n_variants: int, costs=None,
                    **options) -> TotalOrderShared:
        return TotalOrderShared(n_variants, costs, **options)

    # -- master: record ----------------------------------------------------

    def before_sync_op(self, vm, thread, op):
        if self.is_master:
            return self._master_check(thread)
        return self._slave_check(thread, op)

    def _master_check(self, thread):
        """Ring-buffer backpressure: the producer stalls when the log is
        a full capacity ahead of the slowest consumer."""
        shared: TotalOrderShared = self.shared
        lag = len(shared.log) - min(shared.next_index.values(),
                                    default=len(shared.log))
        if lag >= shared.buffer_capacity:
            shared.stats.producer_waits += 1
            if shared.obs is not None:
                shared.obs.sync_stall(self.variant_index,
                                      thread.logical_id,
                                      "producer_wait", "to")
            return Wait(("to_full",), cost=self.costs.buffer_log)
        return Proceed()

    def after_sync_op(self, vm, thread, op, value) -> float:
        shared: TotalOrderShared = self.shared
        if self.is_master:
            shared.log.append(SyncRecord(thread=thread.logical_id,
                                         addr=op.addr, site=op.site))
            shared.stats.recorded += 1
            if shared.obs is not None:
                shared.obs.sync_record(
                    vm.index, thread.logical_id, "to",
                    shared.log.occupancy(shared.next_index.values()))
            # Claiming the next free log position is read-write sharing
            # among all master threads (Section 4.5's scalability remark).
            cost = (self.costs.buffer_log
                    + self.costs.cursor_contention_factor * shared.coherence_cost(("to", "producer_cursor"),
                                            thread.global_id))
            for slave in self.slave_indices():
                shared.wake(("to_log", slave))
            return cost
        # Slave: consume the entry we were cleared for.
        variant = self.variant_index
        shared.next_index[variant] += 1
        shared.stats.replayed += 1
        if shared.obs is not None:
            shared.obs.sync_replay(
                variant, thread.logical_id, "to",
                shared.log.occupancy(shared.next_index.values()))
        cost = (self.costs.buffer_consume
                + self.costs.cursor_contention_factor * shared.coherence_cost(("to", "consume_cursor", variant),
                                        thread.global_id))
        shared.wake(("to_next", variant))
        shared.wake(("to_full",))
        return cost

    # -- slave: replay ------------------------------------------------------

    def _slave_check(self, thread, op):
        shared: TotalOrderShared = self.shared
        variant = self.variant_index
        index = shared.next_index[variant]
        # Every check reads the shared consumption cursor: coherence
        # traffic is paid whether or not we may proceed.
        check_cost = (self.costs.buffer_consume
                      + shared.coherence_cost(
                          ("to", "consume_cursor", variant),
                          thread.global_id))
        if index >= len(shared.log):
            shared.stats.stalls += 1
            shared.stats.log_waits += 1
            if shared.obs is not None:
                shared.obs.sync_stall(variant, thread.logical_id,
                                      "log_wait", "to")
            return Wait(("to_log", variant), cost=check_cost)
        entry = shared.log.entry(index)
        if entry.thread != thread.logical_id:
            # Not our turn: stall until another thread consumes (this is
            # the unnecessary serialization on unrelated critical sections).
            shared.stats.stalls += 1
            shared.stats.order_waits += 1
            if shared.obs is not None:
                shared.obs.sync_stall(variant, thread.logical_id,
                                      "order_wait", "to")
            return Wait(("to_next", variant), cost=check_cost)
        if shared.check_sites and entry.site != op.site:
            raise RuntimeError(
                f"TO replay mismatch in v{variant} {thread.logical_id}: "
                f"recorded site {entry.site!r}, replaying {op.site!r} "
                "(diversity changed synchronization behaviour?)")
        return Proceed(cost=self.costs.buffer_consume)
