"""Wall-of-clocks (WoC) replication agent — Figure 4(c), the contribution.

Design recap from Section 4.5:

* Every synchronization variable is assigned (by an address hash) to one
  of a *fixed* number of logical clocks — dynamic allocation is forbidden
  in the agents, so the wall is statically sized and collisions are
  tolerated (plausible clocks keep replay correct, just occasionally
  over-serialized).
* There is **one sync buffer per master thread**, so each buffer has a
  single producer; corresponding slave threads are its only consumers.
  No shared cursors, hence none of the TO/PO cache-line fights.
* The master logs ``(clock id, clock time)`` per sync op and ticks the
  clock.  Slaves keep *local* clock walls: a slave thread may execute its
  next op only when its variant's copy of the recorded clock has reached
  the recorded time.  Master clocks never need to be visible to slaves.

Coherence traffic therefore occurs only (a) on the per-thread SPSC
buffers — the unavoidable cost of replication — and (b) on clocks that
several threads genuinely share, i.e. exactly where the *application*
already had lock contention.
"""

from __future__ import annotations

from repro.core.agents.base import AgentSharedState, BaseAgent
from repro.core.agents.clocks import (
    DEFAULT_CLOCK_COUNT,
    ClockWall,
    clock_for_address,
)
from repro.core.buffers import SPSCBuffer, SyncRecord
from repro.sched.interceptor import Proceed, Wait


class WallOfClocksShared(AgentSharedState):
    """Shared segment: per-master-thread buffers; per-variant clock walls."""

    def __init__(self, n_variants: int, costs=None,
                 n_clocks: int = DEFAULT_CLOCK_COUNT, **kwargs):
        super().__init__(n_variants, costs, **kwargs)
        self.n_clocks = n_clocks
        #: master thread logical id -> its single-producer buffer.
        self.buffers: dict[str, SPSCBuffer] = {}
        #: variant index -> that variant's local clock wall.  Index 0 is
        #: the master's wall (never read by slaves, per the paper).
        self.walls = {v: ClockWall(n_clocks) for v in range(n_variants)}
        #: Distinct 64-bit granules observed per clock (collision metric
        #: for the clock-count ablation; master-side bookkeeping only).
        self.clock_granules: dict[int, set[int]] = {}

    def buffer_for(self, thread_logical: str) -> SPSCBuffer:
        buffer = self.buffers.get(thread_logical)
        if buffer is None:
            buffer = SPSCBuffer(producer=thread_logical)
            buffer.faults = self.faults
            self.buffers[thread_logical] = buffer
        return buffer

    def bind_faults(self, injector) -> None:
        super().bind_faults(injector)
        for buffer in self.buffers.values():
            buffer.faults = injector

    def retire_variant(self, variant: int) -> None:
        super().retire_variant(variant)
        for producer in self.buffers:
            self.wake(("woc_full", producer))

    def reset_variant(self, variant: int) -> None:
        super().reset_variant(variant)
        self.walls[variant] = ClockWall(self.n_clocks)
        for buffer in self.buffers.values():
            buffer.reset_consumer(variant)


class WallOfClocksAgent(BaseAgent):
    """Replays per-clock happens-before order through per-thread buffers."""

    name = "wall_of_clocks"

    @staticmethod
    def make_shared(n_variants: int, costs=None,
                    **options) -> WallOfClocksShared:
        return WallOfClocksShared(n_variants, costs, **options)

    # -- master: record ------------------------------------------------------

    def before_sync_op(self, vm, thread, op):
        if self.is_master:
            return self._master_check(thread)
        return self._slave_check(thread, op)

    def _master_check(self, thread):
        """SPSC ring backpressure, per master thread."""
        shared: WallOfClocksShared = self.shared
        buffer = shared.buffers.get(thread.logical_id)
        if buffer is not None:
            slowest = min((buffer.consumed(v)
                           for v in self.slave_indices()
                           if v not in shared.retired),
                          default=buffer.produced())
            if buffer.produced() - slowest >= shared.buffer_capacity:
                shared.stats.producer_waits += 1
                if shared.obs is not None:
                    shared.obs.sync_stall(
                        self.variant_index, thread.logical_id,
                        "producer_wait", f"woc:{thread.logical_id}")
                return Wait(("woc_full", thread.logical_id),
                            cost=self.costs.buffer_log)
        return Proceed()

    def after_sync_op(self, vm, thread, op, value) -> float:
        shared: WallOfClocksShared = self.shared
        if self.is_master:
            clock_id = clock_for_address(op.addr, shared.n_clocks)
            shared.clock_granules.setdefault(clock_id,
                                             set()).add(op.addr >> 3)
            time = shared.walls[0].tick(clock_id)
            buffer = shared.buffer_for(thread.logical_id)
            buffer.produce(SyncRecord(thread=thread.logical_id,
                                      addr=op.addr, site=op.site,
                                      payload=(clock_id, time)))
            shared.stats.recorded += 1
            if shared.obs is not None:
                shared.obs.sync_record(
                    vm.index, thread.logical_id,
                    f"woc:{thread.logical_id}", buffer.occupancy())
            # SPSC buffer: no cursor sharing.  The clock line is shared
            # only with other master threads using the same clock — i.e.
            # where the application itself contends.
            cost = (self.costs.buffer_log
                    + self.costs.woc_clock_factor * shared.coherence_cost(("woc", "clock", 0, clock_id),
                                            thread.global_id))
            for slave in self.slave_indices():
                shared.wake(("woc_buf", slave, thread.logical_id))
            return cost
        # Slave: commit done; tick our local copy and wake clock waiters.
        variant = self.variant_index
        buffer = shared.buffer_for(thread.logical_id)
        record = buffer.peek(variant)
        clock_id, _ = record.payload
        shared.walls[variant].tick(clock_id)
        buffer.advance(variant)
        shared.stats.replayed += 1
        if shared.obs is not None:
            shared.obs.sync_replay(variant, thread.logical_id,
                                   f"woc:{thread.logical_id}",
                                   buffer.occupancy())
        cost = (self.costs.buffer_consume
                + self.costs.woc_clock_factor * shared.coherence_cost(("woc", "clock", variant, clock_id),
                                        thread.global_id))
        shared.wake(("woc_clock", variant, clock_id))
        shared.wake(("woc_full", thread.logical_id))
        return cost

    # -- slave: replay ----------------------------------------------------------

    def _slave_check(self, thread, op):
        shared: WallOfClocksShared = self.shared
        variant = self.variant_index
        buffer = shared.buffers.get(thread.logical_id)
        record = buffer.peek(variant) if buffer is not None else None
        if record is None:
            shared.stats.stalls += 1
            shared.stats.log_waits += 1
            if shared.obs is not None:
                shared.obs.sync_stall(variant, thread.logical_id,
                                      "log_wait",
                                      f"woc:{thread.logical_id}")
            return Wait(("woc_buf", variant, thread.logical_id),
                        cost=self.costs.buffer_consume)
        clock_id, time = record.payload
        local = shared.walls[variant].read(clock_id)
        if local < time:
            shared.stats.stalls += 1
            shared.stats.order_waits += 1
            if shared.obs is not None:
                shared.obs.clock_lag(variant, thread.logical_id,
                                     clock_id, time - local)
            if len(shared.clock_granules.get(clock_id, ())) > 1:
                # More than one 64-bit granule hashes to this clock: the
                # stall may be pure collision serialization (Section 4.5's
                # "unnecessary stalls in the slave variants").
                shared.stats.clock_collision_stalls += 1
            return Wait(("woc_clock", variant, clock_id),
                        cost=self.costs.buffer_consume)
        if shared.check_sites and record.site != op.site:
            raise RuntimeError(
                f"WoC replay mismatch in v{variant} {thread.logical_id}: "
                f"recorded site {record.site!r}, replaying {op.site!r}")
        return Proceed(cost=self.costs.buffer_consume)
