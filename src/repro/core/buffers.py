"""Shared ring buffers: syscall buffers and sync buffers (Section 4).

ReMon uses two families of shared buffers: *syscall buffers* through which
monitors compare arguments and replicate results, and *sync buffers*
through which the agents capture and replay sync-op orders.  We model them
as append-only logs with explicit cursors and high-water-mark accounting;
the cache-line cost of sharing the cursors is charged through
:mod:`repro.perf.contention` by the agents that own each buffer.

Two flavours exist, mirroring the paper's designs:

* :class:`MultiProducerLog` — one global log all master threads append to
  (the TO/PO agents' single sync buffer).  Appending requires claiming the
  shared "next free position", the scalability problem Section 4.5
  describes.
* :class:`SPSCBuffer` — one buffer per master thread with exactly one
  producer and, per slave variant, one consumer (the wall-of-clocks
  design, Figure 4c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass
class SyncRecord:
    """One logged sync op."""

    thread: str          # logical id of the master thread that executed it
    addr: int            # master-variant address of the sync variable
    site: str            # static instruction site label
    payload: Any = None  # agent-specific (e.g. (clock_id, time) for WoC)


class MultiProducerLog:
    """Append-only log with a shared producer cursor.

    ``append`` is what the master's agent calls; the shared-cursor
    contention it causes is the caller's to charge (the log itself is a
    passive data structure).
    """

    def __init__(self):
        self._entries: list[SyncRecord] = []
        #: Positions of each thread's entries, for O(1) per-thread lookup
        #: (the "n-th op of thread T" correspondence of Section 4.5.1).
        self._thread_positions: dict[str, list[int]] = {}
        self.high_water = 0
        #: Optional fault injector; may corrupt a record before it is
        #: indexed (a flipped word in the shared IPC segment).
        self.faults = None

    def append(self, record: SyncRecord) -> int:
        """Log a record; returns its global position."""
        if self.faults is not None:
            self.faults.on_sync_produce(record)
        position = len(self._entries)
        self._entries.append(record)
        self._thread_positions.setdefault(record.thread, []).append(position)
        self.high_water = max(self.high_water, position + 1)
        return position

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, position: int) -> SyncRecord:
        return self._entries[position]

    def thread_entry_position(self, thread: str, index: int) -> int | None:
        """Global position of ``thread``'s ``index``-th record, if logged."""
        positions = self._thread_positions.get(thread)
        if positions is None or index >= len(positions):
            return None
        return positions[index]

    def thread_entry_count(self, thread: str) -> int:
        return len(self._thread_positions.get(thread, ()))

    def occupancy(self, consumer_frontiers) -> int:
        """Entries the slowest consumer has not yet replayed.

        ``consumer_frontiers`` is an iterable of per-consumer consumed
        counts (TO cursors, PO window frontiers); the observability
        layer samples this after each append/consume.
        """
        slowest = min(consumer_frontiers, default=len(self._entries))
        return len(self._entries) - slowest

    def fingerprint(self) -> dict:
        """JSON-safe cursor snapshot (machine checkpoints)."""
        return {"entries": len(self._entries),
                "high_water": self.high_water,
                "per_thread": {thread: len(positions)
                               for thread, positions
                               in sorted(self._thread_positions.items())}}


class ConsumptionWindow:
    """Per-slave-variant consumption state over a MultiProducerLog.

    Tracks which global positions were replayed and maintains the frontier
    (lowest unconsumed position) that bounds the PO agent's lookahead scan.
    """

    def __init__(self):
        self.consumed: set[int] = set()
        self.frontier = 0
        #: Per-thread count of replayed entries.
        self.per_thread: dict[str, int] = {}

    def mark_consumed(self, position: int, thread: str) -> None:
        self.consumed.add(position)
        self.per_thread[thread] = self.per_thread.get(thread, 0) + 1
        while self.frontier in self.consumed:
            self.consumed.discard(self.frontier)
            self.frontier += 1

    def next_index_for(self, thread: str) -> int:
        return self.per_thread.get(thread, 0)

    def is_consumed(self, position: int) -> bool:
        return position < self.frontier or position in self.consumed

    def window_size(self) -> int:
        """Entries currently in the lookahead window (for stats)."""
        return len(self.consumed)

    def fingerprint(self) -> dict:
        """JSON-safe cursor snapshot (machine checkpoints)."""
        return {"frontier": self.frontier,
                "window": sorted(self.consumed),
                "per_thread": dict(sorted(self.per_thread.items()))}


class SPSCBuffer:
    """Single-producer buffer with independent per-consumer cursors."""

    def __init__(self, producer: str):
        self.producer = producer
        self._entries: list[SyncRecord] = []
        #: consumer key (slave variant index) -> next index to consume.
        self._cursors: dict[int, int] = {}
        self.high_water = 0
        #: Optional fault injector (see MultiProducerLog.faults).
        self.faults = None

    def produce(self, record: SyncRecord) -> int:
        if self.faults is not None:
            self.faults.on_sync_produce(record)
        position = len(self._entries)
        self._entries.append(record)
        self.high_water = max(self.high_water,
                              position + 1 - min(self._cursors.values(),
                                                 default=0))
        return position

    def peek(self, consumer: int) -> SyncRecord | None:
        """Next unconsumed record for ``consumer`` (None if drained)."""
        cursor = self._cursors.get(consumer, 0)
        if cursor >= len(self._entries):
            return None
        return self._entries[cursor]

    def advance(self, consumer: int) -> None:
        self._cursors[consumer] = self._cursors.get(consumer, 0) + 1

    def produced(self) -> int:
        return len(self._entries)

    def consumed(self, consumer: int) -> int:
        return self._cursors.get(consumer, 0)

    def reset_consumer(self, consumer: int) -> None:
        """Rewind one consumer to the start (variant-restart resync)."""
        self._cursors[consumer] = 0

    def occupancy(self) -> int:
        """Entries the slowest consumer has not yet replayed."""
        return len(self._entries) - min(self._cursors.values(), default=0)

    def fingerprint(self) -> dict:
        """JSON-safe cursor snapshot (machine checkpoints)."""
        return {"produced": len(self._entries),
                "high_water": self.high_water,
                "cursors": {str(consumer): cursor for consumer, cursor
                            in sorted(self._cursors.items())}}
