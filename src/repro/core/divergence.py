"""Divergence reports and monitoring policies.

A security-oriented MVEE's entire value is its verdict; this module
defines the structured report the monitor produces when it kills the
variants, and the policy object deciding which syscalls are cross-checked
(the paper evaluates "a variety of monitoring policies ranging from strict
lockstepping on all system calls to lockstepping only on security-
sensitive system calls", Section 5.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.kernel.syscalls import SyscallSpec


class DivergenceKind(enum.Enum):
    """What kind of disagreement the monitor observed."""

    #: Equivalent threads issued different syscalls or different arguments.
    SYSCALL_MISMATCH = "syscall_mismatch"
    #: An execute-all call returned comparable results that differ.
    RESULT_MISMATCH = "result_mismatch"
    #: A thread exited in one variant while its twin kept making calls.
    THREAD_EXIT_MISMATCH = "thread_exit_mismatch"
    #: A variant faulted (crash / protection violation) — e.g. a diversified
    #: variant hit by an attack payload tailored to another variant.
    VARIANT_FAULT = "variant_fault"
    #: The relaxed (VARAN-style) monitor saw a follower deviate from the
    #: leader's recorded per-thread sequence.
    SEQUENCE_MISMATCH = "sequence_mismatch"
    #: A variant failed to reach a lockstep rendezvous (or the master
    #: failed to publish a blocking-call result) within the configured
    #: watchdog deadline — a hang diagnosed instead of waited out.
    WATCHDOG_TIMEOUT = "watchdog_timeout"
    #: A variant was demoted under a graceful-degradation policy while
    #: the remaining set continued (not a whole-run kill).
    VARIANT_QUARANTINED = "variant_quarantined"
    #: A replayed run left its recorded decision stream (time-travel
    #: forensics; see ``docs/REPLAY.md``).
    REPLAY_MISMATCH = "replay_mismatch"


@dataclass
class DivergenceReport:
    """Structured description of a detected divergence."""

    kind: DivergenceKind
    thread: str
    syscall_seq: int
    detail: str = ""
    #: Per-variant observations: variant index -> (name, args) or message.
    observations: dict[int, object] = field(default_factory=dict)

    def __str__(self) -> str:
        obs = "; ".join(f"v{idx}: {obs!r}"
                        for idx, obs in sorted(self.observations.items()))
        text = (f"divergence [{self.kind.value}] thread={self.thread} "
                f"seq={self.syscall_seq}")
        if self.detail:
            text += f" — {self.detail}"
        if obs:
            text += f" ({obs})"
        return text

    def explain(self) -> str:
        """Multi-line, human-oriented rendering (used by the CLI)."""
        headlines = {
            DivergenceKind.SYSCALL_MISMATCH:
                "The variants issued different system calls (or the "
                "same call with different arguments).",
            DivergenceKind.RESULT_MISMATCH:
                "A call every variant executes locally returned "
                "different results across variants.",
            DivergenceKind.THREAD_EXIT_MISMATCH:
                "A thread finished in one variant while its twin kept "
                "making system calls.",
            DivergenceKind.VARIANT_FAULT:
                "One variant crashed (memory fault) where the others "
                "did not — the classic signature of an attack payload "
                "tailored to a single diversified layout.",
            DivergenceKind.SEQUENCE_MISMATCH:
                "A follower deviated from the leader's recorded "
                "per-thread system-call sequence.",
            DivergenceKind.WATCHDOG_TIMEOUT:
                "A variant failed to reach the lockstep rendezvous "
                "within the watchdog deadline — a stall diagnosed "
                "instead of hanging the monitor forever.",
        }
        # New kinds must never crash the CLI's error path: fall back to
        # a generic headline instead of a KeyError lookup.
        lines = [headlines.get(self.kind,
                               f"Divergence of kind "
                               f"'{self.kind.value}' detected."),
                 f"  logical thread : {self.thread}",
                 f"  call sequence #: {self.syscall_seq}"]
        if self.detail:
            lines.append(f"  detail         : {self.detail}")
        for index, observation in sorted(self.observations.items()):
            lines.append(f"  variant {index}      : {observation!r}")
        return "\n".join(lines)


@dataclass
class MonitorPolicy:
    """Which calls are rendezvous-compared, and how strictly.

    ``lockstep``:
      * ``"all"`` — every monitored syscall is executed in lockstep.
      * ``"sensitive"`` — only security-sensitive calls rendezvous; other
        calls are still replicated/ordered but not cross-compared.
      * ``"none"`` — no lockstep at all (replication only).  Used by tests
        to show that benign divergence then goes undetected and variants
        silently receive inconsistent inputs (Section 2.1).
    ``compare_results``:
      cross-check results of execute-all calls (FD numbers etc.).
    ``order_syscalls``:
      run shared-resource calls through the Lamport ordering clock of
      Section 4.1.  Disabling this is the ablation that resurrects the
      FD-assignment divergence of Section 3.1.
    ``extra_sensitive`` / ``never_lockstep``:
      per-deployment overrides of the static classification, like
      ReMon's configurable relaxation policies: names in
      ``extra_sensitive`` are cross-checked even under the sensitive-only
      policy; names in ``never_lockstep`` are never rendezvous-compared
      (they are still replicated/ordered as their spec dictates).
    ``degradation``:
      what happens to a variant the monitor condemns:
      * ``"kill"`` (alias ``"kill-all"``) — the paper's behaviour:
        terminate every variant (the default).
      * ``"quarantine"`` — demote only the condemned variant(s) and
        continue the remaining set; with ≥3 variants a majority vote on
        the rendezvous arguments picks the minority to demote.  Falls
        back to kill when there is no quorum, when the master (variant
        0, the one wired to real I/O) is condemned, or when fewer than
        ``min_active`` variants would remain.
      * ``"restart"`` — quarantine, then rebuild the variant with a
        fresh diversified layout and resync it from the retained master
        syscall history (at most ``max_restarts`` times per variant).
    ``watchdog_cycles``:
      lockstep rendezvous deadline in simulated cycles; ``None``
      disables the watchdog (a stalled variant then parks the run until
      the cycle budget trips).  See ``docs/RESILIENCE.md`` for tuning.
    ``resync_mode``:
      how a restarted variant catches up with the survivors:
      * ``"history"`` — re-execute the master's full retained call
        history at normal monitor cost (the pre-checkpoint behaviour).
      * ``"checkpoint"`` — calls at sequence numbers the latest machine
        checkpoint already covers are *fast-forwarded* (served from
        history with zero monitor cost charges); only the suffix past
        the checkpoint frontier is resynced at full cost.  Requires a
        :class:`repro.replay.Checkpointer` attached to the MVEE
        (``checkpoints=...``); without one it behaves like
        ``"history"``.  See ``docs/REPLAY.md``.
    """

    lockstep: str = "all"
    compare_results: bool = True
    order_syscalls: bool = True
    extra_sensitive: frozenset[str] = frozenset()
    never_lockstep: frozenset[str] = frozenset()
    degradation: str = "kill"
    watchdog_cycles: float | None = None
    min_active: int = 2
    max_restarts: int = 1
    resync_mode: str = "history"

    def is_locksteped(self, spec: SyscallSpec) -> bool:
        if spec.name in self.never_lockstep:
            return False
        if self.lockstep == "all":
            return True
        if self.lockstep == "sensitive":
            return spec.sensitive or spec.name in self.extra_sensitive
        return spec.name in self.extra_sensitive


@dataclass
class QuarantineEvent:
    """One graceful-degradation action taken by the monitor."""

    variant: int
    report: DivergenceReport
    at_cycles: float
    #: Set once the MVEE rebuilt and re-admitted the variant.
    restarted: bool = False

    def summary(self) -> str:
        text = (f"variant {self.variant} quarantined at "
                f"{self.at_cycles:.0f} cycles "
                f"[{self.report.kind.value}]")
        if self.restarted:
            text += " and restarted"
        return text


#: Policies exercised in the correctness matrix (Section 5.1).
POLICY_STRICT = MonitorPolicy(lockstep="all")
POLICY_SENSITIVE_ONLY = MonitorPolicy(lockstep="sensitive")
POLICY_NO_LOCKSTEP = MonitorPolicy(lockstep="none", compare_results=False)
