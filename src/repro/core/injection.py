"""Agent injection — the LD_PRELOAD step (Section 4.5).

The real MVEE forces variants to load the synchronization agent by setting
``LD_PRELOAD``; during initialization the agent attaches to the shared
sync buffer via System V IPC, and discovers its role (record vs replay)
through the self-awareness pseudo-syscall.  The simulation analogue:

* build one :class:`~repro.core.agents.base.AgentSharedState` (the shared
  segment) and one agent instance per variant,
* assign each agent to its variant's :class:`~repro.sched.vm.VariantVM`
  (`vm.agent` is "the library is loaded"),
* install the instrumentation predicate deciding which sync-op *sites*
  call the agent (Listing 3's weak symbols: un-instrumented sites execute
  bare).

`inject_agents` returns the shared state so the caller can bind it to the
machine's wake mechanism after the machine exists.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.agents.base import make_agents
from repro.perf.costs import CostModel


def instrument_all(site: str) -> bool:
    """Default instrumentation: every sync-op site calls the agent."""
    return True


def instrument_sites(sites: Iterable[str]) -> Callable[[str], bool]:
    """Instrument only the given sites (the analysis pipeline's output)."""
    allowed = frozenset(sites)
    return lambda site: site in allowed


def instrument_excluding(prefixes: Iterable[str]) -> Callable[[str], bool]:
    """Instrument everything except sites with the given prefixes.

    Used to reproduce the nginx failure mode: the custom primitives
    (``nginx.*`` sites) stay un-instrumented while the pthread-based ones
    are wrapped (Section 5.5).
    """
    excluded = tuple(prefixes)
    return lambda site: not site.startswith(excluded)


def make_divergence_probe(at_call: int, benign_calls: int = 6,
                          divergent_syscall: str = "getpid",
                          faulty_variant: int = 1):
    """Build a guest program that diverges at a known monitored call.

    The returned program issues ``benign_calls`` identical monitored
    syscalls in every variant, except that ``faulty_variant`` substitutes
    ``divergent_syscall`` at (zero-based) monitored call ``at_call`` —
    the simulation analogue of flipping one compromised variant's
    behaviour at a precise point.  Under a lockstepping monitor this
    produces a ``SYSCALL_MISMATCH`` at exactly ``syscall_seq ==
    at_call``, which makes it the reference workload for the forensics
    tests: the divergence bundle's event tails must first differ at that
    call.

    The probe uses the role pseudo-syscall (Section 4.5) for variant
    self-awareness, exactly as an injected attack payload tailored to
    one diversified variant would behave differently in just that one.
    """
    from repro.guest.program import GuestProgram

    if not 0 <= at_call < benign_calls:
        raise ValueError(
            f"at_call must be within [0, {benign_calls}); got {at_call}")

    class DivergenceProbe(GuestProgram):
        name = "divergence_probe"

        def main(self, ctx):
            role = yield from ctx.mvee_get_role()
            for call in range(benign_calls):
                yield from ctx.compute(500)
                if call == at_call and role == faulty_variant:
                    yield from ctx.syscall(divergent_syscall)
                else:
                    yield from ctx.syscall("gettimeofday")
            return 0

    return DivergenceProbe()


def inject_agents(vms, agent_name: str | None,
                  costs: CostModel | None = None,
                  instrument: Callable[[str], bool] | None = instrument_all,
                  **agent_options):
    """Inject agents into every variant; returns the shared state or None.

    ``agent_name=None`` models running without LD_PRELOAD: the weak-symbol
    stubs make every wrapper a no-op, so no ordering is enforced (the
    configuration under which benign divergence appears).
    """
    for vm in vms:
        vm.instrument = instrument
    if agent_name is None:
        for vm in vms:
            vm.agent = None
        return None
    shared, agents = make_agents(agent_name, len(vms), costs,
                                 **agent_options)
    for vm, agent in zip(vms, agents, strict=True):
        # The role discovery: variant 0's agent records, others replay —
        # what the real agent learns from the mvee_get_role pseudo-call.
        vm.agent = agent
    return shared
