"""Agent injection — the LD_PRELOAD step (Section 4.5).

The real MVEE forces variants to load the synchronization agent by setting
``LD_PRELOAD``; during initialization the agent attaches to the shared
sync buffer via System V IPC, and discovers its role (record vs replay)
through the self-awareness pseudo-syscall.  The simulation analogue:

* build one :class:`~repro.core.agents.base.AgentSharedState` (the shared
  segment) and one agent instance per variant,
* assign each agent to its variant's :class:`~repro.sched.vm.VariantVM`
  (`vm.agent` is "the library is loaded"),
* install the instrumentation predicate deciding which sync-op *sites*
  call the agent (Listing 3's weak symbols: un-instrumented sites execute
  bare).

`inject_agents` returns the shared state so the caller can bind it to the
machine's wake mechanism after the machine exists.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.agents.base import make_agents
from repro.perf.costs import CostModel


def instrument_all(site: str) -> bool:
    """Default instrumentation: every sync-op site calls the agent."""
    return True


def instrument_sites(sites: Iterable[str]) -> Callable[[str], bool]:
    """Instrument only the given sites (the analysis pipeline's output)."""
    allowed = frozenset(sites)
    return lambda site: site in allowed


def instrument_excluding(prefixes: Iterable[str]) -> Callable[[str], bool]:
    """Instrument everything except sites with the given prefixes.

    Used to reproduce the nginx failure mode: the custom primitives
    (``nginx.*`` sites) stay un-instrumented while the pthread-based ones
    are wrapped (Section 5.5).
    """
    excluded = tuple(prefixes)
    return lambda site: not site.startswith(excluded)


def inject_agents(vms, agent_name: str | None,
                  costs: CostModel | None = None,
                  instrument: Callable[[str], bool] | None = instrument_all,
                  **agent_options):
    """Inject agents into every variant; returns the shared state or None.

    ``agent_name=None`` models running without LD_PRELOAD: the weak-symbol
    stubs make every wrapper a no-op, so no ordering is enforced (the
    configuration under which benign divergence appears).
    """
    for vm in vms:
        vm.instrument = instrument
    if agent_name is None:
        for vm in vms:
            vm.agent = None
        return None
    shared, agents = make_agents(agent_name, len(vms), costs,
                                 **agent_options)
    for vm, agent in zip(vms, agents):
        # The role discovery: variant 0's agent records, others replay —
        # what the real agent learns from the mvee_get_role pseudo-call.
        vm.agent = agent
    return shared
