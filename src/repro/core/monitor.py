"""The strict, security-oriented MVEE monitor.

Implements the synchronization model of Section 2: variants execute
monitored system calls in lockstep — no variant proceeds past a monitored
call until all variants have arrived at an equivalent call — with the
master performing I/O and the monitor replicating results to the slaves.
Cross-thread ordering of shared-resource calls uses the Lamport-clock
scheme of Section 4.1 (:mod:`repro.core.syscall_order`).

Structure: one `Monitor` instance per variant set, acting as the
simulator's :class:`~repro.sched.interceptor.SyscallInterceptor`.  State
is keyed by *(logical thread, per-thread monitored-call sequence number)*
— the simulation analogue of ReMon's one-monitor-thread-per-thread-set
design: each key identifies one logical call across all variants.

Divergence responses (each produces a :class:`DivergenceReport`):

* argument/name mismatch at a lockstep rendezvous,
* result mismatch on an execute-all call (e.g. FD numbers),
* a thread exiting in one variant while its twin keeps calling,
* a variant faulting (crash under attack, protection violation),
* a watchdog timeout (a variant that never reaches the rendezvous).

What happens *next* is the :class:`~repro.core.divergence.MonitorPolicy`
``degradation`` policy's decision: ``kill`` (the paper's behaviour —
terminate every variant), ``quarantine`` (demote only the condemned
variant(s) and keep the rest running, using a majority vote when ≥3
variants disagree), or ``restart`` (quarantine, then resync a rebuilt
variant from the retained master history).  See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.divergence import (
    DivergenceKind,
    DivergenceReport,
    MonitorPolicy,
    QuarantineEvent,
)
from repro.core.syscall_order import SyscallOrderer
from repro.kernel.syscalls import MVEE_GET_ROLE, SyscallSpec, spec_for
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.sched.interceptor import Kill, Proceed, Result, Wait
from repro.sched.interceptor import SyscallInterceptor

#: How many times a watchdog deadline is extended for a variant that is
#: still resyncing from history before it is condemned anyway.  Bounds
#: the rearm loop so a restarted variant that itself deadlocks cannot
#: postpone the verdict forever.
_MAX_WATCHDOG_REARMS = 16


@dataclass
class _CallInfo:
    """Per-(variant, thread) state for the in-flight monitored call."""

    seq: int
    name: str
    overhead_charged: bool = False
    registered: bool = False
    observed: bool = False


@dataclass
class _Rendezvous:
    """State for one logical call across all variants."""

    expected: int
    #: variant -> (name, normalized args)
    arrivals: dict[int, tuple] = field(default_factory=dict)
    compared: bool = False
    #: Master result for replicated calls (set by after_syscall).
    result_ready: bool = False
    result: Any = None
    #: variant -> local result, for execute-all result comparison.
    local_results: dict[int, Any] = field(default_factory=dict)
    finished: int = 0


def normalize_args(spec: SyscallSpec, args: tuple) -> tuple:
    """Mask address-valued arguments; addresses legally differ (ASLR)."""
    return tuple("<addr>" if index in spec.address_args else arg
                 for index, arg in enumerate(args))


class Monitor(SyscallInterceptor):
    """Strict lockstep monitor for one variant set."""

    def __init__(self, n_variants: int,
                 policy: MonitorPolicy | None = None,
                 costs: CostModel | None = None):
        self.n_variants = n_variants
        self.policy = policy or MonitorPolicy()
        self.costs = costs or DEFAULT_COSTS
        self.orderer = SyscallOrderer(n_variants, wake=lambda key: None)
        self._wake = lambda key: None
        #: (variant, thread) -> _CallInfo for the in-flight call.
        self._current: dict[tuple[int, str], _CallInfo] = {}
        #: (variant, thread) -> count of completed monitored calls.
        self._seq: dict[tuple[int, str], int] = {}
        #: (thread, seq) -> rendezvous state.
        self._rendezvous: dict[tuple[str, int], _Rendezvous] = {}
        #: (variant, thread) -> monitored-call count at thread exit.
        self._exited: dict[tuple[int, str], int] = {}
        #: Per-thread blocking-result streams (futex/nanosleep):
        #: (thread, k) -> master result; counters per (variant, thread).
        self._stream: dict[tuple[str, int], Any] = {}
        self._stream_count: dict[tuple[int, str], int] = {}
        self.divergence: DivergenceReport | None = None
        #: Optional :class:`repro.obs.ObsHub` (set by the MVEE bootstrap).
        self.obs = None
        #: Variants still being cross-checked.  Quarantine removes a
        #: variant; restart re-admits it.
        self.active: set[int] = set(range(n_variants))
        #: Every graceful-degradation action taken, in order.
        self.quarantine_log: list[QuarantineEvent] = []
        self._machine = None
        #: Watchdog bookkeeping (only populated when the policy sets a
        #: deadline): stream keys already guarded, and per-rendezvous
        #: rearm counts for variants still resyncing.
        self._stream_armed: set = set()
        self._rearm_count: dict = {}
        #: Stream indices declared spurious after a quarantine: the
        #: perturbed slave schedule can block where the master never
        #: publishes, so these waits are served as spurious wakeups.
        self._stream_spurious: set = set()
        #: Restart support: callback installed by the MVEE, restart
        #: counts per variant, variants currently resyncing, and the
        #: master call history they resync from (recorded only under the
        #: restart policy).
        self._restart_cb = None
        self._restart_counts: dict[int, int] = {}
        self._catchup: set[int] = set()
        self._history: dict[tuple[str, int], dict] | None = (
            {} if self.policy.degradation == "restart" else None)
        #: Optional :class:`repro.replay.CheckpointStore` (set by the
        #: MVEE when a checkpointer is attached); under
        #: ``resync_mode == "checkpoint"`` the latest checkpoint's
        #: ``master_seq`` is the fast-forward frontier.
        self.checkpoints = None
        #: variant -> {"mode", "restarts", "fast_forwarded", "resynced"}
        #: — how each restarted variant caught up (fault-matrix column).
        self.resync_stats: dict[int, dict] = {}
        #: variant -> fast-forward frontier ({thread logical -> seq}),
        #: frozen at readmit time from the then-latest checkpoint.
        self._ff_frontier: dict[int, dict] = {}
        self._caught_up_announced: set[int] = set()

    def bind_machine(self, machine) -> None:
        """Install the wake callback (MVEE bootstrap)."""
        self._wake = machine.wake_key
        self.orderer.bind_wake(machine.wake_key)
        self._machine = machine

    def set_restart_callback(self, callback) -> None:
        """Install the MVEE's variant-rebuild hook (restart policy)."""
        self._restart_cb = callback

    # -- helpers ----------------------------------------------------------

    def _kill(self, report: DivergenceReport) -> Kill:
        self.divergence = report
        return Kill(report=report)

    def _call_info(self, vm, thread, name: str) -> _CallInfo:
        key = (vm.index, thread.logical_id)
        info = self._current.get(key)
        if info is None:
            info = _CallInfo(seq=self._seq.get(key, 0), name=name)
            self._current[key] = info
        return info

    def _finish_call(self, vm, thread) -> None:
        key = (vm.index, thread.logical_id)
        info = self._current.pop(key, None)
        if info is None:
            return
        self._seq[key] = info.seq + 1
        rdv_key = (thread.logical_id, info.seq)
        rdv = self._rendezvous.get(rdv_key)
        if rdv is not None:
            rdv.finished += 1
            if rdv.finished >= len(self.active):
                del self._rendezvous[rdv_key]

    # -- degradation ------------------------------------------------------

    def _resolve(self, report: DivergenceReport, culprits,
                 allow_restart: bool = True):
        """Apply the degradation policy to a condemned variant set.

        Returns a :class:`Kill` directive when the whole run must die
        (the default policy, no quorum, master condemned, or too few
        survivors), or ``None`` when every culprit was quarantined and
        the remaining set continues.
        """
        mode = self.policy.degradation
        if mode == "kill-all":
            mode = "kill"
        culprits = set(culprits or ())
        survivors = self.active - culprits
        if (mode not in ("quarantine", "restart")
                or not culprits
                or 0 in culprits
                or len(survivors) < max(self.policy.min_active, 1)):
            return self._kill(report)
        for variant in sorted(culprits):
            self._quarantine(variant, report,
                             restart=(mode == "restart" and allow_restart))
        return None

    def _quarantine(self, variant: int, report: DivergenceReport,
                    restart: bool = False) -> None:
        """Demote one variant: kill its threads, keep the rest running."""
        self.active.discard(variant)
        self._catchup.discard(variant)
        machine = self._machine
        event = QuarantineEvent(
            variant=variant, report=report,
            at_cycles=machine.now if machine is not None else 0.0)
        self.quarantine_log.append(event)
        if machine is not None:
            machine.terminate_variant(variant)
        if self.obs is not None:
            self.obs.variant_quarantined(variant, report.kind.value,
                                         report.thread,
                                         report.syscall_seq)
        if (restart and self._restart_cb is not None
                and machine is not None
                and self._restart_counts.get(variant, 0)
                < max(self.policy.max_restarts, 0)):
            self._restart_counts[variant] = (
                self._restart_counts.get(variant, 0) + 1)
            event.restarted = True
            machine.call_soon(
                lambda m, v=variant: self._restart_cb(v))
        # Rendezvous blocked on the demoted variant can now complete.
        for rdv_key in list(self._rendezvous):
            self._wake(("rdv", rdv_key))

    def _vote(self, observations: dict[int, Any]):
        """Majority vote over per-variant observations.

        Returns the minority variant set to condemn, or ``None`` when no
        strict majority exists (vote tie ⇒ no quorum ⇒ kill fallback).
        """
        groups: dict[Any, set[int]] = {}
        for variant, observed in observations.items():
            groups.setdefault(observed, set()).add(variant)
        winners = max(groups.values(), key=len)
        if 2 * len(winners) <= len(observations):
            return None
        return set(observations) - winners

    def master_seq_snapshot(self) -> dict[str, int]:
        """Master's completed monitored calls per logical thread.

        This is what a checkpoint pins as the fast-forward frontier:
        history entries below it predate the snapshot and can be served
        to a resyncing variant at zero monitor cost.
        """
        return {thread: seq for (variant, thread), seq
                in self._seq.items() if variant == 0}

    def readmit(self, variant: int) -> None:
        """Re-admit a rebuilt variant (restart): wipe its per-variant
        state so it resyncs from the retained master history."""
        self.active.add(variant)
        self._catchup.add(variant)
        self._caught_up_announced.discard(variant)
        stats = self.resync_stats.setdefault(
            variant, {"mode": self.policy.resync_mode, "restarts": 0,
                      "fast_forwarded": 0, "resynced": 0})
        stats["restarts"] += 1
        frontier: dict[str, int] = {}
        if (self.policy.resync_mode == "checkpoint"
                and self.checkpoints is not None):
            latest = self.checkpoints.latest()
            if latest is not None:
                frontier = dict(latest.master_seq)
        self._ff_frontier[variant] = frontier
        for table in (self._seq, self._current, self._stream_count,
                      self._exited):
            for key in [k for k in table if k[0] == variant]:
                del table[key]
        # Align the replacement's blocking-call streams with the
        # master's publish counters: history-covered blocking calls are
        # served as spurious wakeups (see _before_stream), so once live
        # the replacement must consume *new* publishes, not the
        # master's already-drained backlog.
        for (owner, thread_logical), count in list(
                self._stream_count.items()):
            if owner == 0:
                self._stream_count[(variant, thread_logical)] = count
        self.orderer.reset_variant(variant)

    def _rdv_expected(self, rdv_key) -> set[int]:
        """Which variants a rendezvous must wait for.

        A restarted variant serves history-covered calls outside the
        live rendezvous, so live completion must not wait for it there.
        """
        if not self._catchup or self._history is None:
            return self.active
        if rdv_key in self._history:
            return {v for v in self.active if v not in self._catchup}
        return self.active

    # -- watchdog ---------------------------------------------------------

    def _arm_watchdog(self, rdv_key, deadline: float) -> None:
        self._machine.schedule_watchdog(
            deadline,
            lambda machine, time, key=rdv_key:
                self._watchdog_fire(key, time))

    def _watchdog_cause(self) -> str:
        """Classify a watchdog timeout for the diagnosis detail.

        ``deadlock-suspected`` when at least two variants are wedged on
        futex words — replicated sync ordering wedges every variant
        identically, so multi-variant futex blockage at the deadline is
        the guest-deadlock signature; ``stall`` otherwise (one slow or
        wedged variant).  Runs with a deadlock detector attached never
        reach this path: the cycle is flagged at formation.
        """
        vms = getattr(self._machine, "vms", None) or ()
        wedged = 0
        for vm in vms:
            # The master's deadlocked threads park on futex words; its
            # slaves park on the blocking-call *streams* of those same
            # calls (the master never publishes a result).  Either way,
            # >= 2 threads wedged in blocking sync is the hold-and-wait
            # signature; join/timer parks don't count.
            parked = sum(
                1 for thread in vm.threads.values()
                if thread.park_key is not None
                and thread.park_key[0] in ("futex", "stream"))
            if parked >= 2:
                wedged += 1
        return "deadlock-suspected" if wedged >= 2 else "stall"

    def _watchdog_fire(self, rdv_key, time: float) -> None:
        """Rendezvous deadline elapsed: diagnose who never arrived."""
        if self.divergence is not None:
            return
        rdv = self._rendezvous.get(rdv_key)
        if rdv is None or rdv.compared:
            return
        expected = self._rdv_expected(rdv_key)
        missing = expected - set(rdv.arrivals)
        if not missing:
            return
        if (missing <= self._catchup
                and self._rearm_count.get(rdv_key, 0)
                < _MAX_WATCHDOG_REARMS):
            # Only resyncing variants are late: extend the deadline
            # rather than re-condemning a variant we just restarted.
            self._rearm_count[rdv_key] = (
                self._rearm_count.get(rdv_key, 0) + 1)
            self._arm_watchdog(rdv_key,
                               time + self.policy.watchdog_cycles)
            return
        self._machine.commit_time(time)
        thread_logical, seq = rdv_key
        call_name = next((arrival[0]
                          for arrival in rdv.arrivals.values()), "?")
        observations = {v: rdv.arrivals.get(v, "<never arrived>")
                        for v in sorted(self.active)}
        report = DivergenceReport(
            kind=DivergenceKind.WATCHDOG_TIMEOUT,
            thread=thread_logical, syscall_seq=seq,
            detail=(f"variant(s) {sorted(missing)} failed to reach "
                    f"monitored call #{seq} ({call_name}) within the "
                    f"{self.policy.watchdog_cycles:.0f}-cycle "
                    "rendezvous deadline "
                    f"[cause: {self._watchdog_cause()}]"),
            observations=observations)
        if self.obs is not None:
            self.obs.watchdog_timeout(thread_logical, seq,
                                      sorted(missing))
        directive = self._resolve(report, culprits=missing)
        if directive is not None:
            self._machine.kill_all(report)

    def _stream_watchdog_fire(self, stream_key, time: float) -> None:
        """The master never published a blocking-call result in time.

        The publisher is the master — the one variant wired to real I/O
        — so there is nothing to quarantine: diagnose and kill.
        """
        if self.divergence is not None:
            return
        if stream_key in self._stream:
            return
        if not self._machine.has_waiters(("stream", stream_key)):
            return
        if self.quarantine_log:
            # Degraded set: the quarantine perturbed the survivors'
            # scheduling, so a slave may legitimately block where the
            # master never publishes.  Blocking calls are spurious-wake
            # safe, so recover the waiters instead of killing the run
            # we just fought to keep alive.
            self._machine.commit_time(time)
            self._stream_spurious.add(stream_key)
            self._stream_armed.discard(stream_key)
            self._wake(("stream", stream_key))
            return
        self._machine.commit_time(time)
        thread_logical, index = stream_key
        report = DivergenceReport(
            kind=DivergenceKind.WATCHDOG_TIMEOUT,
            thread=thread_logical, syscall_seq=index,
            detail=(f"master never published blocking-call result "
                    f"#{index} for thread {thread_logical!r} within the "
                    f"{self.policy.watchdog_cycles:.0f}-cycle deadline "
                    "(master-side hang: lost wake or stalled blocking "
                    f"call) [cause: {self._watchdog_cause()}]"),
            observations={0: "<blocking call never returned>"})
        if self.obs is not None:
            self.obs.watchdog_timeout(thread_logical, index, [0])
        self.divergence = report
        self._machine.kill_all(report)

    # -- interceptor: before --------------------------------------------------

    def before_syscall(self, vm, thread, name: str, args: tuple):
        if self.divergence is not None:
            # A divergence was flagged asynchronously (thread-exit check);
            # any thread reaching the monitor now is killed.
            return Kill(report=self.divergence)
        if vm.index not in self.active:  # pragma: no cover - defensive
            return Proceed()
        spec = spec_for(name)
        if name == MVEE_GET_ROLE:
            # The self-awareness pseudo-syscall: answered by the monitor,
            # never forwarded to the kernel (Section 4.5).
            return Result(vm.index, cost=self.costs.syscall_base)
        if spec.stream_replicated:
            return self._before_stream(vm, thread, name, args, spec)
        info = self._call_info(vm, thread, name)
        obs = self.obs
        if obs is not None and not info.observed:
            info.observed = True
            obs.monitored_call(vm.index, thread.logical_id, name,
                               spec.cls.value, info.seq)
        base_cost = 0.0
        if not info.overhead_charged:
            base_cost += self.costs.monitor_syscall_overhead
            info.overhead_charged = True
        if self._catchup and vm.index in self._catchup:
            served = self._serve_from_history(vm, thread, name, args,
                                              spec, info, base_cost)
            if served is not None:
                return served
        lockstep = self.policy.is_locksteped(spec)
        rdv_key = (thread.logical_id, info.seq)
        if lockstep:
            rdv = self._rendezvous.get(rdv_key)
            if rdv is None:
                rdv = _Rendezvous(expected=self.n_variants)
                self._rendezvous[rdv_key] = rdv
                if (self.policy.watchdog_cycles is not None
                        and self._machine is not None):
                    self._arm_watchdog(
                        rdv_key,
                        self._machine.now + self.policy.watchdog_cycles)
            if not info.registered:
                rdv.arrivals[vm.index] = (name,
                                          normalize_args(spec, args))
                info.registered = True
                if obs is not None:
                    obs.rendezvous_arrive(rdv_key, vm.index,
                                          thread.logical_id)
                mismatch = self._check_exited_twins(vm, thread, info.seq)
                if mismatch is not None:
                    return mismatch
                if vm.index not in self.active:
                    # The exit-mismatch vote condemned this caller.
                    return Proceed()
            if not (self._rdv_expected(rdv_key)
                    <= rdv.arrivals.keys()):
                return Wait(("rdv", rdv_key),
                            cost=base_cost + self.costs.rendezvous_recheck)
            if not rdv.compared:
                rdv.compared = True
                self._wake(("rdv", rdv_key))
                relevant = {v: arrival
                            for v, arrival in rdv.arrivals.items()
                            if v in self.active}
                observed = set(relevant.values())
                if obs is not None:
                    obs.rendezvous_complete(rdv_key, vm.index,
                                            thread.logical_id,
                                            matched=len(observed) <= 1)
                if len(observed) > 1:
                    culprits = self._vote(relevant)
                    report = DivergenceReport(
                        kind=DivergenceKind.SYSCALL_MISMATCH,
                        thread=thread.logical_id,
                        syscall_seq=info.seq,
                        detail="lockstep argument comparison failed",
                        observations=dict(rdv.arrivals))
                    directive = self._resolve(report, culprits)
                    if directive is not None:
                        return directive
                    if vm.index not in self.active:
                        # This caller was the outvoted minority; its
                        # threads are already terminated.
                        return Proceed()
        if spec.ordered and self.policy.order_syscalls:
            outcome = self.orderer.check(vm.index, thread.logical_id,
                                         thread.global_id)
            if isinstance(outcome, Wait):
                if obs is not None:
                    obs.clock_stall(vm.index, thread.logical_id,
                                    outcome.key)
                outcome.cost += base_cost + self.costs.ordering_bookkeeping
                return outcome
            base_cost += self.costs.ordering_bookkeeping
        if spec.replicated and vm.index != 0:
            rdv = self._rendezvous.get(rdv_key)
            if rdv is None:
                rdv = _Rendezvous(expected=self.n_variants)
                self._rendezvous[rdv_key] = rdv
            if not rdv.result_ready:
                return Wait(("result", rdv_key),
                            cost=base_cost + self.costs.rendezvous_recheck)
            if spec.ordered and self.policy.order_syscalls:
                # The slave never executes locally, so after_syscall
                # never runs for it: advance its Lamport clock here or
                # every later ordered call of this variant stalls.
                self.orderer.finish(vm.index, thread.logical_id,
                                    thread.global_id)
            vm.kernel.apply_replicated(name, args, rdv.result)
            self._finish_call(vm, thread)
            return Result(rdv.result,
                          cost=base_cost + self.costs.replication_copy)
        return Proceed(cost=base_cost)

    def _before_stream(self, vm, thread, name, args, spec):
        """Blocking-call streams (futex / nanosleep): Section 4.1 footnote."""
        if vm.index == 0:
            return Proceed()
        key = (vm.index, thread.logical_id)
        index = self._stream_count.get(key, 0)
        stream_key = (thread.logical_id, index)
        if stream_key not in self._stream:
            if stream_key in self._stream_spurious:
                # Declared unservable after a quarantine perturbed the
                # schedule: serve a spurious wakeup (no consumption, so
                # the counter stays aligned with the master's stream).
                return Result(0, cost=self.costs.replication_copy)
            if self._catchup and vm.index in self._catchup:
                # Restart resync: the replacement's local blocking
                # pattern need not match the master's historical one,
                # so it may block where the master never published.
                # Blocking calls are spurious-wake safe by contract
                # (futex loops re-check their predicate, nanosleep may
                # be cut short), so serve an immediate spurious wakeup
                # instead of waiting on a result that may never come.
                return Result(0, cost=self.costs.replication_copy)
            if self.obs is not None:
                self.obs.stream_wait(vm.index, thread.logical_id, index)
            if (self.policy.watchdog_cycles is not None
                    and self._machine is not None
                    and stream_key not in self._stream_armed):
                self._stream_armed.add(stream_key)
                self._machine.schedule_watchdog(
                    self._machine.now + self.policy.watchdog_cycles,
                    lambda machine, time, skey=stream_key:
                        self._stream_watchdog_fire(skey, time))
            return Wait(("stream", stream_key))
        self._stream_count[key] = index + 1
        return Result(self._stream[stream_key],
                      cost=self.costs.replication_copy)

    def _check_exited_twins(self, vm, thread, seq: int):
        """Did this thread's twin already exit in another variant?"""
        exited = set()
        for variant in self.active:
            if variant == vm.index:
                continue
            final = self._exited.get((variant, thread.logical_id))
            if final is not None and final <= seq:
                exited.add(variant)
        if not exited:
            return None
        still_calling = self.active - exited
        # Majority heuristic: condemn whichever side is the minority
        # (ties and a condemned master fall back to kill in _resolve).
        if len(exited) >= len(still_calling):
            culprits = still_calling
        else:
            culprits = exited
        report = DivergenceReport(
            kind=DivergenceKind.THREAD_EXIT_MISMATCH,
            thread=thread.logical_id,
            syscall_seq=seq,
            detail=(f"thread exited in variant(s) {sorted(exited)} but "
                    f"its twin in {sorted(still_calling)} made call "
                    f"#{seq}"))
        return self._resolve(report, culprits)

    # -- restart resync ---------------------------------------------------

    def _mark_caught_up(self, variant: int) -> None:
        """First history miss after a restart: the variant is live again."""
        if variant in self._caught_up_announced:
            return
        self._caught_up_announced.add(variant)
        if self.obs is not None:
            self.obs.variant_caught_up(variant)

    def _is_fast_forward(self, variant: int, thread_logical: str,
                         seq: int) -> bool:
        """Is this history call below the checkpoint frontier?

        Fast-forwarded calls keep their ordering semantics (the Lamport
        clock still decides FD allocation order) but charge zero monitor
        cost — the checkpoint already vouches for everything before it.
        """
        frontier = self._ff_frontier.get(variant)
        if not frontier:
            return False
        return seq < frontier.get(thread_logical, 0)

    def _count_resync(self, variant: int, fast: bool) -> None:
        stats = self.resync_stats.get(variant)
        if stats is not None:
            stats["fast_forwarded" if fast else "resynced"] += 1

    def _serve_from_history(self, vm, thread, name, args, spec, info,
                            base_cost: float):
        """Resync a restarted variant from the retained master history.

        Returns ``None`` when the call is not covered by history — the
        variant has caught up and rejoins the live lockstep protocol.
        """
        key = (thread.logical_id, info.seq)
        entry = self._history.get(key)
        if entry is None:
            self._mark_caught_up(vm.index)
            return None
        fast = self._is_fast_forward(vm.index, thread.logical_id,
                                     info.seq)
        if fast:
            base_cost = 0.0
        if (name, normalize_args(spec, args)) != entry["call"]:
            report = DivergenceReport(
                kind=DivergenceKind.SYSCALL_MISMATCH,
                thread=thread.logical_id, syscall_seq=info.seq,
                detail=(f"restarted variant {vm.index} diverged from "
                        "the recorded master history while resyncing"),
                observations={0: entry["call"],
                              vm.index: (name,
                                         normalize_args(spec, args))})
            directive = self._resolve(report, culprits={vm.index},
                                      allow_restart=False)
            return directive if directive is not None else Proceed()
        if spec.ordered and self.policy.order_syscalls:
            outcome = self.orderer.check(vm.index, thread.logical_id,
                                         thread.global_id)
            if isinstance(outcome, Wait):
                if self.obs is not None:
                    self.obs.clock_stall(vm.index, thread.logical_id,
                                         outcome.key)
                if not fast:
                    outcome.cost += (base_cost
                                     + self.costs.ordering_bookkeeping)
                return outcome
            if not fast:
                base_cost += self.costs.ordering_bookkeeping
        if entry["replicated"]:
            if spec.ordered and self.policy.order_syscalls:
                self.orderer.finish(vm.index, thread.logical_id,
                                    thread.global_id)
            vm.kernel.apply_replicated(name, args, entry["result"])
            self._finish_call(vm, thread)
            self._count_resync(vm.index, fast)
            copy_cost = 0.0 if fast else self.costs.replication_copy
            return Result(entry["result"], cost=base_cost + copy_cost)
        # Execute-all call: run it locally; _after_from_history compares.
        return Proceed(cost=base_cost)

    def _after_from_history(self, vm, thread, name, spec, info, entry,
                            result):
        """Completion of a history-served execute-all call."""
        fast = self._is_fast_forward(vm.index, thread.logical_id,
                                     info.seq)
        cost = 0.0
        if spec.ordered and self.policy.order_syscalls:
            self.orderer.finish(vm.index, thread.logical_id,
                                thread.global_id)
            if not fast:
                cost += self.costs.ordering_bookkeeping
        expected_repr = entry.get("result_repr")
        if (self.policy.compare_results and expected_repr is not None
                and repr(result) != expected_repr):
            self._finish_call(vm, thread)
            report = DivergenceReport(
                kind=DivergenceKind.RESULT_MISMATCH,
                thread=thread.logical_id, syscall_seq=info.seq,
                detail=(f"restarted variant {vm.index}: {name} result "
                        "diverged from the recorded master history"),
                observations={0: expected_repr, vm.index: repr(result)})
            directive = self._resolve(report, culprits={vm.index},
                                      allow_restart=False)
            return directive if directive is not None else Proceed()
        self._finish_call(vm, thread)
        self._count_resync(vm.index, fast)
        return Proceed(cost=cost)

    # -- interceptor: after -------------------------------------------------------

    def after_syscall(self, vm, thread, name: str, args: tuple, result):
        if self.divergence is not None:
            return Kill(report=self.divergence)
        spec = spec_for(name)
        if spec.stream_replicated:
            if vm.index == 0:
                key = (vm.index, thread.logical_id)
                index = self._stream_count.get(key, 0)
                self._stream_count[key] = index + 1
                stream_key = (thread.logical_id, index)
                self._stream[stream_key] = result
                self._wake(("stream", stream_key))
                if self.obs is not None:
                    self.obs.stream_publish(vm.index, thread.logical_id,
                                            index)
            return Proceed(cost=self.costs.replication_copy)
        info = self._current.get((vm.index, thread.logical_id))
        if info is None:  # pragma: no cover - defensive
            return Proceed()
        if self._catchup and vm.index in self._catchup:
            entry = self._history.get((thread.logical_id, info.seq))
            if entry is not None:
                return self._after_from_history(vm, thread, name, spec,
                                                info, entry, result)
        rdv_key = (thread.logical_id, info.seq)
        cost = 0.0
        if spec.ordered and self.policy.order_syscalls:
            timestamp = self.orderer.finish(vm.index, thread.logical_id,
                                            thread.global_id)
            cost += self.costs.ordering_bookkeeping
            if self.obs is not None and vm.index == 0:
                self.obs.clock_tick(vm.index, thread.logical_id,
                                    timestamp)
        if spec.replicated and vm.index == 0:
            rdv = self._rendezvous.get(rdv_key)
            if rdv is None:
                rdv = _Rendezvous(expected=self.n_variants)
                self._rendezvous[rdv_key] = rdv
            rdv.result = result
            rdv.result_ready = True
            self._wake(("result", rdv_key))
            cost += self.costs.replication_copy
        elif (not spec.replicated and self.policy.compare_results
                and self.policy.is_locksteped(spec)
                and not spec.address_result):
            rdv = self._rendezvous.get(rdv_key)
            if rdv is not None:
                rdv.local_results[vm.index] = result
                relevant = {v: r
                            for v, r in rdv.local_results.items()
                            if v in self.active}
                if (len(relevant) >= len(self.active)
                        and len(set(map(repr, relevant.values()))) > 1):
                    culprits = self._vote(
                        {v: repr(r) for v, r in relevant.items()})
                    self._finish_call(vm, thread)
                    report = DivergenceReport(
                        kind=DivergenceKind.RESULT_MISMATCH,
                        thread=thread.logical_id,
                        syscall_seq=info.seq,
                        detail=f"{name} returned differing results",
                        observations=dict(rdv.local_results))
                    directive = self._resolve(report, culprits)
                    if directive is not None:
                        return directive
                    return Proceed(cost=cost)
        if self._history is not None and vm.index == 0:
            self._history[(thread.logical_id, info.seq)] = {
                "call": (name, normalize_args(spec, args)),
                "replicated": spec.replicated,
                "result": result if spec.replicated else None,
                "result_repr": (repr(result)
                                if (not spec.replicated
                                    and not spec.address_result)
                                else None),
            }
        self._finish_call(vm, thread)
        return Proceed(cost=cost)

    # -- interceptor: lifecycle ------------------------------------------------------

    def on_thread_exit(self, vm, thread) -> None:
        if vm.index not in self.active:
            return
        key = (vm.index, thread.logical_id)
        self._exited[key] = self._seq.get(key, 0)
        final = self._exited[key]
        # If twins in other variants are parked at a rendezvous this thread
        # will never join, that is a divergence; find and flag it.
        for (logical, seq), rdv in list(self._rendezvous.items()):
            if logical != thread.logical_id or seq < final:
                continue
            waiting = {v for v in rdv.arrivals
                       if v in self.active and v != vm.index}
            if not waiting:
                continue
            report = DivergenceReport(
                kind=DivergenceKind.THREAD_EXIT_MISMATCH,
                thread=logical,
                syscall_seq=seq,
                detail=(f"variant {vm.index} thread exited but twins "
                        f"are waiting at monitored call #{seq}"),
                observations=dict(rdv.arrivals))
            directive = self._resolve(report, culprits={vm.index})
            if directive is not None:
                # Wake the waiters; their next before_syscall sees the
                # divergence and the kill flag.
                self._wake(("rdv", (logical, seq)))
            return

    def on_fault(self, vm, thread, exc):
        report = DivergenceReport(
            kind=DivergenceKind.VARIANT_FAULT,
            thread=thread.logical_id,
            syscall_seq=self._seq.get((vm.index, thread.logical_id), 0),
            detail=f"variant {vm.index} faulted: {exc}",
            observations={vm.index: str(exc)})
        if vm.index not in self.active:  # pragma: no cover - defensive
            return None
        return self._resolve(report, culprits={vm.index})
