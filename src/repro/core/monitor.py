"""The strict, security-oriented MVEE monitor.

Implements the synchronization model of Section 2: variants execute
monitored system calls in lockstep — no variant proceeds past a monitored
call until all variants have arrived at an equivalent call — with the
master performing I/O and the monitor replicating results to the slaves.
Cross-thread ordering of shared-resource calls uses the Lamport-clock
scheme of Section 4.1 (:mod:`repro.core.syscall_order`).

Structure: one `Monitor` instance per variant set, acting as the
simulator's :class:`~repro.sched.interceptor.SyscallInterceptor`.  State
is keyed by *(logical thread, per-thread monitored-call sequence number)*
— the simulation analogue of ReMon's one-monitor-thread-per-thread-set
design: each key identifies one logical call across all variants.

Divergence responses (all produce a :class:`DivergenceReport` and kill
every variant):

* argument/name mismatch at a lockstep rendezvous,
* result mismatch on an execute-all call (e.g. FD numbers),
* a thread exiting in one variant while its twin keeps calling,
* a variant faulting (crash under attack, protection violation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.divergence import (
    DivergenceKind,
    DivergenceReport,
    MonitorPolicy,
)
from repro.core.syscall_order import SyscallOrderer
from repro.kernel.syscalls import MVEE_GET_ROLE, SyscallSpec, spec_for
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.sched.interceptor import Kill, Proceed, Result, Wait
from repro.sched.interceptor import SyscallInterceptor


@dataclass
class _CallInfo:
    """Per-(variant, thread) state for the in-flight monitored call."""

    seq: int
    name: str
    overhead_charged: bool = False
    registered: bool = False
    observed: bool = False


@dataclass
class _Rendezvous:
    """State for one logical call across all variants."""

    expected: int
    #: variant -> (name, normalized args)
    arrivals: dict[int, tuple] = field(default_factory=dict)
    compared: bool = False
    #: Master result for replicated calls (set by after_syscall).
    result_ready: bool = False
    result: Any = None
    #: variant -> local result, for execute-all result comparison.
    local_results: dict[int, Any] = field(default_factory=dict)
    finished: int = 0


def normalize_args(spec: SyscallSpec, args: tuple) -> tuple:
    """Mask address-valued arguments; addresses legally differ (ASLR)."""
    return tuple("<addr>" if index in spec.address_args else arg
                 for index, arg in enumerate(args))


class Monitor(SyscallInterceptor):
    """Strict lockstep monitor for one variant set."""

    def __init__(self, n_variants: int,
                 policy: MonitorPolicy | None = None,
                 costs: CostModel | None = None):
        self.n_variants = n_variants
        self.policy = policy or MonitorPolicy()
        self.costs = costs or DEFAULT_COSTS
        self.orderer = SyscallOrderer(n_variants, wake=lambda key: None)
        self._wake = lambda key: None
        #: (variant, thread) -> _CallInfo for the in-flight call.
        self._current: dict[tuple[int, str], _CallInfo] = {}
        #: (variant, thread) -> count of completed monitored calls.
        self._seq: dict[tuple[int, str], int] = {}
        #: (thread, seq) -> rendezvous state.
        self._rendezvous: dict[tuple[str, int], _Rendezvous] = {}
        #: (variant, thread) -> monitored-call count at thread exit.
        self._exited: dict[tuple[int, str], int] = {}
        #: Per-thread blocking-result streams (futex/nanosleep):
        #: (thread, k) -> master result; counters per (variant, thread).
        self._stream: dict[tuple[str, int], Any] = {}
        self._stream_count: dict[tuple[int, str], int] = {}
        self.divergence: DivergenceReport | None = None
        #: Optional :class:`repro.obs.ObsHub` (set by the MVEE bootstrap).
        self.obs = None

    def bind_machine(self, machine) -> None:
        """Install the wake callback (MVEE bootstrap)."""
        self._wake = machine.wake_key
        self.orderer.bind_wake(machine.wake_key)

    # -- helpers ----------------------------------------------------------

    def _kill(self, report: DivergenceReport) -> Kill:
        self.divergence = report
        return Kill(report=report)

    def _call_info(self, vm, thread, name: str) -> _CallInfo:
        key = (vm.index, thread.logical_id)
        info = self._current.get(key)
        if info is None:
            info = _CallInfo(seq=self._seq.get(key, 0), name=name)
            self._current[key] = info
        return info

    def _finish_call(self, vm, thread) -> None:
        key = (vm.index, thread.logical_id)
        info = self._current.pop(key, None)
        if info is None:
            return
        self._seq[key] = info.seq + 1
        rdv_key = (thread.logical_id, info.seq)
        rdv = self._rendezvous.get(rdv_key)
        if rdv is not None:
            rdv.finished += 1
            if rdv.finished >= self.n_variants:
                del self._rendezvous[rdv_key]

    # -- interceptor: before --------------------------------------------------

    def before_syscall(self, vm, thread, name: str, args: tuple):
        if self.divergence is not None:
            # A divergence was flagged asynchronously (thread-exit check);
            # any thread reaching the monitor now is killed.
            return Kill(report=self.divergence)
        spec = spec_for(name)
        if name == MVEE_GET_ROLE:
            # The self-awareness pseudo-syscall: answered by the monitor,
            # never forwarded to the kernel (Section 4.5).
            return Result(vm.index, cost=self.costs.syscall_base)
        if spec.stream_replicated:
            return self._before_stream(vm, thread, name, args, spec)
        info = self._call_info(vm, thread, name)
        obs = self.obs
        if obs is not None and not info.observed:
            info.observed = True
            obs.monitored_call(vm.index, thread.logical_id, name,
                               spec.cls.value, info.seq)
        base_cost = 0.0
        if not info.overhead_charged:
            base_cost += self.costs.monitor_syscall_overhead
            info.overhead_charged = True
        lockstep = self.policy.is_locksteped(spec)
        rdv_key = (thread.logical_id, info.seq)
        if lockstep:
            rdv = self._rendezvous.get(rdv_key)
            if rdv is None:
                rdv = _Rendezvous(expected=self.n_variants)
                self._rendezvous[rdv_key] = rdv
            if not info.registered:
                rdv.arrivals[vm.index] = (name,
                                          normalize_args(spec, args))
                info.registered = True
                if obs is not None:
                    obs.rendezvous_arrive(rdv_key, vm.index,
                                          thread.logical_id)
                mismatch = self._check_exited_twins(thread, info.seq)
                if mismatch is not None:
                    return mismatch
            if len(rdv.arrivals) < self.n_variants:
                return Wait(("rdv", rdv_key),
                            cost=base_cost + self.costs.rendezvous_recheck)
            if not rdv.compared:
                observed = set(rdv.arrivals.values())
                rdv.compared = True
                self._wake(("rdv", rdv_key))
                if obs is not None:
                    obs.rendezvous_complete(rdv_key, vm.index,
                                            thread.logical_id,
                                            matched=len(observed) == 1)
                if len(observed) > 1:
                    return self._kill(DivergenceReport(
                        kind=DivergenceKind.SYSCALL_MISMATCH,
                        thread=thread.logical_id,
                        syscall_seq=info.seq,
                        detail="lockstep argument comparison failed",
                        observations=dict(rdv.arrivals)))
        if spec.ordered and self.policy.order_syscalls:
            outcome = self.orderer.check(vm.index, thread.logical_id,
                                         thread.global_id)
            if isinstance(outcome, Wait):
                if obs is not None:
                    obs.clock_stall(vm.index, thread.logical_id,
                                    outcome.key)
                outcome.cost += base_cost + self.costs.ordering_bookkeeping
                return outcome
            base_cost += self.costs.ordering_bookkeeping
        if spec.replicated and vm.index != 0:
            rdv = self._rendezvous.get(rdv_key)
            if rdv is None:
                rdv = _Rendezvous(expected=self.n_variants)
                self._rendezvous[rdv_key] = rdv
            if not rdv.result_ready:
                return Wait(("result", rdv_key),
                            cost=base_cost + self.costs.rendezvous_recheck)
            vm.kernel.apply_replicated(name, args, rdv.result)
            self._finish_call(vm, thread)
            return Result(rdv.result,
                          cost=base_cost + self.costs.replication_copy)
        return Proceed(cost=base_cost)

    def _before_stream(self, vm, thread, name, args, spec):
        """Blocking-call streams (futex / nanosleep): Section 4.1 footnote."""
        if vm.index == 0:
            return Proceed()
        key = (vm.index, thread.logical_id)
        index = self._stream_count.get(key, 0)
        stream_key = (thread.logical_id, index)
        if stream_key not in self._stream:
            if self.obs is not None:
                self.obs.stream_wait(vm.index, thread.logical_id, index)
            return Wait(("stream", stream_key))
        self._stream_count[key] = index + 1
        return Result(self._stream[stream_key],
                      cost=self.costs.replication_copy)

    def _check_exited_twins(self, thread, seq: int):
        """Did this thread's twin already exit in another variant?"""
        for variant in range(self.n_variants):
            final = self._exited.get((variant, thread.logical_id))
            if final is not None and final <= seq:
                return self._kill(DivergenceReport(
                    kind=DivergenceKind.THREAD_EXIT_MISMATCH,
                    thread=thread.logical_id,
                    syscall_seq=seq,
                    detail=(f"thread exited in variant {variant} after "
                            f"{final} monitored calls but its twin made "
                            f"call #{seq}")))
        return None

    # -- interceptor: after -------------------------------------------------------

    def after_syscall(self, vm, thread, name: str, args: tuple, result):
        if self.divergence is not None:
            return Kill(report=self.divergence)
        spec = spec_for(name)
        if spec.stream_replicated:
            if vm.index == 0:
                key = (vm.index, thread.logical_id)
                index = self._stream_count.get(key, 0)
                self._stream_count[key] = index + 1
                stream_key = (thread.logical_id, index)
                self._stream[stream_key] = result
                self._wake(("stream", stream_key))
                if self.obs is not None:
                    self.obs.stream_publish(vm.index, thread.logical_id,
                                            index)
            return Proceed(cost=self.costs.replication_copy)
        info = self._current.get((vm.index, thread.logical_id))
        if info is None:  # pragma: no cover - defensive
            return Proceed()
        rdv_key = (thread.logical_id, info.seq)
        cost = 0.0
        if spec.ordered and self.policy.order_syscalls:
            timestamp = self.orderer.finish(vm.index, thread.logical_id,
                                            thread.global_id)
            cost += self.costs.ordering_bookkeeping
            if self.obs is not None and vm.index == 0:
                self.obs.clock_tick(vm.index, thread.logical_id,
                                    timestamp)
        if spec.replicated and vm.index == 0:
            rdv = self._rendezvous.get(rdv_key)
            if rdv is None:
                rdv = _Rendezvous(expected=self.n_variants)
                self._rendezvous[rdv_key] = rdv
            rdv.result = result
            rdv.result_ready = True
            self._wake(("result", rdv_key))
            cost += self.costs.replication_copy
        elif (not spec.replicated and self.policy.compare_results
                and self.policy.is_locksteped(spec)
                and not spec.address_result):
            rdv = self._rendezvous.get(rdv_key)
            if rdv is not None:
                rdv.local_results[vm.index] = result
                if (len(rdv.local_results) >= self.n_variants
                        and len(set(map(repr,
                                        rdv.local_results.values()))) > 1):
                    self._finish_call(vm, thread)
                    return self._kill(DivergenceReport(
                        kind=DivergenceKind.RESULT_MISMATCH,
                        thread=thread.logical_id,
                        syscall_seq=info.seq,
                        detail=f"{name} returned differing results",
                        observations=dict(rdv.local_results)))
        self._finish_call(vm, thread)
        return Proceed(cost=cost)

    # -- interceptor: lifecycle ------------------------------------------------------

    def on_thread_exit(self, vm, thread) -> None:
        key = (vm.index, thread.logical_id)
        self._exited[key] = self._seq.get(key, 0)
        # If twins in other variants are parked at a rendezvous this thread
        # will never join, that is a divergence; find and flag it.
        for (logical, seq), rdv in list(self._rendezvous.items()):
            if logical != thread.logical_id:
                continue
            if seq >= self._exited[key] and rdv.arrivals:
                report = DivergenceReport(
                    kind=DivergenceKind.THREAD_EXIT_MISMATCH,
                    thread=logical,
                    syscall_seq=seq,
                    detail=(f"variant {vm.index} thread exited but twins "
                            f"are waiting at monitored call #{seq}"),
                    observations=dict(rdv.arrivals))
                self.divergence = report
                # Wake the waiters; their next before_syscall sees the
                # divergence via _check_exited_twins and the kill flag.
                self._wake(("rdv", (logical, seq)))

    def on_fault(self, vm, thread, exc):
        return self._kill(DivergenceReport(
            kind=DivergenceKind.VARIANT_FAULT,
            thread=thread.logical_id,
            syscall_seq=self._seq.get((vm.index, thread.logical_id), 0),
            detail=f"variant {vm.index} faulted: {exc}",
            observations={vm.index: str(exc)}))
