"""Top-level MVEE orchestration — the ReMon analogue.

:class:`MVEE` plays the role of ReMon's bootstrap process (Section 4): it
sets up N variants of one guest program (with the requested diversity
transforms), creates the monitor and the shared buffers, injects the
synchronization agents into each variant, hands control to the simulated
machine, and turns whatever happens into a verdict:

* ``"clean"`` — all variants ran to completion in lockstep;
* ``"degraded"`` — the run completed, but only after the monitor
  quarantined (and possibly restarted) at least one variant under a
  graceful-degradation policy (see ``docs/RESILIENCE.md``);
* ``"divergence"`` — the monitor killed the variants (report attached);
* ``"deadlock"`` — replay wedged (typically missing instrumentation or a
  guest bug; real MVEEs eventually time out in this situation).

Use :func:`run_mvee` for the one-call version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.agents.base import AgentSharedState
from repro.core.divergence import DivergenceReport, MonitorPolicy
from repro.core.injection import inject_agents, instrument_all
from repro.core.monitor import Monitor
from repro.core.relaxed import RelaxedMonitor
from repro.diversity.spec import DiversitySpec, apply_diversity, layouts_for
from repro.errors import DeadlockError, DivergenceError
from repro.faults import FaultInjector
from repro.guest.program import GuestProgram, build_context
from repro.kernel.fs import VirtualDisk
from repro.kernel.kernel import VirtualKernel
from repro.kernel.net import Network
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.sched.machine import Machine, MachineReport
from repro.sched.scheduler import SchedulingPolicy
from repro.sched.vm import VariantVM


@dataclass
class MVEEOutcome:
    """Everything a test or bench needs from one MVEE run."""

    verdict: str          # "clean" | "degraded" | "divergence" | "deadlock"
    report: MachineReport | None
    divergence: DivergenceReport | None
    disk: VirtualDisk
    vms: list[VariantVM]
    monitor: object
    agent_shared: AgentSharedState | None
    machine: Machine
    deadlock: DeadlockError | None = None
    #: The observability hub attached to the run (None when disabled).
    obs: object | None = None
    #: Forensics bundle captured when the run diverged under observation.
    obs_bundle: object | None = None
    #: Graceful-degradation actions taken (QuarantineEvent list, in order).
    quarantines: list = field(default_factory=list)
    #: Faults actually injected (InjectedFault list, in injection order).
    faults: list = field(default_factory=list)
    #: Race report from an attached detector (None when disabled).
    races: object | None = None
    #: Deadlock report from an attached detector (None when disabled).
    deadlocks: object | None = None

    @property
    def cycles(self) -> float:
        if self.report is not None:
            return self.report.cycles
        return self.machine.now

    @property
    def stdout(self) -> str:
        return self.disk.stream_text("stdout")

    def slowdown_vs(self, native_cycles: float) -> float:
        """Relative run time against an unprotected execution."""
        return self.cycles / native_cycles if native_cycles else float("inf")


class MVEE:
    """Bootstrap and run one multi-variant execution."""

    def __init__(self, program: GuestProgram, variants: int = 2,
                 agent: str | None = "wall_of_clocks",
                 policy: MonitorPolicy | None = None,
                 monitor_kind: str = "strict",
                 seed: int = 0,
                 cores: int = 16,
                 costs: CostModel | None = None,
                 sched_policy: SchedulingPolicy | None = None,
                 diversity: DiversitySpec | None = None,
                 instrument: Callable[[str], bool] | None = instrument_all,
                 record_trace: bool = False,
                 record_sync_trace: bool = False,
                 disk: VirtualDisk | None = None,
                 with_network: bool = False,
                 traffic=None,
                 max_cycles: float | None = None,
                 agent_options: dict | None = None,
                 obs=None,
                 faults=None,
                 races=None,
                 deadlocks=None,
                 replay=None,
                 checkpoints=None):
        if variants < 2:
            raise ValueError("an MVEE needs at least two variants")
        self.program = program
        self.variants = variants
        self.agent_name = agent
        self.costs = costs or DEFAULT_COSTS
        self.policy = policy or MonitorPolicy()
        self.monitor_kind = monitor_kind
        self.seed = seed
        self.cores = cores
        self.sched_policy = sched_policy
        self.diversity = diversity
        self.instrument = instrument
        self.record_trace = record_trace
        self.record_sync_trace = record_sync_trace
        self.disk = disk if disk is not None else VirtualDisk()
        self.network = Network() if with_network else None
        self.traffic = traffic
        self.max_cycles = max_cycles
        self.agent_options = agent_options or {}
        #: Optional :class:`repro.obs.ObsHub` observing this run.
        self.obs = obs
        #: Optional fault injection: a :class:`repro.faults.FaultPlan`
        #: (or a pre-built injector) driving deterministic faults.
        if faults is None:
            self.fault_injector = None
        elif isinstance(faults, FaultInjector):
            self.fault_injector = faults
        else:
            self.fault_injector = FaultInjector(faults)
        #: Optional race detection: ``True`` attaches a default
        #: :class:`repro.races.RaceDetector`, or pass a configured one.
        if races is None or races is False:
            self.races = None
        elif races is True:
            from repro.races import RaceDetector

            self.races = RaceDetector()
        else:
            self.races = races
        #: Optional deadlock detection: ``True`` attaches a default
        #: :class:`repro.races.DeadlockDetector`, or pass a configured one.
        if deadlocks is None or deadlocks is False:
            self.deadlocks = None
        elif deadlocks is True:
            from repro.races import DeadlockDetector

            self.deadlocks = DeadlockDetector()
        else:
            self.deadlocks = deadlocks
        #: Optional replay sink: a ``DecisionRecorder`` (capture the
        #: decision stream) or ``DecisionReplayer`` (re-drive the run
        #: from a log).  See :mod:`repro.replay`.
        self.replay = replay
        #: Optional checkpointing: a ``CheckpointPolicy``, a cadence in
        #: cycles, or ``True`` for the default cadence.
        self._checkpoint_request = checkpoints
        self.checkpointer = None
        #: Variants replaced by the restart policy (kept for forensics).
        self.retired_vms: list[VariantVM] = []
        self._build()

    # -- bootstrap --------------------------------------------------------

    def _build(self) -> None:
        if self.monitor_kind == "strict":
            self.monitor = Monitor(self.variants, policy=self.policy,
                                   costs=self.costs)
        elif self.monitor_kind == "relaxed":
            self.monitor = RelaxedMonitor(self.variants, costs=self.costs)
        else:
            raise ValueError(
                f"unknown monitor kind {self.monitor_kind!r}")
        self.machine = Machine(cores=self.cores, seed=self.seed,
                               costs=self.costs, policy=self.sched_policy,
                               interceptor=self.monitor)
        if self.max_cycles is not None:
            self.machine.max_cycles = self.max_cycles
        layouts = layouts_for(self.diversity, self.variants)
        self._layouts = layouts
        self.vms: list[VariantVM] = []
        for index in range(self.variants):
            role = "master" if index == 0 else "slave"
            kernel = VirtualKernel(
                self.disk,
                network=self.network if index == 0 else None,
                bases=layouts[index], role=role, variant_index=index)
            vm = VariantVM(index=index, kernel=kernel,
                           record_trace=self.record_trace,
                           record_sync_trace=self.record_sync_trace)
            self.vms.append(vm)
            self.machine.add_vm(vm)
        apply_diversity(self.diversity, self.vms)
        self.agent_shared = inject_agents(
            self.vms, self.agent_name, costs=self.costs,
            instrument=self.instrument, **self.agent_options)
        if self.agent_shared is not None:
            self.agent_shared.bind_machine(self.machine)
        self.monitor.bind_machine(self.machine)
        if (self.monitor_kind == "strict"
                and self.policy.degradation == "restart"):
            self.monitor.set_restart_callback(self._restart_variant)
        if self.obs is not None:
            self._attach_obs(self.obs)
        if self.fault_injector is not None:
            self._attach_faults()
        if self.races is not None:
            self._attach_races()
        if self.deadlocks is not None:
            self._attach_deadlocks()
        if self.replay is not None:
            self._attach_replay()
        if self._checkpoint_request:
            self._attach_checkpoints()
        if self.network is not None:
            self.machine.attach_network(self.network)
        for vm in self.vms:
            ctx = build_context(vm, self.program)
            self.machine.add_thread(vm, "main", self.program.main(ctx))
        if self.traffic is not None:
            self.traffic(self.machine, self.network)

    def _attach_obs(self, hub) -> None:
        """Point every instrumented component at the observability hub."""
        hub.bind_clock(lambda: self.machine.now)
        self.machine.obs = hub
        self.monitor.obs = hub
        if self.agent_shared is not None:
            self.agent_shared.obs = hub
        for vm in self.vms:
            vm.kernel.futexes.obs = hub

    def _attach_faults(self) -> None:
        """Point every fault-capable hook at the injector.

        Mirrors ``_attach_obs``: components test one attribute; a run
        without a plan never pays more than that test.
        """
        injector = self.fault_injector
        injector.bind_clock(lambda: self.machine.now)
        if self.obs is not None:
            injector.bind_obs(self.obs)
        self.machine.faults = injector
        orderer = getattr(self.monitor, "orderer", None)
        if orderer is not None:
            orderer.faults = injector
        if self.agent_shared is not None:
            self.agent_shared.bind_faults(injector)
        for vm in self.vms:
            vm.kernel.futexes.faults = injector
            vm.kernel.futexes.variant = vm.index

    def _attach_races(self) -> None:
        """Point the machine and every futex table at the detector.

        Same shape as ``_attach_obs``/``_attach_faults``: one attribute
        per hook site, zero cost when absent.
        """
        detector = self.races
        detector.bind_clock(lambda: self.machine.now)
        if self.obs is not None:
            detector.bind_obs(self.obs)
        self.machine.races = detector
        for vm in self.vms:
            vm.kernel.futexes.races = detector

    def _attach_deadlocks(self) -> None:
        """Point the machine and every futex table at the wait-for-graph
        detector, and let a completed cycle end the run (sticky flag)."""
        detector = self.deadlocks
        detector.bind_clock(lambda: self.machine.now)
        detector.bind_machine(self.machine)
        if self.obs is not None:
            detector.bind_obs(self.obs)
        self.machine.deadlocks = detector
        for vm in self.vms:
            vm.kernel.futexes.deadlocks = detector
            vm.kernel.futexes.variant = vm.index

    def _attach_replay(self) -> None:
        """Wire the decision-stream sink into every decision point.

        Same zero-cost shape as the other observers — plus the one
        intrusive move the sink demands: the scheduler RNG is wrapped
        (record) or substituted (replay) so every draw flows through the
        decision stream.
        """
        from repro.replay import RecordingRandom, ReplayRandom

        sink = self.replay
        self.machine.replay = sink
        for vm in self.vms:
            vm.kernel.futexes.replay = sink
            vm.kernel.futexes.variant = vm.index
        if sink.mode == "record":
            self.machine.rng = RecordingRandom(self.machine.rng, sink)
        elif sink.mode == "replay":
            self.machine.rng = ReplayRandom(sink, self.machine.rng)
            if self.obs is not None:
                sink.obs = self.obs

    def _attach_checkpoints(self) -> None:
        """Attach a periodic checkpointer (watchdog lane, zero cycles)."""
        from repro.replay import Checkpointer, CheckpointPolicy

        request = self._checkpoint_request
        if isinstance(request, Checkpointer):
            checkpointer = request
        else:
            if isinstance(request, CheckpointPolicy):
                policy = request
            elif request is True:
                policy = CheckpointPolicy()
            else:
                policy = CheckpointPolicy(every_cycles=float(request))
            recorder = (self.replay
                        if (self.replay is not None
                            and self.replay.mode == "record") else None)
            checkpointer = Checkpointer(self, policy, recorder=recorder,
                                        obs=self.obs)
        self.checkpointer = checkpointer
        if hasattr(self.monitor, "checkpoints"):
            self.monitor.checkpoints = checkpointer.store
        checkpointer.arm()

    # -- restart ------------------------------------------------------------

    def _restart_variant(self, index: int) -> None:
        """Rebuild a quarantined slave and resync it from master history.

        The replacement gets a fresh kernel and the *same* deterministic
        diversity transforms (layout, noise factors) its predecessor had,
        a fresh agent attached to the retained shared sync state, and a
        fresh ``main`` thread.  The monitor re-admits it in catch-up
        mode: recorded calls are served from history, then it rejoins the
        live lockstep.
        """
        old = next(vm for vm in self.vms if vm.index == index)
        self.retired_vms.append(old)
        kernel = VirtualKernel(self.disk, network=None,
                               bases=self._layouts[index], role="slave",
                               variant_index=index)
        vm = VariantVM(index=index, kernel=kernel,
                       record_trace=self.record_trace,
                       record_sync_trace=self.record_sync_trace)
        vm.instrument = self.instrument
        apply_diversity(self.diversity, [vm])
        if self.agent_shared is not None and old.agent is not None:
            self.agent_shared.reset_variant(index)
            vm.agent = type(old.agent)(self.agent_shared, index)
        for position, existing in enumerate(self.vms):
            if existing.index == index:
                self.vms[position] = vm
                break
        self.machine.replace_vm(vm)
        if self.obs is not None:
            vm.kernel.futexes.obs = self.obs
        if self.fault_injector is not None:
            vm.kernel.futexes.faults = self.fault_injector
            vm.kernel.futexes.variant = vm.index
        if self.races is not None:
            # The replacement starts from fresh memory: drop the old
            # incarnation's clocks so they can't fabricate races.
            self.races.reset_variant(index)
            vm.kernel.futexes.races = self.races
        if self.deadlocks is not None:
            # Fresh memory: stale lock ownership would fabricate
            # wait-for edges against the new incarnation.
            self.deadlocks.reset_variant(index)
            vm.kernel.futexes.deadlocks = self.deadlocks
            vm.kernel.futexes.variant = vm.index
        if self.replay is not None:
            vm.kernel.futexes.replay = self.replay
            vm.kernel.futexes.variant = vm.index
        self.monitor.readmit(index)
        ctx = build_context(vm, self.program)
        self.machine.add_thread(vm, "main", self.program.main(ctx))
        if self.obs is not None:
            self.obs.variant_restarted(index)

    # -- run ----------------------------------------------------------------

    def run(self) -> MVEEOutcome:
        """Execute the variant set and return the verdict."""
        outcome = self.advance()
        assert outcome is not None
        return outcome

    def advance(self, max_events: int | None = None) -> MVEEOutcome | None:
        """Drive the run incrementally: process up to ``max_events``
        machine events and return the :class:`MVEEOutcome` once the run
        finishes, or ``None`` while it is still in flight.

        A budgeted sequence of ``advance`` calls yields the *same*
        outcome (verdict, cycles, observability stream) as one
        :meth:`run` — the machine pauses between events without
        perturbing the timeline.  This is the execution primitive behind
        ``repro.serve`` step-driven sessions.
        """
        try:
            report = self.machine.advance(max_events)
        except DivergenceError as exc:
            return self._outcome("divergence", None, exc.report)
        except DeadlockError as exc:
            return self._outcome("deadlock", None, None, deadlock=exc)
        if report is None:
            return None
        audit = self.monitor.finalize()
        if audit is not None:
            return self._outcome("divergence", report, audit)
        if getattr(self.monitor, "quarantine_log", None):
            return self._outcome("degraded", report, None)
        return self._outcome("clean", report, None)

    def _outcome(self, verdict, report, divergence,
                 deadlock=None) -> MVEEOutcome:
        quarantines = list(getattr(self.monitor, "quarantine_log", ()) or ())
        faults = (list(self.fault_injector.injected)
                  if self.fault_injector is not None else [])
        bundle = None
        # Forensics focus: the fatal divergence, or — for a degraded run
        # — the report behind the last quarantine.
        focus = divergence
        if focus is None and quarantines:
            focus = quarantines[-1].report
        # A guest deadlock has no divergence report, but the forensics
        # bundle still carries the wait-for cycle (hub.deadlock_log).
        if self.obs is not None and (focus is not None
                                     or verdict == "deadlock"):
            from repro.obs.forensics import capture_bundle

            bundle = capture_bundle(
                self.obs, focus, monitor=self.monitor,
                config={"seed": self.seed, "agent": self.agent_name,
                        "variants": self.variants,
                        "monitor": self.monitor_kind,
                        "cores": self.cores})
        return MVEEOutcome(
            verdict=verdict, report=report, divergence=divergence,
            disk=self.disk, vms=self.vms, monitor=self.monitor,
            agent_shared=self.agent_shared, machine=self.machine,
            deadlock=deadlock, obs=self.obs, obs_bundle=bundle,
            quarantines=quarantines, faults=faults,
            races=(self.races.report if self.races is not None
                   else None),
            deadlocks=(self.deadlocks.report
                       if self.deadlocks is not None else None))


def run_mvee(program: GuestProgram, **kwargs) -> MVEEOutcome:
    """Bootstrap and run an MVEE in one call (see :class:`MVEE`)."""
    return MVEE(program, **kwargs).run()
