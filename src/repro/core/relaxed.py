"""VARAN-style loosely-synchronized monitor (baseline, Section 6).

Hosek and Cadar's VARAN eschews lockstepping: a leader variant runs ahead
and logs its per-thread syscall results in a shared ring buffer; followers
replay from the log.  This tolerates the scheduling differences of
*loosely-coupled* multithreaded programs (per-thread sequences still
match), "but fails when the variants use explicit inter-thread
synchronization through shared memory" — the follower's threads compute
different values, the per-thread syscall sequences stop matching the log,
and the divergence is (at best) detected or (at worst) silently replayed
wrong.

This implementation detects the mismatch (name or argument difference
against the leader's per-thread log) and reports it, so tests can show:

* loosely-coupled workloads run cleanly under the relaxed monitor with no
  sync agents at all, and the leader never waits for followers;
* communicating workloads diverge under the relaxed monitor unless the
  paper's sync agents are injected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.divergence import DivergenceKind, DivergenceReport
from repro.core.monitor import normalize_args
from repro.kernel.syscalls import MVEE_GET_ROLE, spec_for
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.sched.interceptor import (
    Kill,
    Proceed,
    Result,
    SyscallInterceptor,
    Wait,
)


@dataclass
class _LogEntry:
    name: str
    args: tuple
    result: Any = None
    result_ready: bool = False


class RelaxedMonitor(SyscallInterceptor):
    """Leader/follower monitor with per-thread syscall rings."""

    def __init__(self, n_variants: int, costs: CostModel | None = None):
        self.n_variants = n_variants
        self.costs = costs or DEFAULT_COSTS
        self._wake = lambda key: None
        #: (thread, k) -> leader's k-th monitored call on that thread.
        self._log: dict[tuple[str, int], _LogEntry] = {}
        #: (variant, thread) -> index of the next monitored call.
        self._cursor: dict[tuple[int, str], int] = {}
        self.divergence: DivergenceReport | None = None
        #: Maximum leader lead observed (entries), for the benches.
        self.max_lead = 0

    def bind_machine(self, machine) -> None:
        self._wake = machine.wake_key

    def _kill(self, report: DivergenceReport) -> Kill:
        self.divergence = report
        return Kill(report=report)

    # -- interceptor ---------------------------------------------------------

    def before_syscall(self, vm, thread, name: str, args: tuple):
        if self.divergence is not None:
            return Kill(report=self.divergence)
        if name == MVEE_GET_ROLE:
            return Result(vm.index, cost=self.costs.syscall_base)
        spec = spec_for(name)
        key = (vm.index, thread.logical_id)
        index = self._cursor.get(key, 0)
        log_key = (thread.logical_id, index)
        if vm.index == 0:
            # The leader never waits; VARAN's defining property.
            self._log[log_key] = _LogEntry(
                name=name, args=normalize_args(spec, args))
            lead = index - min(
                (self._cursor.get((v, thread.logical_id), 0)
                 for v in range(1, self.n_variants)), default=index)
            self.max_lead = max(self.max_lead, lead)
            return Proceed(cost=self.costs.replication_copy)
        entry = self._log.get(log_key)
        if entry is None:
            # Follower caught up with the leader: wait for the next entry.
            return Wait(("varan_log", log_key),
                        cost=self.costs.rendezvous_recheck)
        followed = (name, normalize_args(spec, args))
        recorded = (entry.name, entry.args)
        if followed != recorded:
            return self._kill(DivergenceReport(
                kind=DivergenceKind.SEQUENCE_MISMATCH,
                thread=thread.logical_id,
                syscall_seq=index,
                detail="follower deviated from leader's syscall sequence",
                observations={0: recorded, vm.index: followed}))
        if spec.replicated or spec.stream_replicated:
            if not entry.result_ready:
                return Wait(("varan_res", log_key),
                            cost=self.costs.rendezvous_recheck)
            self._cursor[key] = index + 1
            if spec.replicated:
                vm.kernel.apply_replicated(name, args, entry.result)
            return Result(entry.result, cost=self.costs.replication_copy)
        return Proceed(cost=self.costs.replication_copy)

    def after_syscall(self, vm, thread, name: str, args: tuple, result):
        if self.divergence is not None:
            return Kill(report=self.divergence)
        if name == MVEE_GET_ROLE:
            return Proceed()
        key = (vm.index, thread.logical_id)
        index = self._cursor.get(key, 0)
        self._cursor[key] = index + 1
        if vm.index == 0:
            log_key = (thread.logical_id, index)
            entry = self._log.get(log_key)
            if entry is not None:
                entry.result = result
                entry.result_ready = True
                self._wake(("varan_res", log_key))
            self._wake(("varan_log", log_key))
        return Proceed(cost=self.costs.replication_copy)

    def on_thread_exit(self, vm, thread) -> None:
        """A leader thread exiting while followers still have log to
        consume is fine (they drain); a *follower* exiting short of the
        leader's log is a sequence divergence."""
        if vm.index == 0:
            return
        key = (vm.index, thread.logical_id)
        consumed = self._cursor.get(key, 0)
        leader_count = self._cursor.get((0, thread.logical_id), 0)
        if consumed < leader_count:
            self.divergence = DivergenceReport(
                kind=DivergenceKind.SEQUENCE_MISMATCH,
                thread=thread.logical_id,
                syscall_seq=consumed,
                detail=(f"follower {vm.index} exited after {consumed} "
                        f"calls; the leader recorded {leader_count}"))

    def finalize(self):
        """End-of-run audit: every follower must have consumed exactly
        the leader's per-thread call counts."""
        if self.divergence is not None:
            return self.divergence
        leader_counts = {thread: count
                         for (variant, thread), count
                         in self._cursor.items() if variant == 0}
        for (variant, thread), count in self._cursor.items():
            if variant == 0:
                continue
            expected = leader_counts.get(thread, 0)
            if count != expected:
                return DivergenceReport(
                    kind=DivergenceKind.SEQUENCE_MISMATCH,
                    thread=thread, syscall_seq=count,
                    detail=(f"follower {variant} finished after {count} "
                            f"calls; leader recorded {expected}"))
        return None

    def on_fault(self, vm, thread, exc):
        return self._kill(DivergenceReport(
            kind=DivergenceKind.VARIANT_FAULT,
            thread=thread.logical_id,
            syscall_seq=self._cursor.get((vm.index, thread.logical_id), 0),
            detail=f"variant {vm.index} faulted: {exc}",
            observations={vm.index: str(exc)}))
