"""Cross-thread system-call ordering via Lamport clocks (Section 4.1).

Per-thread lockstep alone does not order *different* threads' syscalls
against each other, yet calls operating on shared kernel resources (FD
allocation, brk, mmap) have order-dependent results (Section 3.1).  ReMon
solves this with a logical clock per monitor:

* When the **master** executes an ordered call, its monitor enters a
  critical section, records the current syscall-ordering-clock time with
  the call, executes, and leaves the critical section (incrementing the
  clock).
* A **slave** about to execute its thread's k-th ordered call looks up the
  timestamp the master recorded for that same logical call and spins until
  its own variant's clock reaches it; executing the call then advances the
  slave clock.

Blocking calls are excluded by construction (they never carry the
``ordered`` spec flag) because the monitor could not guarantee the
critical section is ever exited (Section 4.1, "Limitations").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sched.interceptor import Proceed, Wait


@dataclass
class _OrderState:
    """Mutable ordering state for one variant set."""

    #: Master's ordered-call log: logical thread id per position; the
    #: position *is* the Lamport timestamp.
    master_log: list[str] = field(default_factory=list)
    #: thread -> positions of that thread's ordered calls in master_log.
    thread_positions: dict[str, list[int]] = field(default_factory=dict)
    #: Whether a master thread currently holds the ordering critical section.
    master_cs_holder: str | None = None
    #: Per-slave-variant Lamport clock (next expected timestamp).
    slave_clock: dict[int, int] = field(default_factory=dict)
    #: Per (variant, thread) count of *completed* ordered calls.
    ordered_count: dict[tuple[int, str], int] = field(default_factory=dict)


class SyscallOrderer:
    """Implements the ordering protocol for one variant set."""

    def __init__(self, n_variants: int, wake):
        self.n_variants = n_variants
        self._wake = wake
        self._state = _OrderState(
            slave_clock={v: 0 for v in range(1, n_variants)})
        #: Optional fault injector; a ``clock_skew`` fault silently
        #: advances one slave's replay clock (see repro.faults).
        self.faults = None

    def bind_wake(self, wake) -> None:
        self._wake = wake

    # -- entry check (called from monitor.before_syscall) -------------------

    def check(self, variant: int, thread_logical: str, thread_global: str):
        """May this variant's thread execute its next ordered call now?"""
        state = self._state
        if variant == 0:
            if (state.master_cs_holder is not None
                    and state.master_cs_holder != thread_global):
                return Wait(("order_cs",))
            state.master_cs_holder = thread_global
            return Proceed()
        count = state.ordered_count.get((variant, thread_logical), 0)
        positions = state.thread_positions.get(thread_logical)
        if positions is None or count >= len(positions):
            # The master has not recorded this logical call yet.
            return Wait(("order_log", variant))
        timestamp = positions[count]
        if state.slave_clock[variant] != timestamp:
            return Wait(("order_clock", variant))
        return Proceed()

    # -- completion (called from monitor.after_syscall) ------------------------

    def finish(self, variant: int, thread_logical: str,
               thread_global: str) -> int:
        """The ordered call returned; record/advance and wake waiters.

        Returns the Lamport timestamp the call was sequenced at (the
        master's log position, or the slave clock value just consumed).
        """
        state = self._state
        if variant == 0:
            timestamp = len(state.master_log)
            state.master_log.append(thread_logical)
            state.thread_positions.setdefault(thread_logical,
                                              []).append(timestamp)
            state.master_cs_holder = None
            self._wake(("order_cs",))
            for slave in range(1, self.n_variants):
                self._wake(("order_log", slave))
        else:
            if self.faults is not None:
                state.slave_clock[variant] += (
                    self.faults.check_clock_skew(variant))
            timestamp = state.slave_clock[variant]
            state.slave_clock[variant] += 1
            self._wake(("order_clock", variant))
        key = (variant, thread_logical)
        state.ordered_count[key] = state.ordered_count.get(key, 0) + 1
        return timestamp

    # -- restart support -----------------------------------------------------------

    def reset_variant(self, variant: int) -> None:
        """Rewind one slave's replay state so a restarted variant
        re-sequences the master's retained log from the beginning."""
        state = self._state
        if variant == 0:  # pragma: no cover - master is never restarted
            return
        state.slave_clock[variant] = 0
        for key in [k for k in state.ordered_count if k[0] == variant]:
            del state.ordered_count[key]

    # -- introspection -------------------------------------------------------------

    @property
    def master_log(self) -> list[str]:
        return list(self._state.master_log)
