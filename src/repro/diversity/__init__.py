"""Software-diversity transforms applied to variants.

MVEEs derive their security from running *diversified* variants: the same
attack cannot succeed against all of them simultaneously.  The transforms
here are the ones the paper's evaluation exercises:

* :func:`aslr_layout` — address space layout randomization: every region
  base differs per variant, so the same logical variable lives at a
  different address in each (Sections 3.3, 4.5.1, 5.1).
* :func:`dcl_layouts` — disjoint code layouts [Volckaert et al., TDSC'15]:
  code regions of different variants never overlap, so one variant's code
  address is unmapped (or non-executable) in every other — complete ROP
  immunity under an MVEE.
* noise — instruction-count perturbation (NOP insertion / substitution):
  same behaviour, different logical instruction counts.  This is what
  makes performance-counter-driven DMT schedulers diverge across variants
  (Section 2.1).
* allocator padding — a *behaviour-changing* diversification: variants
  allocate different sizes, issue different syscall sequences, and are
  explicitly unsupported (Section 4.5.1); tests demonstrate the failure.
"""

from repro.diversity.aslr import aslr_layout
from repro.diversity.dcl import code_regions_disjoint, dcl_layouts
from repro.diversity.spec import DiversitySpec, apply_diversity

__all__ = [
    "DiversitySpec",
    "apply_diversity",
    "aslr_layout",
    "dcl_layouts",
    "code_regions_disjoint",
]
