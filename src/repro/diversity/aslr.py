"""Address space layout randomization for variants.

Each variant receives randomized (page-aligned) bases for its code,
static-data, heap, mmap and stack regions.  The agents must keep working
without any master-to-slave address map: the *n-th sync op of thread T*
correspondence (Section 4.5.1) is all they may rely on.  Tests run every
agent under ASLR and assert clean replay.
"""

from __future__ import annotations

import random

from repro.kernel.vmem import PAGE_SIZE, LayoutBases


def _randomize(rng: random.Random, base: int, spread_pages: int) -> int:
    """Shift ``base`` by a random, page-aligned, non-negative offset."""
    return base + rng.randrange(0, spread_pages) * PAGE_SIZE


def aslr_layout(variant_index: int, seed: int = 0,
                spread_pages: int = 4096) -> LayoutBases:
    """Produce a randomized layout for one variant.

    Distinct ``variant_index`` values (with the same seed) give
    independently randomized layouts, like launching N diversified
    processes.  ``spread_pages`` bounds the entropy (16 MiB by default),
    keeping regions from colliding.
    """
    rng = random.Random((seed << 8) ^ (variant_index * 0x9E3779B9))
    default = LayoutBases()
    return LayoutBases(
        code_base=_randomize(rng, default.code_base, spread_pages),
        static_base=_randomize(rng, default.static_base + 0x0400_0000,
                               spread_pages),
        heap_base=_randomize(rng, default.heap_base + 0x0800_0000,
                             spread_pages),
        mmap_base=_randomize(rng, default.mmap_base, spread_pages),
        stack_base=_randomize(rng, default.stack_base, spread_pages),
    )
