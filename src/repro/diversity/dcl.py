"""Disjoint Code Layouts (DCL).

Volckaert et al.'s earlier work ("Cloning your Gadgets", TDSC 2015 — [44]
in the paper) places each variant's code in address ranges that overlap
*no other variant's* code.  Under an MVEE this gives complete immunity to
traditional ROP: a return address that points into executable code in one
variant necessarily points into unmapped (or non-executable) memory in the
others, so the attack faults in N-1 variants and the monitor detects the
divergence.  Section 5.5's nginx experiment runs with ASLR + DCL + PIE.
"""

from __future__ import annotations

from repro.kernel.vmem import PAGE_SIZE, LayoutBases

#: Size reserved per variant's code region (matches AddressSpace's 16
#: pages plus slack).
CODE_SLOT_PAGES = 64


def dcl_layouts(n_variants: int, base_layouts: list[LayoutBases] | None
                = None) -> list[LayoutBases]:
    """Assign pairwise-disjoint code regions to ``n_variants`` layouts.

    When ``base_layouts`` (e.g. ASLR-randomized ones) are given, only
    their code bases are replaced; other regions keep their diversity.
    """
    default = LayoutBases()
    layouts = []
    for index in range(n_variants):
        base = (base_layouts[index] if base_layouts is not None
                else LayoutBases())
        slot = default.code_base + index * CODE_SLOT_PAGES * PAGE_SIZE
        layouts.append(LayoutBases(
            code_base=slot,
            static_base=base.static_base,
            heap_base=base.heap_base,
            mmap_base=base.mmap_base,
            stack_base=base.stack_base,
        ))
    return layouts


def code_regions_disjoint(layouts: list[LayoutBases]) -> bool:
    """Verify the DCL property over a set of layouts."""
    spans = []
    for layout in layouts:
        start = layout.code_base
        end = start + CODE_SLOT_PAGES * PAGE_SIZE
        spans.append((start, end))
    spans.sort()
    for (_, prev_end), (next_start, _) in zip(spans, spans[1:], strict=False):
        if next_start < prev_end:
            return False
    return True
