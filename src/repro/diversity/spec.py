"""Diversity configuration applied by the MVEE bootstrap."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.diversity.aslr import aslr_layout
from repro.diversity.dcl import dcl_layouts
from repro.kernel.vmem import LayoutBases


@dataclass
class DiversitySpec:
    """Which transforms to apply when building variants.

    ``noise`` is the maximum relative instruction-count perturbation:
    each variant v > 0 gets ``compute_scale`` and ``instruction_factor``
    drawn from ``1 ± noise`` (variant 0 keeps 1.0 as the reference).
    ``allocator_padding`` gives variant v a per-malloc padding of
    ``v * allocator_padding`` bytes — a behaviour-changing diversification
    the agents are documented not to support (Section 4.5.1).
    """

    aslr: bool = False
    dcl: bool = False
    noise: float = 0.0
    allocator_padding: int = 0
    seed: int = 0


def layouts_for(spec: DiversitySpec | None,
                n_variants: int) -> list[LayoutBases]:
    """Compute the per-variant memory layouts."""
    if spec is None:
        return [LayoutBases() for _ in range(n_variants)]
    if spec.aslr:
        layouts = [aslr_layout(v, seed=spec.seed) for v in range(n_variants)]
    else:
        layouts = [LayoutBases() for _ in range(n_variants)]
    if spec.dcl:
        layouts = dcl_layouts(n_variants, layouts)
    return layouts


def apply_diversity(spec: DiversitySpec | None, vms) -> None:
    """Apply the non-layout transforms to already-built variants."""
    if spec is None:
        return
    for vm in vms:
        if vm.index == 0:
            continue
        if spec.noise:
            rng = random.Random((spec.seed << 16) ^ vm.index)
            vm.compute_scale = 1.0 + rng.uniform(-spec.noise, spec.noise)
            vm.instruction_factor = 1.0 + rng.uniform(-spec.noise,
                                                      spec.noise)
            # NOP insertion inflates code paths unevenly: give each
            # thread's code its own factor around the variant's mean.
            vm.instruction_noise = spec.noise
            vm.noise_seed = spec.seed
        if spec.allocator_padding:
            vm.malloc_padding = vm.index * spec.allocator_padding
