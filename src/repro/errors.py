"""Exception hierarchy for the MVEE reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.

The two most important subtypes mirror the paper's terminology:

* :class:`DivergenceError` — raised by the monitor when the variants'
  externally visible behaviour (system call sequences or arguments) no
  longer matches.  In the paper this is the MVEE's detection signal: it may
  indicate an attack, or — when synchronization agents are disabled — the
  "benign divergence" caused by differing thread schedules (Section 1).
* :class:`GuestFault` — raised when a *guest* program performs an illegal
  operation against its simulated kernel (bad file descriptor, unmapped
  memory, ...).  A fault in one variant but not another also manifests as
  divergence at the monitor level.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Invalid configuration (bad agent name, nonsensical parameters, ...)."""


class ReplayError(ReproError):
    """A decision log or checkpoint store is missing, malformed, or
    incompatible with the run it is asked to drive — the CLI turns
    these into one-line diagnostics instead of tracebacks."""


class ObsArtifactError(ReproError):
    """An observability artifact (bundle, trace, report) is missing,
    empty, or corrupt — the CLI turns these into one-line diagnostics
    instead of tracebacks."""


class ServeError(ReproError):
    """Base class for ``repro.serve`` request failures.

    Every subclass pins an HTTP-style ``status`` code so the daemon can
    put a machine-readable class on the wire and the client can re-raise
    the *same* typed error on its side (see ``docs/SERVING.md``).
    Admission-control rejections are ordinary, expected responses —
    typed, never hangs — which is why they get their own hierarchy
    instead of ad-hoc strings.
    """

    #: HTTP-style status code (subclasses override).
    status = 500

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        if status is not None:
            self.status = status

    @property
    def code(self) -> str:
        """Wire name of the error class (``"QuotaExceeded"`` ...)."""
        return type(self).__name__


class BadRequest(ServeError):
    """Malformed or unparseable request (HTTP 400 analogue)."""

    status = 400


class SessionNotFound(ServeError):
    """The request names a session the registry does not know (404)."""

    status = 404


class SessionConflict(ServeError):
    """The session exists but is in the wrong state for the op (409)."""

    status = 409


class QuotaExceeded(ServeError):
    """Admission control rejected the request (429): session, cycle, or
    queue quota hit.  Clients are expected to back off and retry."""

    status = 429


class DaemonUnavailable(ServeError):
    """The daemon is shutting down or unreachable (503)."""

    status = 503


#: Wire name -> ServeError class, for client-side re-raising.
SERVE_ERRORS = {cls.__name__: cls for cls in (
    ServeError, BadRequest, SessionNotFound, SessionConflict,
    QuotaExceeded, DaemonUnavailable)}


class GuestFault(ReproError):
    """A guest program performed an illegal operation.

    Attributes
    ----------
    variant:
        Index of the variant in which the fault occurred (``None`` for
        native, single-program executions).
    thread:
        Logical thread identifier of the faulting thread, if known.
    """

    def __init__(self, message: str, variant: int | None = None,
                 thread: str | None = None):
        super().__init__(message)
        self.variant = variant
        self.thread = thread


class SyscallError(GuestFault):
    """A system call failed in a way the guest did not handle (e.g. EBADF)."""

    def __init__(self, message: str, errno_name: str = "EINVAL", **kwargs):
        super().__init__(message, **kwargs)
        self.errno_name = errno_name


class MemoryFault(GuestFault):
    """Access to an unmapped or protection-violating address."""


class DivergenceError(ReproError):
    """The monitor observed divergent behaviour between variants.

    Carries a :class:`repro.core.divergence.DivergenceReport` describing
    where and how the variants disagreed.
    """

    def __init__(self, report):
        super().__init__(str(report))
        self.report = report


class DeadlockError(ReproError):
    """The simulation reached a state where no thread can make progress.

    Under an MVEE this usually indicates a replication bug (an agent
    enforcing an impossible order) or a guest program bug; the simulator
    reports the blocked threads and what each is waiting for.
    """

    def __init__(self, message: str, blocked: list[str] | None = None):
        super().__init__(message)
        self.blocked = blocked or []


class VariantKilled(ReproError):
    """Internal control-flow signal: the monitor shut this variant down.

    Raised inside guest threads when the MVEE terminates all variants after
    detecting divergence; guests are not expected to catch it.
    """
