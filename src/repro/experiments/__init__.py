"""Experiment harness: grids, caching, and paper-style tables/figures."""

from repro.experiments.runner import (
    ExperimentResult,
    run_benchmark_grid,
    run_one,
)
from repro.experiments.tables import (
    figure5_series,
    table1,
    table2,
    table3,
)

__all__ = [
    "ExperimentResult",
    "run_one",
    "run_benchmark_grid",
    "table1",
    "table2",
    "table3",
    "figure5_series",
]
