"""Persist and reload experiment results as JSON.

The full Figure 5 grid takes minutes at high scales; persisting results
lets the table generators, notebooks, and CI re-render without
re-simulating.  The format is a versioned JSON document with one record
per grid cell.
"""

from __future__ import annotations

import json
import pathlib

from repro.experiments.runner import ExperimentResult

FORMAT_VERSION = 1


def save_results(results: list[ExperimentResult],
                 path: str | pathlib.Path,
                 metadata: dict | None = None) -> None:
    """Write results (plus optional run metadata) to ``path``."""
    document = {
        "format_version": FORMAT_VERSION,
        "metadata": metadata or {},
        "cells": [
            {
                "benchmark": r.benchmark,
                "agent": r.agent,
                "variants": r.variants,
                "native_cycles": r.native_cycles,
                "mvee_cycles": r.mvee_cycles,
                "verdict": r.verdict,
                "sync_ops": r.sync_ops,
                "syscalls": r.syscalls,
                "stall_cycles": r.stall_cycles,
            }
            for r in results
        ],
    }
    pathlib.Path(path).write_text(json.dumps(document, indent=1))


def load_results(path: str | pathlib.Path) -> list[ExperimentResult]:
    """Read results written by :func:`save_results`."""
    document = json.loads(pathlib.Path(path).read_text())
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported results format version {version!r} "
            f"(expected {FORMAT_VERSION})")
    return [ExperimentResult(**cell) for cell in document["cells"]]


def load_metadata(path: str | pathlib.Path) -> dict:
    """Read only the metadata block of a results file."""
    document = json.loads(pathlib.Path(path).read_text())
    return document.get("metadata", {})
