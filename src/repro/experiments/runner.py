"""Grid runner for the performance evaluation (Table 1 / Figure 5).

Runs (benchmark × agent × variant count) configurations, normalizing each
MVEE run against the benchmark's native execution on the same machine
configuration — the paper's methodology ("relative to unprotected
execution").  Results are memoized per process so the figure and table
benches can share one sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mvee import run_mvee
from repro.errors import DeadlockError
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.perf.report import SlowdownReport
from repro.run import run_native
from repro.workloads.spec import ALL_SPECS, spec_by_name
from repro.workloads.synthetic import SyntheticWorkload

#: The paper's machine: dual-socket E5-2660, 16 physical cores (HT off).
PAPER_CORES = 16

#: Agents evaluated in Figure 5 / Table 1.
AGENTS = ("total_order", "partial_order", "wall_of_clocks")

#: Variant counts evaluated.
VARIANT_COUNTS = (2, 3, 4)


@dataclass
class ExperimentResult:
    """One grid cell."""

    benchmark: str
    agent: str
    variants: int
    native_cycles: float
    mvee_cycles: float
    verdict: str
    sync_ops: int
    syscalls: int
    stall_cycles: float

    def to_slowdown(self) -> SlowdownReport:
        return SlowdownReport(benchmark=self.benchmark, agent=self.agent,
                              variants=self.variants,
                              native_cycles=self.native_cycles,
                              mvee_cycles=self.mvee_cycles)

    @property
    def slowdown(self) -> float:
        return self.mvee_cycles / self.native_cycles


_native_cache: dict[tuple, float] = {}
_cell_cache: dict[tuple, ExperimentResult] = {}


def native_cycles(benchmark: str, scale: float = 1.0, seed: int = 1,
                  cores: int = PAPER_CORES,
                  costs: CostModel | None = None) -> float:
    """Native (unprotected) runtime of a benchmark slice, memoized."""
    key = (benchmark, scale, seed, cores, id(costs) if costs else None)
    cached = _native_cache.get(key)
    if cached is None:
        program = SyntheticWorkload(spec_by_name(benchmark), scale=scale)
        result = run_native(program, seed=seed, cores=cores, costs=costs)
        cached = result.report.cycles
        _native_cache[key] = cached
    return cached


def run_one(benchmark: str, agent: str, variants: int,
            scale: float = 1.0, seed: int = 1,
            cores: int = PAPER_CORES,
            costs: CostModel | None = None,
            agent_options: dict | None = None,
            obs=None) -> ExperimentResult:
    """Run one grid cell (memoized) and return its result.

    Passing an :class:`repro.obs.ObsHub` as ``obs`` attaches the
    observability layer to the MVEE run; observed cells bypass the memo
    cache (the hub's events belong to one concrete execution).
    """
    costs = costs or DEFAULT_COSTS
    options_key = tuple(sorted((agent_options or {}).items()))
    key = (benchmark, agent, variants, scale, seed, cores, options_key,
           id(costs) if costs is not DEFAULT_COSTS else None)
    if obs is None:
        cached = _cell_cache.get(key)
        if cached is not None:
            return cached
    native = native_cycles(benchmark, scale, seed, cores,
                           costs if costs is not DEFAULT_COSTS else None)
    program = SyntheticWorkload(spec_by_name(benchmark), scale=scale)
    outcome = run_mvee(program, variants=variants, agent=agent,
                       seed=seed, cores=cores, costs=costs,
                       agent_options=agent_options or {},
                       max_cycles=native * 400, obs=obs)
    report = outcome.report
    result = ExperimentResult(
        benchmark=benchmark, agent=agent, variants=variants,
        native_cycles=native,
        mvee_cycles=outcome.cycles,
        verdict=outcome.verdict,
        sync_ops=(report.total_sync_ops if report else 0),
        syscalls=(report.total_syscalls if report else 0),
        stall_cycles=sum(
            vm.total_stall_cycles for vm in outcome.vms))
    if obs is None:
        _cell_cache[key] = result
    return result


def run_benchmark_grid(benchmarks=None, agents=AGENTS,
                       variant_counts=VARIANT_COUNTS,
                       scale: float = 1.0, seed: int = 1,
                       costs: CostModel | None = None
                       ) -> list[ExperimentResult]:
    """Run the full (or a partial) Figure 5 grid."""
    if benchmarks is None:
        benchmarks = list(ALL_SPECS)
    results = []
    for benchmark in benchmarks:
        for agent in agents:
            for variants in variant_counts:
                results.append(run_one(benchmark, agent, variants,
                                       scale=scale, seed=seed,
                                       costs=costs))
    return results
