"""Grid runner for the performance evaluation (Table 1 / Figure 5).

Runs (benchmark × agent × variant count) configurations, normalizing each
MVEE run against the benchmark's native execution on the same machine
configuration — the paper's methodology ("relative to unprotected
execution").  Results are memoized per process so the figure and table
benches can share one sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.divergence import MonitorPolicy
from repro.core.mvee import run_mvee
from repro.errors import DeadlockError
from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.perf.report import SlowdownReport
from repro.run import run_native
from repro.workloads.spec import ALL_SPECS, spec_by_name
from repro.workloads.synthetic import SyntheticWorkload

#: The paper's machine: dual-socket E5-2660, 16 physical cores (HT off).
PAPER_CORES = 16

#: Agents evaluated in Figure 5 / Table 1.
AGENTS = ("total_order", "partial_order", "wall_of_clocks")

#: Variant counts evaluated.
VARIANT_COUNTS = (2, 3, 4)


@dataclass
class ExperimentResult:
    """One grid cell."""

    benchmark: str
    agent: str
    variants: int
    native_cycles: float
    mvee_cycles: float
    verdict: str
    sync_ops: int
    syscalls: int
    stall_cycles: float

    def to_slowdown(self) -> SlowdownReport:
        return SlowdownReport(benchmark=self.benchmark, agent=self.agent,
                              variants=self.variants,
                              native_cycles=self.native_cycles,
                              mvee_cycles=self.mvee_cycles)

    @property
    def slowdown(self) -> float:
        return self.mvee_cycles / self.native_cycles


_native_cache: dict[tuple, float] = {}
_cell_cache: dict[tuple, ExperimentResult] = {}


def native_cycles(benchmark: str, scale: float = 1.0, seed: int = 1,
                  cores: int = PAPER_CORES,
                  costs: CostModel | None = None) -> float:
    """Native (unprotected) runtime of a benchmark slice, memoized."""
    key = (benchmark, scale, seed, cores, id(costs) if costs else None)
    cached = _native_cache.get(key)
    if cached is None:
        program = SyntheticWorkload(spec_by_name(benchmark), scale=scale)
        result = run_native(program, seed=seed, cores=cores, costs=costs)
        cached = result.report.cycles
        _native_cache[key] = cached
    return cached


def run_one(benchmark: str, agent: str, variants: int,
            scale: float = 1.0, seed: int = 1,
            cores: int = PAPER_CORES,
            costs: CostModel | None = None,
            agent_options: dict | None = None,
            obs=None) -> ExperimentResult:
    """Run one grid cell (memoized) and return its result.

    Passing an :class:`repro.obs.ObsHub` as ``obs`` attaches the
    observability layer to the MVEE run; observed cells bypass the memo
    cache (the hub's events belong to one concrete execution).
    """
    costs = costs or DEFAULT_COSTS
    options_key = tuple(sorted((agent_options or {}).items()))
    key = (benchmark, agent, variants, scale, seed, cores, options_key,
           id(costs) if costs is not DEFAULT_COSTS else None)
    if obs is None:
        cached = _cell_cache.get(key)
        if cached is not None:
            return cached
    native = native_cycles(benchmark, scale, seed, cores,
                           costs if costs is not DEFAULT_COSTS else None)
    program = SyntheticWorkload(spec_by_name(benchmark), scale=scale)
    outcome = run_mvee(program, variants=variants, agent=agent,
                       seed=seed, cores=cores, costs=costs,
                       agent_options=agent_options or {},
                       max_cycles=native * 400, obs=obs)
    report = outcome.report
    result = ExperimentResult(
        benchmark=benchmark, agent=agent, variants=variants,
        native_cycles=native,
        mvee_cycles=outcome.cycles,
        verdict=outcome.verdict,
        sync_ops=(report.total_sync_ops if report else 0),
        syscalls=(report.total_syscalls if report else 0),
        stall_cycles=sum(
            vm.total_stall_cycles for vm in outcome.vms))
    if obs is None:
        _cell_cache[key] = result
    return result


#: Degradation policies compared by the fault matrix.
FAULT_POLICIES = ("kill-all", "quarantine", "restart")


@dataclass
class FaultMatrixCell:
    """One (policy, fault kind) cell of the survival matrix."""

    benchmark: str
    policy: str
    kind: str
    verdict: str
    injected: int
    quarantined: list[int] = field(default_factory=list)
    restarted: list[int] = field(default_factory=list)
    cycles: float = 0.0

    @property
    def survived(self) -> bool:
        """Did the variant set complete the workload despite the fault?"""
        return self.verdict in ("clean", "degraded")


def _fault_spec_for(kind: str) -> FaultSpec:
    """A canonical single-fault plan per kind, tuned so every kind fires
    within the small benchmark slices the matrix runs.

    Slave-side faults target variant 1; ``corrupt_sync`` and
    ``drop_wake`` are master-side by construction (only the master
    produces sync records and executes futex wakes for real).
    """
    if kind == "drop_wake":
        return FaultSpec(kind=kind, variant=0, at=2)
    if kind == "corrupt_sync":
        return FaultSpec(kind=kind, variant=0, at=20, param=1 << 20)
    if kind == "clock_skew":
        return FaultSpec(kind=kind, variant=1, at=2, param=1 << 20)
    return FaultSpec(kind=kind, variant=1, at=3)


def run_fault_matrix(benchmark: str = "dedup", kinds=None, policies=None,
                     variants: int = 3, agent: str = "wall_of_clocks",
                     scale: float = 0.1, seed: int = 1,
                     cores: int = PAPER_CORES,
                     costs: CostModel | None = None,
                     watchdog_factor: float = 8.0
                     ) -> list[FaultMatrixCell]:
    """Inject each fault kind under each degradation policy.

    Every run gets a watchdog of ``watchdog_factor`` × the native
    runtime, so stall-type faults are diagnosed (``WATCHDOG_TIMEOUT``)
    rather than burning the whole cycle budget.
    """
    kinds = tuple(kinds) if kinds else FAULT_KINDS
    policies = tuple(policies) if policies else FAULT_POLICIES
    native = native_cycles(benchmark, scale, seed, cores,
                           costs if costs is not DEFAULT_COSTS else None)
    cells = []
    for policy_name in policies:
        for kind in kinds:
            plan = FaultPlan((_fault_spec_for(kind),))
            policy = MonitorPolicy(
                degradation=policy_name,
                watchdog_cycles=native * watchdog_factor)
            program = SyntheticWorkload(spec_by_name(benchmark),
                                        scale=scale)
            outcome = run_mvee(program, variants=variants, agent=agent,
                               seed=seed, cores=cores, costs=costs,
                               policy=policy, faults=plan,
                               max_cycles=native * 400)
            cells.append(FaultMatrixCell(
                benchmark=benchmark, policy=policy_name, kind=kind,
                verdict=outcome.verdict,
                injected=len(outcome.faults),
                quarantined=[e.variant for e in outcome.quarantines],
                restarted=[e.variant for e in outcome.quarantines
                           if e.restarted],
                cycles=outcome.cycles))
    return cells


def fault_matrix_table(cells) -> str:
    """Render the survival matrix (policy rows × fault-kind columns)."""
    kinds = list(dict.fromkeys(cell.kind for cell in cells))
    policies = list(dict.fromkeys(cell.policy for cell in cells))
    by_key = {(cell.policy, cell.kind): cell for cell in cells}

    def mark_of(cell) -> str:
        mark = cell.verdict
        if cell.restarted:
            mark += "+restart"
        return mark

    width = max(12, *(len(kind) + 2 for kind in kinds),
                *(len(mark_of(cell)) + 2 for cell in cells))
    lines = ["survival matrix: degradation policy x injected fault",
             " " * 12 + "".join(f"{kind:>{width}s}" for kind in kinds)]
    for policy in policies:
        row = [f"{policy:12s}"]
        for kind in kinds:
            cell = by_key.get((policy, kind))
            if cell is None:
                row.append(f"{'-':>{width}s}")
                continue
            row.append(f"{mark_of(cell):>{width}s}")
        lines.append("".join(row))
    survived = sum(1 for cell in cells if cell.survived)
    lines.append(f"{survived}/{len(cells)} cells completed the workload "
                 "(clean or degraded)")
    return "\n".join(lines)


def run_benchmark_grid(benchmarks=None, agents=AGENTS,
                       variant_counts=VARIANT_COUNTS,
                       scale: float = 1.0, seed: int = 1,
                       costs: CostModel | None = None
                       ) -> list[ExperimentResult]:
    """Run the full (or a partial) Figure 5 grid."""
    if benchmarks is None:
        benchmarks = list(ALL_SPECS)
    results = []
    for benchmark in benchmarks:
        for agent in agents:
            for variants in variant_counts:
                results.append(run_one(benchmark, agent, variants,
                                       scale=scale, seed=seed,
                                       costs=costs))
    return results
