"""Grid runner for the performance evaluation (Table 1 / Figure 5).

Runs (benchmark × agent × variant count) configurations, normalizing each
MVEE run against the benchmark's native execution on the same machine
configuration — the paper's methodology ("relative to unprotected
execution").  Results are memoized per process so the figure and table
benches can share one sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.divergence import MonitorPolicy
from repro.core.mvee import run_mvee
from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec
from repro.par.engine import CellTask, raise_failures, run_cells
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.perf.report import SlowdownReport
from repro.run import run_native
from repro.workloads.spec import ALL_SPECS, spec_by_name
from repro.workloads.synthetic import SyntheticWorkload

#: The paper's machine: dual-socket E5-2660, 16 physical cores (HT off).
PAPER_CORES = 16

#: Agents evaluated in Figure 5 / Table 1.
AGENTS = ("total_order", "partial_order", "wall_of_clocks")

#: Variant counts evaluated.
VARIANT_COUNTS = (2, 3, 4)


@dataclass
class ExperimentResult:
    """One grid cell."""

    benchmark: str
    agent: str
    variants: int
    native_cycles: float
    mvee_cycles: float
    verdict: str
    sync_ops: int
    syscalls: int
    stall_cycles: float

    def to_slowdown(self) -> SlowdownReport:
        return SlowdownReport(benchmark=self.benchmark, agent=self.agent,
                              variants=self.variants,
                              native_cycles=self.native_cycles,
                              mvee_cycles=self.mvee_cycles)

    @property
    def slowdown(self) -> float:
        return self.mvee_cycles / self.native_cycles


_native_cache: dict[tuple, float] = {}
_cell_cache: dict[tuple, ExperimentResult] = {}


def reset_caches() -> None:
    """Drop the per-process memo caches (native runtimes, grid cells).

    The ``repro bench`` harness calls this between its timed phases so
    neither phase rides the other's warm cache; tests use it to force
    re-simulation."""
    _native_cache.clear()
    _cell_cache.clear()


def native_cycles(benchmark: str, scale: float = 1.0, seed: int = 1,
                  cores: int = PAPER_CORES,
                  costs: CostModel | None = None) -> float:
    """Native (unprotected) runtime of a benchmark slice, memoized."""
    key = (benchmark, scale, seed, cores, id(costs) if costs else None)
    cached = _native_cache.get(key)
    if cached is None:
        program = SyntheticWorkload(spec_by_name(benchmark), scale=scale)
        result = run_native(program, seed=seed, cores=cores, costs=costs)
        cached = result.report.cycles
        _native_cache[key] = cached
    return cached


def run_one(benchmark: str, agent: str, variants: int,
            scale: float = 1.0, seed: int = 1,
            cores: int = PAPER_CORES,
            costs: CostModel | None = None,
            agent_options: dict | None = None,
            obs=None) -> ExperimentResult:
    """Run one grid cell (memoized) and return its result.

    Passing an :class:`repro.obs.ObsHub` as ``obs`` attaches the
    observability layer to the MVEE run; observed cells bypass the memo
    cache (the hub's events belong to one concrete execution).
    """
    costs = costs or DEFAULT_COSTS
    options_key = tuple(sorted((agent_options or {}).items()))
    key = (benchmark, agent, variants, scale, seed, cores, options_key,
           id(costs) if costs is not DEFAULT_COSTS else None)
    if obs is None:
        cached = _cell_cache.get(key)
        if cached is not None:
            return cached
    native = native_cycles(benchmark, scale, seed, cores,
                           costs if costs is not DEFAULT_COSTS else None)
    program = SyntheticWorkload(spec_by_name(benchmark), scale=scale)
    outcome = run_mvee(program, variants=variants, agent=agent,
                       seed=seed, cores=cores, costs=costs,
                       agent_options=agent_options or {},
                       max_cycles=native * 400, obs=obs)
    report = outcome.report
    result = ExperimentResult(
        benchmark=benchmark, agent=agent, variants=variants,
        native_cycles=native,
        mvee_cycles=outcome.cycles,
        verdict=outcome.verdict,
        sync_ops=(report.total_sync_ops if report else 0),
        syscalls=(report.total_syscalls if report else 0),
        stall_cycles=sum(
            vm.total_stall_cycles for vm in outcome.vms))
    if obs is None:
        _cell_cache[key] = result
    return result


#: Degradation policies compared by the fault matrix.
FAULT_POLICIES = ("kill-all", "quarantine", "restart")


@dataclass
class FaultMatrixCell:
    """One (policy, fault kind) cell of the survival matrix."""

    benchmark: str
    policy: str
    kind: str
    verdict: str
    injected: int
    quarantined: list[int] = field(default_factory=list)
    restarted: list[int] = field(default_factory=list)
    cycles: float = 0.0
    #: How restarted variants resynced ("history" | "checkpoint") and
    #: how many history calls each path re-executed at full cost
    #: (``resynced``) vs skipped past via the checkpoint frontier
    #: (``fast_forwarded``) — summed across restarted variants.
    resync_mode: str = "history"
    fast_forwarded: int = 0
    resynced: int = 0

    @property
    def survived(self) -> bool:
        """Did the variant set complete the workload despite the fault?"""
        return self.verdict in ("clean", "degraded")


def _fault_spec_for(kind: str) -> FaultSpec:
    """A canonical single-fault plan per kind, tuned so every kind fires
    within the small benchmark slices the matrix runs.

    Slave-side faults target variant 1; ``corrupt_sync`` and
    ``drop_wake`` are master-side by construction (only the master
    produces sync records and executes futex wakes for real).
    """
    if kind == "drop_wake":
        return FaultSpec(kind=kind, variant=0, at=2)
    if kind == "corrupt_sync":
        return FaultSpec(kind=kind, variant=0, at=20, param=1 << 20)
    if kind == "clock_skew":
        return FaultSpec(kind=kind, variant=1, at=2, param=1 << 20)
    return FaultSpec(kind=kind, variant=1, at=3)


def _fault_matrix_cell(benchmark: str, policy_name: str, kind: str,
                       variants: int, agent: str, scale: float,
                       seed: int, cores: int, costs,
                       watchdog_factor: float, native: float,
                       resync_mode: str = "history",
                       checkpoint_every: float | None = None
                       ) -> FaultMatrixCell:
    """One (policy, fault kind) cell; module-level so the parallel
    engine can pickle it by reference into worker processes."""
    plan = FaultPlan((_fault_spec_for(kind),))
    policy = MonitorPolicy(
        degradation=policy_name,
        watchdog_cycles=native * watchdog_factor,
        resync_mode=resync_mode)
    checkpoints = None
    if resync_mode == "checkpoint":
        checkpoints = (checkpoint_every if checkpoint_every is not None
                       else native / 64.0)
    program = SyntheticWorkload(spec_by_name(benchmark), scale=scale)
    outcome = run_mvee(program, variants=variants, agent=agent,
                       seed=seed, cores=cores, costs=costs,
                       policy=policy, faults=plan,
                       checkpoints=checkpoints,
                       max_cycles=native * 400)
    stats = getattr(outcome.monitor, "resync_stats", {}) or {}
    return FaultMatrixCell(
        benchmark=benchmark, policy=policy_name, kind=kind,
        verdict=outcome.verdict,
        injected=len(outcome.faults),
        quarantined=[e.variant for e in outcome.quarantines],
        restarted=[e.variant for e in outcome.quarantines
                   if e.restarted],
        cycles=outcome.cycles,
        resync_mode=resync_mode,
        fast_forwarded=sum(s.get("fast_forwarded", 0)
                           for s in stats.values()),
        resynced=sum(s.get("resynced", 0) for s in stats.values()))


def run_fault_matrix(benchmark: str = "dedup", kinds=None, policies=None,
                     variants: int = 3, agent: str = "wall_of_clocks",
                     scale: float = 0.1, seed: int = 1,
                     cores: int = PAPER_CORES,
                     costs: CostModel | None = None,
                     watchdog_factor: float = 8.0,
                     jobs: int = 1,
                     env: str | None = None,
                     resync_mode: str = "history",
                     checkpoint_every: float | None = None
                     ) -> list[FaultMatrixCell]:
    """Inject each fault kind under each degradation policy.

    Every run gets a watchdog of ``watchdog_factor`` × the native
    runtime, so stall-type faults are diagnosed (``WATCHDOG_TIMEOUT``)
    rather than burning the whole cycle budget.

    ``resync_mode`` picks how restart-policy cells recover condemned
    variants: ``"history"`` replays the full retained master history at
    cost, ``"checkpoint"`` fast-forwards to the latest machine
    checkpoint frontier (taken every ``checkpoint_every`` cycles,
    default native/64) and only re-executes the suffix — same verdicts,
    fewer full-cost resync steps (``docs/REPLAY.md``).

    ``jobs`` shards the (policy x kind) cells across workers via
    :mod:`repro.par` and ``env`` picks the execution environment
    (``inline``/``thread``/``process``/``process-static``); results are
    aggregated in matrix order, so every (jobs, env) combination is
    structurally identical to ``jobs=1``.
    """
    if resync_mode not in ("history", "checkpoint"):
        raise ValueError(f"unknown resync mode {resync_mode!r}")
    kinds = tuple(kinds) if kinds else FAULT_KINDS
    policies = tuple(policies) if policies else FAULT_POLICIES
    native = native_cycles(benchmark, scale, seed, cores,
                           costs if costs is not DEFAULT_COSTS else None)
    tasks = []
    for policy_name in policies:
        for kind in kinds:
            tasks.append(CellTask(
                sweep_id="fault-matrix", index=len(tasks),
                fn=_fault_matrix_cell,
                kwargs=dict(benchmark=benchmark,
                            policy_name=policy_name, kind=kind,
                            variants=variants, agent=agent,
                            scale=scale, seed=seed, cores=cores,
                            costs=costs,
                            watchdog_factor=watchdog_factor,
                            native=native,
                            resync_mode=resync_mode,
                            checkpoint_every=checkpoint_every)))
    results = raise_failures(run_cells(tasks, jobs=jobs, env=env))
    return [result.value for result in results]


def fault_matrix_table(cells) -> str:
    """Render the survival matrix (policy rows × fault-kind columns)."""
    kinds = list(dict.fromkeys(cell.kind for cell in cells))
    policies = list(dict.fromkeys(cell.policy for cell in cells))
    by_key = {(cell.policy, cell.kind): cell for cell in cells}

    def mark_of(cell) -> str:
        mark = cell.verdict
        if cell.restarted:
            mark += "+restart"
        return mark

    width = max(12, *(len(kind) + 2 for kind in kinds),
                *(len(mark_of(cell)) + 2 for cell in cells))
    lines = ["survival matrix: degradation policy x injected fault",
             " " * 12 + "".join(f"{kind:>{width}s}" for kind in kinds)]
    for policy in policies:
        row = [f"{policy:12s}"]
        for kind in kinds:
            cell = by_key.get((policy, kind))
            if cell is None:
                row.append(f"{'-':>{width}s}")
                continue
            row.append(f"{mark_of(cell):>{width}s}")
        lines.append("".join(row))
    survived = sum(1 for cell in cells if cell.survived)
    lines.append(f"{survived}/{len(cells)} cells completed the workload "
                 "(clean or degraded)")
    restart_cells = [cell for cell in cells if cell.restarted]
    if restart_cells:
        mode = restart_cells[0].resync_mode
        ff = sum(cell.fast_forwarded for cell in restart_cells)
        resynced = sum(cell.resynced for cell in restart_cells)
        lines.append(f"resync      : mode={mode}, "
                     f"{resynced} step(s) re-executed at full cost, "
                     f"{ff} fast-forwarded past the checkpoint frontier")
    return "\n".join(lines)


#: Cost model for the race sweep: low monitor overhead keeps the nginx
#: runs quick while preserving every ordering decision.
RACE_SWEEP_COSTS = CostModel(monitor_syscall_overhead=2_000.0,
                             preempt_quantum=20_000.0)


@dataclass
class RaceSweepRow:
    """One workload's detector run in the race-detection experiment."""

    workload: str
    verdict: str
    sync_ops: int
    plain_accesses: int
    races: int
    occurrences: int
    gaps: int
    #: Wall-clock overhead of running with the detector attached, in
    #: percent of the baseline run (simulated cycles are identical by
    #: construction, so host time is the only real cost).
    overhead_pct: float
    #: Simulated timelines with/without the detector matched exactly.
    cycles_identical: bool


def nginx_identified_sites(after_refactor: bool) -> frozenset[str]:
    """The §5.5 static pipeline output, before or after the nginx fix.

    *Before*: only the library corpus was analyzed — the nginx binary's
    custom primitives are absent from the identified set.  *After*: the
    nginx module went through the two-stage analysis too, adding the
    ``nginx.*`` sites.
    """
    from repro.analysis.corpus import nginx_module, paper_corpus
    from repro.analysis.identify import identify_sync_ops
    from repro.analysis.instrument import instrumented_sites

    reports = [identify_sync_ops(module) for module in paper_corpus()]
    if after_refactor:
        reports.append(identify_sync_ops(nginx_module()))
    return instrumented_sites(*reports)


def run_nginx_condition(instrumented: bool, seed: int = 1,
                        costs: CostModel | None = None,
                        detector=None, variants: int = 2, obs=None,
                        agent: str = "wall_of_clocks"):
    """Run the §5.5 server under one instrumentation condition.

    ``instrumented=False`` leaves the custom ``nginx.*`` primitives bare
    (the paper's divergence demo); ``True`` wraps every site.
    """
    from repro.core.mvee import MVEE
    from repro.workloads.nginx import (
        NginxConfig,
        NginxServer,
        TrafficStats,
        make_traffic,
        pthread_only_sites,
    )

    config = NginxConfig(pool_threads=8, connections=6,
                         requests_per_connection=3,
                         work_cycles=20_000.0)
    stats = TrafficStats()
    mvee = MVEE(NginxServer(config), variants=variants,
                agent=agent, seed=seed,
                costs=costs or RACE_SWEEP_COSTS,
                instrument=((lambda site: True) if instrumented
                            else pthread_only_sites),
                with_network=True,
                traffic=make_traffic(config, 0.0, stats),
                max_cycles=5e9, races=detector, obs=obs)
    return mvee.run()


def _race_row_for(workload: str, run, identified) -> RaceSweepRow:
    """Run one race-sweep workload twice (bare, detector-attached) and
    fold both into a row."""
    import time

    from repro.races import RaceDetector, cross_check

    def timed(fn):
        start = time.perf_counter()
        outcome = fn()
        return outcome, time.perf_counter() - start

    baseline, base_elapsed = timed(lambda: run(None))
    detector = RaceDetector()
    detected, det_elapsed = timed(lambda: run(detector))
    report = detector.report
    coverage = cross_check(report, identified, workload=workload)
    overhead = ((det_elapsed - base_elapsed) / base_elapsed * 100.0
                if base_elapsed > 0 else 0.0)
    return RaceSweepRow(
        workload=workload, verdict=detected.verdict,
        sync_ops=report.sync_ops_seen,
        plain_accesses=report.plain_accesses_checked,
        races=len(report.races),
        occurrences=report.total_occurrences,
        gaps=len(coverage.gaps),
        overhead_pct=overhead,
        cycles_identical=(detected.cycles == baseline.cycles))


def _race_sweep_cell(workload: str, scale: float, seed: int,
                     costs) -> RaceSweepRow:
    """One race-sweep row; module-level for the parallel engine.

    ``workload`` is either a lockstep benchmark name or one of the two
    §5.5 nginx conditions (``"nginx/bare"``, ``"nginx/full"``).  Every
    field of the returned row except ``overhead_pct`` (host wall-clock)
    is a deterministic function of the arguments.
    """
    costs = costs or RACE_SWEEP_COSTS
    if workload in ("nginx/bare", "nginx/full"):
        instrumented = workload == "nginx/full"
        identified = nginx_identified_sites(after_refactor=instrumented)
        return _race_row_for(
            workload,
            lambda detector: run_nginx_condition(instrumented, seed=seed,
                                                 costs=costs,
                                                 detector=detector),
            identified)

    def run_bench(detector):
        program = SyntheticWorkload(spec_by_name(workload), scale=scale)
        native = native_cycles(workload, scale, seed, PAPER_CORES, costs)
        return run_mvee(program, variants=2, agent="wall_of_clocks",
                        seed=seed, cores=PAPER_CORES, costs=costs,
                        max_cycles=native * 400, races=detector)

    return _race_row_for(workload, run_bench, frozenset())


def run_race_sweep(benchmarks=("dedup", "vips"), scale: float = 0.1,
                   seed: int = 1, costs: CostModel | None = None,
                   include_nginx: bool = True,
                   jobs: int = 1,
                   env: str | None = None) -> list[RaceSweepRow]:
    """Race-detection experiment: races found + detector overhead.

    Each workload runs twice — with and without the detector — so the
    row can report both the wall-clock overhead of detection and that
    the simulated timelines stayed identical (the zero-cost contract).
    The lockstep benchmarks run fully instrumented and must report zero
    races; the nginx conditions exercise the coverage cross-check.

    ``jobs`` shards workloads across workers in the ``env`` execution
    environment; row order is always benchmarks-then-nginx regardless
    of completion order or environment.
    """
    workloads = list(benchmarks)
    if include_nginx:
        workloads += ["nginx/bare", "nginx/full"]
    tasks = [CellTask(sweep_id="race-sweep", index=index,
                      fn=_race_sweep_cell,
                      kwargs=dict(workload=workload, scale=scale,
                                  seed=seed, costs=costs))
             for index, workload in enumerate(workloads)]
    results = raise_failures(run_cells(tasks, jobs=jobs, env=env))
    return [result.value for result in results]


def race_sweep_table(rows) -> str:
    """Render the race experiment: races + detector overhead per workload."""
    lines = ["race detection: races found and detector overhead",
             f"{'workload':14s} {'verdict':>11s} {'sync ops':>9s} "
             f"{'plain':>7s} {'races':>6s} {'occur':>7s} {'gaps':>5s} "
             f"{'overhead':>9s} {'timeline':>9s}"]
    for row in rows:
        lines.append(
            f"{row.workload:14s} {row.verdict:>11s} {row.sync_ops:9d} "
            f"{row.plain_accesses:7d} {row.races:6d} "
            f"{row.occurrences:7d} {row.gaps:5d} "
            f"{row.overhead_pct:8.1f}% "
            f"{'same' if row.cycles_identical else 'DIFFERS':>9s}")
    gaps = sum(row.gaps for row in rows)
    lines.append(f"{gaps} coverage gap(s) across the sweep; simulated "
                 "timelines unchanged by detection in "
                 f"{sum(1 for r in rows if r.cycles_identical)}/{len(rows)}"
                 " runs")
    return "\n".join(lines)


#: Watchdog deadline for the deadlock sweep's detector-less baseline
#: rows — what a wedged run costs before the old path even diagnoses it.
DEADLOCK_SWEEP_WATCHDOG = 300_000.0


@dataclass
class DeadlockSweepRow:
    """One (workload, mode) cell of the deadlock-detection experiment."""

    workload: str
    #: ``watchdog`` (detector detached, old diagnosis path) or
    #: ``detector`` (wait-for-graph attached).
    mode: str
    verdict: str
    #: Simulated cycles when the run ended (detection latency).
    cycles: float
    #: The named wait-for cycle, the watchdog cause hint, or ``-``.
    diagnosis: str
    guard_refusals: int
    #: Clean runs only: detector-attached timeline matched detached.
    cycles_identical: bool | None


def _deadlock_sweep_cell(workload: str, mode: str,
                         seed: int) -> DeadlockSweepRow:
    """One deadlock-sweep row; module-level for the parallel engine."""
    import re

    from repro.workloads.philosophers import DiningPhilosophers

    base, _, flavor = workload.partition("+")
    philosophers = int(base.rsplit("/", 1)[1])
    trylock = flavor == "trylock"

    def run(detector):
        policy = (None if mode == "detector" else MonitorPolicy(
            watchdog_cycles=DEADLOCK_SWEEP_WATCHDOG))
        return run_mvee(DiningPhilosophers(philosophers, trylock=trylock),
                        variants=2, seed=seed, policy=policy,
                        max_cycles=5e7, deadlocks=detector)

    if mode == "watchdog":
        outcome = run(None)
        diagnosis = "-"
        if outcome.divergence is not None:
            match = re.search(r"\[cause: ([^\]]+)\]",
                              outcome.divergence.detail)
            diagnosis = match.group(1) if match else "-"
        return DeadlockSweepRow(
            workload=workload, mode=mode, verdict=outcome.verdict,
            cycles=outcome.machine.now, diagnosis=diagnosis,
            guard_refusals=0, cycles_identical=None)

    from repro.races import DeadlockDetector

    detector = DeadlockDetector()
    outcome = run(detector)
    report = detector.report
    diagnosis = (report.records[0].cycle_name() if report.records
                 else "-")
    identical = None
    if outcome.verdict == "clean":
        identical = run(None).machine.now == outcome.machine.now
    return DeadlockSweepRow(
        workload=workload, mode=mode, verdict=outcome.verdict,
        cycles=outcome.machine.now, diagnosis=diagnosis,
        guard_refusals=report.guard_refusals,
        cycles_identical=identical)


def run_deadlock_sweep(sizes=(3, 4), seed: int = 1, jobs: int = 1,
                       env: str | None = None
                       ) -> list[DeadlockSweepRow]:
    """Deadlock-detection experiment: diagnosis latency and quality.

    For each table size the wedging workload runs twice — once on the
    old path (no detector, watchdog deadline diagnosis with the cause
    hint) and once with the wait-for-graph detector (``deadlock``
    verdict at cycle formation) — and the trylock-guarded variant runs
    with the detector to show a guarded program staying clean on an
    unperturbed timeline.
    """
    cells = []
    for size in sizes:
        cells.append((f"philosophers/{size}", "watchdog"))
        cells.append((f"philosophers/{size}", "detector"))
    cells.append((f"philosophers/{sizes[0]}+trylock", "detector"))
    tasks = [CellTask(sweep_id="deadlock-sweep", index=index,
                      fn=_deadlock_sweep_cell,
                      kwargs=dict(workload=workload, mode=mode,
                                  seed=seed))
             for index, (workload, mode) in enumerate(cells)]
    results = raise_failures(run_cells(tasks, jobs=jobs, env=env))
    return [result.value for result in results]


def deadlock_sweep_table(rows) -> str:
    """Render the deadlock experiment: latency + diagnosis per cell."""
    lines = ["deadlock detection: diagnosis latency and quality",
             f"{'workload':22s} {'mode':>9s} {'verdict':>11s} "
             f"{'cycles':>10s} {'guards':>7s} {'timeline':>9s}  diagnosis"]
    for row in rows:
        timeline = ("same" if row.cycles_identical
                    else "DIFFERS" if row.cycles_identical is False
                    else "-")
        lines.append(
            f"{row.workload:22s} {row.mode:>9s} {row.verdict:>11s} "
            f"{row.cycles:10.0f} {row.guard_refusals:7d} "
            f"{timeline:>9s}  {row.diagnosis}")
    detected = [row for row in rows
                if row.mode == "detector" and row.verdict == "deadlock"]
    baseline = {row.workload: row.cycles for row in rows
                if row.mode == "watchdog"}
    speedups = [baseline[row.workload] / row.cycles for row in detected
                if baseline.get(row.workload)]
    if speedups:
        lines.append(
            f"detector diagnoses {len(detected)} wedge(s) "
            f"{min(speedups):.1f}-{max(speedups):.1f}x earlier than "
            "the watchdog deadline, with the cycle named")
    return "\n".join(lines)


def _grid_cell(benchmark: str, agent: str, variants: int, scale: float,
               seed: int, costs) -> ExperimentResult:
    """One Figure 5 grid cell; module-level for the parallel engine."""
    return run_one(benchmark, agent, variants, scale=scale, seed=seed,
                   costs=costs)


def run_benchmark_grid(benchmarks=None, agents=AGENTS,
                       variant_counts=VARIANT_COUNTS,
                       scale: float = 1.0, seed: int = 1,
                       costs: CostModel | None = None,
                       jobs: int = 1,
                       env: str | None = None) -> list[ExperimentResult]:
    """Run the full (or a partial) Figure 5 grid.

    ``jobs`` shards grid cells across workers in the ``env`` execution
    environment (process workers bypass the per-process memo cache;
    ``jobs=1`` keeps the historical in-process memoized path).  Result
    order is always the canonical grid nesting.
    """
    if benchmarks is None:
        benchmarks = list(ALL_SPECS)
    if jobs <= 1:
        results = []
        for benchmark in benchmarks:
            for agent in agents:
                for variants in variant_counts:
                    results.append(run_one(benchmark, agent, variants,
                                           scale=scale, seed=seed,
                                           costs=costs))
        return results
    tasks = []
    for benchmark in benchmarks:
        for agent in agents:
            for variants in variant_counts:
                tasks.append(CellTask(
                    sweep_id="fig5-grid", index=len(tasks),
                    fn=_grid_cell,
                    kwargs=dict(benchmark=benchmark, agent=agent,
                                variants=variants, scale=scale,
                                seed=seed, costs=costs)))
    results = raise_failures(run_cells(tasks, jobs=jobs, env=env))
    return [result.value for result in results]
