"""The serve load-test scenario: thousands of short nginx sessions.

This module owns the *shape* of the load — which session specs, with
which derived seeds — while :mod:`repro.serve.bench` owns driving them
through a live daemon and measuring throughput/latency.  Splitting it
this way keeps the scenario a pure function: the same
``(sessions, workload, base_seed)`` always produces the same spec list,
so the bench artifact's digest (over per-session verdicts and obs
digests) is reproducible across hosts, worker counts, and daemon
restarts — the same discipline ``repro bench`` applies to the benchmark
matrix (``docs/PERFORMANCE.md``).

Per-session seeds come from :func:`repro.par.seeds.derive_cell_seed`
with sweep id ``"serve-load"``: client threads race to *pick up* specs,
but a session's seed is a function of its position in the scenario, so
scheduling cannot leak into any simulated quantity.
"""

from __future__ import annotations

import hashlib
import json

from repro.par.seeds import derive_cell_seed

#: Sweep id under which load-session seeds are derived.
SWEEP_ID = "serve-load"

#: Default load mix: 2-variant wall-of-clocks nginx — the paper's
#: deployment story (§5.5) at the service's short-session sizing.
DEFAULT_WORKLOAD = "nginx"
DEFAULT_AGENT = "wall_of_clocks"
DEFAULT_VARIANTS = 2


def build_load(sessions: int, workload: str = DEFAULT_WORKLOAD,
               agent: str = DEFAULT_AGENT,
               variants: int = DEFAULT_VARIANTS,
               base_seed: int = 1, scale: float = 0.05,
               params: dict | None = None) -> list[dict]:
    """The scenario: one JSON-safe session spec per load slot."""
    specs = []
    for index in range(sessions):
        spec = {
            "workload": workload,
            "agent": agent,
            "variants": variants,
            "seed": derive_cell_seed(SWEEP_ID, index, base_seed),
        }
        if workload == "nginx":
            if params:
                spec["params"] = dict(params)
        else:
            spec["scale"] = scale
        specs.append(spec)
    return specs


def single_shot(spec: dict) -> dict:
    """Byte-identity oracle: the same spec executed without the daemon.

    Runs the session function inline (exactly what a batch worker runs,
    exactly what ``repro run`` computes for the same knobs) and returns
    the result dict; tests and the bench's verification mode compare
    its ``verdict`` and ``obs_digest`` against the served result.
    """
    from repro.serve.session import run_session_cell

    return run_session_cell(spec, "single-shot")


def canonical_outcomes(outcomes: list[dict]) -> list[dict]:
    """Deterministic view of per-session results, in scenario order.

    Keeps only simulated quantities (seed, verdict, cycles, digest) —
    latencies and retry counts are host noise and never enter the
    digest.
    """
    cells = []
    for outcome in outcomes:
        cells.append({
            "index": outcome["index"],
            "seed": outcome["seed"],
            "verdict": outcome.get("verdict"),
            "cycles": outcome.get("cycles"),
            "obs_digest": outcome.get("obs_digest"),
        })
    return sorted(cells, key=lambda cell: cell["index"])


def load_digest(outcomes: list[dict]) -> str:
    """``sha256:`` digest of the canonical per-session outcomes."""
    payload = json.dumps(canonical_outcomes(outcomes), sort_keys=True)
    return "sha256:" + hashlib.sha256(payload.encode()).hexdigest()
