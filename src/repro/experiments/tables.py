"""Paper-style table and figure generators.

Each function returns the text the corresponding bench prints, matching
the rows/series of the paper's Tables 1-3 and Figure 5.  The numeric
targets from the paper are embedded so every output shows
paper-vs-measured side by side (the EXPERIMENTS.md record is generated
from the same data).
"""

from __future__ import annotations

from repro.experiments.runner import (
    AGENTS,
    VARIANT_COUNTS,
    ExperimentResult,
    run_benchmark_grid,
)
from repro.perf.report import aggregate_slowdowns, format_table, render_bars
from repro.run import run_native
from repro.workloads.spec import ALL_SPECS
from repro.workloads.synthetic import SyntheticWorkload

#: Table 1 of the paper: aggregated average slowdowns.
TABLE1_PAPER = {
    ("total_order", 2): 2.76, ("total_order", 3): 2.83,
    ("total_order", 4): 2.87,
    ("partial_order", 2): 2.83, ("partial_order", 3): 2.83,
    ("partial_order", 4): 3.00,
    ("wall_of_clocks", 2): 1.14, ("wall_of_clocks", 3): 1.27,
    ("wall_of_clocks", 4): 1.38,
}


def table1(results: list[ExperimentResult] | None = None,
           scale: float = 1.0, jobs: int = 1,
           env: str | None = None) -> str:
    """Regenerate Table 1: aggregated average slowdowns per agent."""
    if results is None:
        results = run_benchmark_grid(scale=scale, jobs=jobs, env=env)
    slowdowns = aggregate_slowdowns([r.to_slowdown() for r in results])
    geo = aggregate_slowdowns([r.to_slowdown() for r in results],
                              mean="geometric")
    rows = []
    for agent in AGENTS:
        row = [agent]
        for variants in VARIANT_COUNTS:
            measured = slowdowns.get((agent, variants), float("nan"))
            paper = TABLE1_PAPER[(agent, variants)]
            row.append(f"{measured:.2f}x (paper {paper:.2f}x)")
        rows.append(row)
        geo_row = [f"  {agent} [geomean]"]
        for variants in VARIANT_COUNTS:
            geo_row.append(f"{geo.get((agent, variants), float('nan')):.2f}x")
        rows.append(geo_row)
    return format_table(
        ["agent", "2 variants", "3 variants", "4 variants"], rows,
        title="Table 1: aggregated average slowdowns (measured vs paper)")


def _table2_row(name: str, scale: float, seed: int) -> list[str]:
    """One Table 2 row; module-level for the parallel engine."""
    spec = ALL_SPECS[name]
    program = SyntheticWorkload(spec, scale=scale)
    result = run_native(program, seed=seed)
    seconds = result.report.seconds
    syscall_rate = result.report.total_syscalls / seconds / 1000.0
    sync_rate = result.report.total_sync_ops / seconds / 1000.0
    return [
        name,
        f"{spec.native_runtime_s:8.2f}",
        f"{seconds * 1000:8.3f}",
        f"{syscall_rate:8.2f} ({spec.syscall_rate_k:8.2f})",
        f"{sync_rate:9.2f} ({spec.sync_rate_k:9.2f})",
    ]


def table2(scale: float = 1.0, seed: int = 1, jobs: int = 1,
           env: str | None = None) -> str:
    """Regenerate Table 2: native run time, syscall and sync-op rates.

    The run-time column shows the paper's full-benchmark time next to our
    simulated slice length (we simulate a rate-faithful slice, not the
    whole run; see DESIGN.md).  ``jobs`` shards the per-benchmark native
    runs across workers in the ``env`` execution environment; row order
    stays the spec-table order.
    """
    from repro.par.engine import CellTask, raise_failures, run_cells

    tasks = [CellTask(sweep_id="table2", index=index, fn=_table2_row,
                      kwargs=dict(name=name, scale=scale, seed=seed))
             for index, name in enumerate(ALL_SPECS)]
    results = raise_failures(run_cells(tasks, jobs=jobs, env=env))
    rows = [result.value for result in results]
    return format_table(
        ["benchmark", "paper runtime (s)", "slice (ms)",
         "syscalls K/s (paper)", "sync ops K/s (paper)"],
        rows,
        title="Table 2: native run times and event rates "
              "(measured (paper))")


def table3(analysis: str = "andersen",
           treat_volatile_as_sync: bool = False) -> str:
    """Regenerate Table 3: sync ops identified per module and class."""
    from repro.analysis.corpus import TABLE3_PAPER, paper_corpus
    from repro.analysis.identify import table3_rows

    rows = []
    for name, type1, type2, type3 in table3_rows(
            paper_corpus(), analysis=analysis,
            treat_volatile_as_sync=treat_volatile_as_sync):
        paper1, paper2, paper3 = TABLE3_PAPER[name]
        rows.append([name,
                     f"{type1} ({paper1})",
                     f"{type2} ({paper2})",
                     f"{type3} ({paper3})"])
    return format_table(
        ["module", "type (i) (paper)", "type (ii) (paper)",
         "type (iii) (paper)"],
        rows,
        title="Table 3: identified sync ops (measured (paper))")


def figure5_series(results: list[ExperimentResult] | None = None,
                   scale: float = 1.0, jobs: int = 1,
                   env: str | None = None) -> str:
    """Regenerate Figure 5: per-benchmark overhead, 3 agents x 2-4
    variants (the three stacks per benchmark of the paper's figure)."""
    if results is None:
        results = run_benchmark_grid(scale=scale, jobs=jobs, env=env)
    indexed = {(r.benchmark, r.agent, r.variants): r for r in results}
    rows = []
    for name in ALL_SPECS:
        row = [name]
        for agent in AGENTS:
            cells = []
            for variants in VARIANT_COUNTS:
                result = indexed.get((name, agent, variants))
                if result is None:
                    cells.append("-")
                elif result.verdict != "clean":
                    cells.append(result.verdict[:4])
                else:
                    cells.append(f"{result.slowdown:.2f}")
            row.append("/".join(cells))
        rows.append(row)
    table = format_table(
        ["benchmark", "TO 2/3/4", "PO 2/3/4", "WoC 2/3/4"],
        rows,
        title="Figure 5: run-time overhead relative to native "
              "(slowdown factor, 2/3/4 variants)")
    # The figure itself: per-benchmark bars for the 2-variant column.
    series: dict[str, float] = {}
    for name in ALL_SPECS:
        for agent, tag in (("total_order", "TO"),
                           ("partial_order", "PO"),
                           ("wall_of_clocks", "WoC")):
            result = indexed.get((name, agent, 2))
            if result is not None and result.verdict == "clean":
                series[f"{name} {tag}"] = result.slowdown
    if series:
        table += ("\n\nFigure 5 (rendered, 2 variants):\n"
                  + render_bars(series, ceiling=8.0))
    return table
