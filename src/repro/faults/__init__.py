"""``repro.faults`` — seeded, deterministic fault injection.

The paper's monitor treats every anomaly the same way: kill all variants
(Section 2).  That makes the reproduction fragile as a *system* — one
stalled variant parks the whole lockstep rendezvous forever.  This
package provides the other half of the robustness story:

* :class:`FaultPlan` / :class:`FaultSpec` — a declarative schedule of
  faults pinned to *logical* trigger points (the n-th monitored syscall
  of a variant, the n-th sync-buffer record, ...), either written out
  explicitly or drawn from a seeded RNG.  Same plan + same seed ⇒ the
  same faults at the same simulated cycles, every run.
* :class:`FaultInjector` — the runtime that the simulator's hot paths
  consult through ``faults is not None`` hooks (the same zero-cost
  pattern as :mod:`repro.obs`): with no injector attached the timeline
  is byte-identical to the seed simulator.

The monitor-side resilience machinery that *survives* these faults
(watchdog, quarantine, restart) lives in :mod:`repro.core.monitor`; the
policy knobs live on :class:`repro.core.divergence.MonitorPolicy`.
"""

from __future__ import annotations

from repro.faults.injector import FaultInjector, InjectedFault
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
    parse_fault_spec,
)

#: The monitor's graceful-degradation policies, in documentation order.
#: Single source of truth for everything that enumerates them (CLI
#: choices, the fault matrix, serve session specs, registry recovery).
DEGRADATION_POLICIES = ("kill-all", "quarantine", "restart")

__all__ = [
    "DEGRADATION_POLICIES",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "parse_fault_spec",
    "parse_fault_plan",
]
