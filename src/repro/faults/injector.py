"""The fault-injection runtime.

One :class:`FaultInjector` is attached per MVEE run (never for native
runs).  The simulator's hot paths consult it through the same zero-cost
pattern as :mod:`repro.obs` — a single ``faults is not None`` attribute
test when disabled — and each check is keyed to a deterministic logical
counter, so a fixed plan and machine seed reproduce the same faults at
the same simulated cycles.

The injector never *acts* on the simulation itself; it only answers
"does a planned fault trigger here?" and records what fired.  The
machine, buffers, futex table, and syscall orderer apply the effect at
their own hook sites, and the monitor's resilience machinery
(:mod:`repro.core.monitor`) deals with the fallout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import FaultPlan, FaultSpec


@dataclass
class InjectedFault:
    """One fault that actually fired, with its injection context."""

    spec: FaultSpec
    at_cycles: float
    variant: int
    thread: str
    site: str
    detail: str

    @property
    def kind(self) -> str:
        return self.spec.kind

    def to_dict(self) -> dict:
        return {
            "kind": self.spec.kind,
            "variant": self.variant,
            "thread": self.thread,
            "site": self.site,
            "at": self.spec.at,
            "param": self.spec.param,
            "at_cycles": self.at_cycles,
            "detail": self.detail,
        }


class FaultInjector:
    """Runtime dispatch from hook sites to pending :class:`FaultSpec`s.

    Pending specs are indexed by ``(kind, variant)`` and consumed in
    trigger order; a spec fires at most once.  Trigger comparisons use
    ``>=`` so a spec whose exact index was skipped (e.g. a
    thread-restricted spec) still fires at the first later opportunity,
    while a spec beyond the workload's horizon simply never fires.
    """

    def __init__(self, plan):
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan(plan)
        self.plan = plan
        self.injected: list[InjectedFault] = []
        self.obs = None
        self._clock = lambda: 0.0
        #: (kind, variant) -> pending specs sorted by trigger index.
        self._pending: dict[tuple[str, int], list[FaultSpec]] = {}
        for spec in plan:
            self._pending.setdefault((spec.kind, spec.variant),
                                     []).append(spec)
        for queue in self._pending.values():
            queue.sort(key=lambda spec: spec.at)
        #: Global count of sync-buffer records produced (all buffers).
        self._produced = 0
        #: variant -> futex wake operations (with waiters) executed.
        self._wakes: dict[int, int] = {}
        #: variant -> ordered-syscall completions (slave replay clock).
        self._order_finishes: dict[int, int] = {}

    def bind_clock(self, clock) -> None:
        """Attach the machine's simulated clock (``lambda: machine.now``)."""
        self._clock = clock

    def bind_obs(self, hub) -> None:
        self.obs = hub

    # -- hook entry points ---------------------------------------------------

    def check_syscall(self, variant: int, thread: str, name: str,
                      completed: int) -> FaultSpec | None:
        """Crash/stall check when a variant is about to issue a
        monitored syscall, having ``completed`` monitored calls so far."""
        for kind in ("crash", "stall"):
            queue = self._pending.get((kind, variant))
            if not queue:
                continue
            spec = queue[0]
            if completed < spec.at:
                continue
            if spec.thread is not None and spec.thread != thread:
                continue
            queue.pop(0)
            self._record(spec, variant, thread, site=name,
                         detail=f"{kind} entering {name!r} after "
                                f"{completed} monitored calls")
            return spec
        return None

    def on_sync_produce(self, record) -> None:
        """Corruption check for the n-th record appended to *any* shared
        sync buffer; mutates ``record`` in place when a spec fires."""
        index = self._produced
        self._produced += 1
        queue = self._pending.get(("corrupt_sync", 0))
        if not queue or index < queue[0].at:
            return
        spec = queue.pop(0)
        if isinstance(record.payload, tuple) and len(record.payload) == 2:
            # WoC record: inflate the recorded clock time so replicas
            # gate on a timestamp their local wall may never reach.
            clock_id, time = record.payload
            record.payload = (clock_id, time + spec.param)
            detail = (f"sync record #{index}: clock time {time} -> "
                      f"{time + spec.param}")
        else:
            # Order-based record: clobber the producer-thread field so
            # replay attributes the op to a thread that does not exist.
            original = record.thread
            record.thread = f"{original}?corrupt"
            detail = (f"sync record #{index}: thread {original!r} "
                      "clobbered")
        self._record(spec, 0, record.thread, site=record.site,
                     detail=detail)

    def check_drop_wake(self, variant: int, addr: int) -> int:
        """How many wakeups to suppress at this futex wake (0 = none).

        Counts only wake operations that found waiters, so a dropped
        wake is always a *lost* wake."""
        count = self._wakes.get(variant, 0)
        self._wakes[variant] = count + 1
        queue = self._pending.get(("drop_wake", variant))
        if not queue or count < queue[0].at:
            return 0
        spec = queue.pop(0)
        self._record(spec, variant, thread="", site=f"futex@{addr:#x}",
                     detail=f"wake op #{count} on {addr:#x}: dropped "
                            f"{spec.param} wakeup(s)")
        return max(spec.param, 0)

    def check_clock_skew(self, variant: int) -> int:
        """Skew to add to a slave's replay clock at this ordered finish."""
        count = self._order_finishes.get(variant, 0)
        self._order_finishes[variant] = count + 1
        queue = self._pending.get(("clock_skew", variant))
        if not queue or count < queue[0].at:
            return 0
        spec = queue.pop(0)
        self._record(spec, variant, thread="", site="order_clock",
                     detail=f"ordered finish #{count}: replay clock "
                            f"skewed by +{spec.param}")
        return spec.param

    # -- bookkeeping ---------------------------------------------------------

    def _record(self, spec: FaultSpec, variant: int, thread: str,
                site: str, detail: str) -> None:
        event = InjectedFault(spec=spec, at_cycles=self._clock(),
                              variant=variant, thread=thread, site=site,
                              detail=detail)
        self.injected.append(event)
        if self.obs is not None:
            self.obs.fault_injected(spec.kind, variant, thread, site,
                                    detail)
