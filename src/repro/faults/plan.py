"""Fault plans: what to break, where, and when — deterministically.

A fault is pinned to a *logical* trigger point, never to wall-clock or
simulated time directly, so a plan composes with the seeded scheduler:
the same ``(plan, machine seed)`` pair reproduces the same fault at the
same simulated cycle on every run.

Fault kinds and their trigger semantics:

``crash``
    The target variant takes an unrecoverable guest fault (a SIGSEGV
    analogue) when it is about to issue a monitored syscall and has
    already completed ``at`` monitored calls.
``stall``
    Same trigger point, but the call never returns: the thread parks on
    a key nothing ever wakes — the in-syscall hang that motivates the
    lockstep watchdog.
``corrupt_sync``
    The ``at``-th record produced into the shared sync buffers is
    mutated before any slave can consume it (a flipped word in the
    System V IPC segment).  ``param`` scales the mutation.
``drop_wake``
    The ``at``-th futex wake *with waiters* executed by the target
    variant loses ``param`` wakeups: the woken threads stay queued, the
    caller sees fewer threads released (a lost-wakeup kernel bug).
``clock_skew``
    The target (slave) variant's §4.1 Lamport replay clock silently
    jumps ahead by ``param`` at its ``at``-th ordered-syscall
    completion, so every later ordered call waits for a timestamp that
    already passed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigError

#: Every fault kind the injector understands.
FAULT_KINDS = ("crash", "stall", "corrupt_sync", "drop_wake", "clock_skew")


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``at`` is the kind-specific logical trigger index (see module
    docstring); ``thread`` optionally restricts crash/stall to one
    logical thread; ``param`` is the kind-specific magnitude.
    """

    kind: str
    variant: int
    at: int
    thread: str | None = None
    param: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}")
        if self.variant < 0:
            raise ConfigError("fault variant must be >= 0")
        if self.at < 0:
            raise ConfigError("fault trigger index must be >= 0")

    def describe(self) -> str:
        text = f"{self.kind}@v{self.variant}:{self.at}"
        if self.param != 1:
            text += f":{self.param}"
        if self.thread is not None:
            text += f"[{self.thread}]"
        return text


class FaultPlan:
    """An immutable schedule of :class:`FaultSpec` entries."""

    def __init__(self, specs=()):
        self.specs = tuple(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigError(
                    f"FaultPlan entries must be FaultSpec, got {spec!r}")

    @classmethod
    def random(cls, seed: int, n_variants: int, max_faults: int = 3,
               horizon: int = 30, kinds=FAULT_KINDS) -> "FaultPlan":
        """Draw a plan from a seeded RNG (the stress-test entry point).

        ``horizon`` bounds the trigger indices so the faults land inside
        short workloads; kinds that only make sense for a specific
        variant (corruption happens at the master's producer side, skew
        on a slave's replay clock) are pinned there.
        """
        rng = random.Random(seed)
        specs = []
        for _ in range(rng.randint(1, max(max_faults, 1))):
            kind = rng.choice(list(kinds))
            if kind == "corrupt_sync":
                variant = 0
            elif kind == "clock_skew":
                variant = rng.randrange(1, n_variants) if n_variants > 1 else 0
            else:
                variant = rng.randrange(n_variants)
            specs.append(FaultSpec(
                kind=kind, variant=variant,
                at=rng.randrange(max(horizon, 1)),
                param=rng.randint(1, 4)))
        return cls(specs)

    def describe(self) -> str:
        return ",".join(spec.describe() for spec in self.specs) or "<empty>"

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse one ``kind@vN:AT[:PARAM]`` spec (the CLI grammar)."""
    head, sep, tail = text.strip().partition("@")
    if not sep or not head or not tail:
        raise ConfigError(
            f"bad fault spec {text!r}; expected kind@vN:AT[:PARAM]")
    parts = tail.split(":")
    if len(parts) not in (2, 3) or not parts[0].startswith("v"):
        raise ConfigError(
            f"bad fault spec {text!r}; expected kind@vN:AT[:PARAM]")
    try:
        variant = int(parts[0][1:])
        at = int(parts[1])
        param = int(parts[2]) if len(parts) == 3 else 1
    except ValueError as exc:
        raise ConfigError(f"bad fault spec {text!r}: {exc}") from None
    return FaultSpec(kind=head, variant=variant, at=at, param=param)


def parse_fault_plan(text: str, seed: int = 0,
                     n_variants: int = 2) -> FaultPlan:
    """Parse a ``--faults`` argument.

    ``"random"`` draws a seeded plan; anything else is a comma-separated
    list of ``kind@vN:AT[:PARAM]`` specs.
    """
    text = text.strip()
    if text == "random":
        return FaultPlan.random(seed, n_variants)
    return FaultPlan(parse_fault_spec(part)
                     for part in text.split(",") if part.strip())
