"""Guest programming model and runtime libraries.

Guest programs are written against :class:`repro.guest.program.GuestContext`
— a thin, generator-based API over the simulator's events.  On top of it
this package provides the runtime libraries whose internals matter to the
paper:

* :mod:`repro.guest.sync` — the "libpthread": spinlocks, futex-backed
  mutexes, condition variables, barriers, semaphores, ticket locks and
  rwlocks, all built from tagged atomic instructions;
* :mod:`repro.guest.libc` — the "libc": a malloc arena protected by an
  internal spinlock whose growth issues ``brk`` syscalls (the hidden
  low-level sync ops of Section 3.3), plus printf-style output;
* :mod:`repro.guest.gomp` — a miniature OpenMP runtime (dynamic
  work-sharing loop + barrier) for the freqmine-like workload.
"""

from repro.guest.program import GuestContext, GuestProgram
from repro.guest.sync import (
    Barrier,
    CondVar,
    Mutex,
    RWLock,
    Semaphore,
    SpinLock,
    TicketLock,
)
from repro.guest.libc import GuestLibc
from repro.guest.gomp import parallel_for

__all__ = [
    "GuestContext",
    "GuestProgram",
    "SpinLock",
    "TicketLock",
    "Mutex",
    "CondVar",
    "Barrier",
    "Semaphore",
    "RWLock",
    "GuestLibc",
    "parallel_for",
]
