"""Miniature OpenMP runtime — the simulation's "libgomp".

PARSEC's freqmine is the one benchmark in the paper's suite built on
OpenMP, and Table 3 lists the sync ops found in ``libgomp.so``.  This
module provides the two pieces freqmine-like workloads need: a dynamic
work-sharing loop (a shared next-chunk counter advanced with LOCK XADD)
and the implicit end-of-region barrier.
"""

from __future__ import annotations

from repro.guest.program import GuestContext
from repro.guest.sync import Barrier

#: Sites defined by this runtime.
SITE_NEXT_CHUNK = "libgomp.dynamic_next.xadd"
SITE_REMAINING = "libgomp.remaining.load"

GOMP_SITES = frozenset({SITE_NEXT_CHUNK, SITE_REMAINING})


def parallel_for(ctx: GuestContext, workers: int, iterations: int,
                 body, chunk: int = 1, work_cycles: float = 1_000.0):
    """Run ``body(ctx, index)`` for each index on ``workers`` threads.

    Iterations are claimed dynamically in ``chunk``-sized blocks from a
    shared counter (omp ``schedule(dynamic)``); the region ends with an
    implicit barrier.  ``body`` may be ``None`` for a pure compute loop
    burning ``work_cycles`` per iteration.
    """
    counter_addr = ctx.alloc_static("__gomp_next_chunk")
    barrier_count = ctx.alloc_static("__gomp_barrier_count")
    barrier_gen = ctx.alloc_static("__gomp_barrier_gen")
    barrier = Barrier(barrier_count, barrier_gen, workers)

    def worker(wctx: GuestContext):
        while True:
            start = yield from wctx.fetch_add(counter_addr, chunk,
                                              site=SITE_NEXT_CHUNK)
            if start >= iterations:
                break
            for index in range(start, min(start + chunk, iterations)):
                if body is not None:
                    yield from body(wctx, index)
                else:
                    yield from wctx.compute(work_cycles)
        yield from barrier.wait(wctx)

    tids = []
    for _ in range(workers - 1):
        tid = yield from ctx.spawn(worker)
        tids.append(tid)
    yield from worker(ctx)  # the master participates, as in OpenMP
    yield from ctx.join_all(tids)
