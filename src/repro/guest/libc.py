"""Guest libc: a malloc arena with *internal* synchronization.

Section 3.3 of the paper stresses that an MVEE must order sync ops hidden
inside language runtimes: "The memory allocator in GNU's libc ... protects
its internal data structures using low-level synchronization primitives
(e.g., assembly-based spinlocks)", and failing to order them "may affect
the program's behavior with respect to memory-related system calls".

This module reproduces that structure: ``malloc`` takes an internal
spinlock (sites ``libc.malloc.*``), bump-allocates from an arena, and
grows the arena with ``brk`` system calls when it runs out.  If the MVEE
does not order these internal sync ops, two variants can interleave their
allocations differently, issue ``brk`` at different points relative to
other syscalls, and return differently-ordered blocks — the exact benign
divergence the agents must eliminate.
"""

from __future__ import annotations

from repro.guest.program import GuestContext

#: How much extra room each brk extension requests (amortization).
ARENA_CHUNK = 64 * 1024


class GuestLibc:
    """Per-variant libc state.  Install with ``GuestLibc.setup(ctx)``."""

    SITE_LOCK = "libc.malloc.lock.cmpxchg"
    SITE_UNLOCK = "libc.malloc.unlock.store"

    def __init__(self, lock_addr: int, cursor_addr: int, end_addr: int):
        self.lock_addr = lock_addr
        self.cursor_addr = cursor_addr
        self.end_addr = end_addr

    @classmethod
    def setup(cls, ctx: GuestContext):
        """Initialize the allocator (main thread, before any spawn).

        Allocates the allocator's own metadata words as statics and
        primes the arena with an initial ``brk``.
        """
        lock_addr = ctx.alloc_static("__libc_malloc_lock")
        cursor_addr = ctx.alloc_static("__libc_arena_cursor")
        end_addr = ctx.alloc_static("__libc_arena_end")
        base = yield from ctx.syscall("brk", None)
        end = yield from ctx.syscall("brk", base + ARENA_CHUNK)
        ctx.mem_store(cursor_addr, base)
        ctx.mem_store(end_addr, end)
        libc = cls(lock_addr, cursor_addr, end_addr)
        ctx.libc = libc
        return libc

    # -- allocation -----------------------------------------------------------

    def _lock(self, ctx: GuestContext):
        while True:
            old = yield from ctx.cas(self.lock_addr, 0, 1,
                                     site=self.SITE_LOCK)
            if old == 0:
                return
            yield from ctx.sched_yield()

    def _unlock(self, ctx: GuestContext):
        yield from ctx.atomic_store(self.lock_addr, 0,
                                    site=self.SITE_UNLOCK)

    def malloc(self, ctx: GuestContext, size: int):
        """Allocate ``size`` bytes; returns the block address."""
        # Diversified allocators pad requests differently per variant —
        # the behaviour-changing diversification of Section 4.5.1.
        size = max(8, (size + ctx.vm.malloc_padding + 7) // 8 * 8)
        yield from self._lock(ctx)
        cursor = ctx.mem_load(self.cursor_addr)
        end = ctx.mem_load(self.end_addr)
        if cursor + size > end:
            grow = max(size, ARENA_CHUNK)
            new_end = yield from ctx.syscall("brk", end + grow)
            ctx.mem_store(self.end_addr, new_end)
        ctx.mem_store(self.cursor_addr, cursor + size)
        yield from self._unlock(ctx)
        return cursor

    def free(self, ctx: GuestContext, addr: int):
        """Release a block (arena allocator: lock round-trip, no reuse)."""
        yield from self._lock(ctx)
        yield from self._unlock(ctx)

    # -- stdio -------------------------------------------------------------------

    def fprintf(self, ctx: GuestContext, fd: int, text: str):
        """Formatted output; one ``write`` per call (unbuffered stdio)."""
        result = yield from ctx.syscall("write", fd, text)
        return result


#: Sites defined by this library (ground truth for analysis / Table 3).
LIBC_SITES = frozenset({GuestLibc.SITE_LOCK, GuestLibc.SITE_UNLOCK})
