"""Guest programs and the context API they are written against.

A guest program subclasses :class:`GuestProgram` and implements
``main(ctx)`` as a generator.  Every interaction with the outside world —
computation time, system calls, atomic operations, thread management —
goes through the :class:`GuestContext` helpers via ``yield from``:

.. code-block:: python

    class Hello(GuestProgram):
        name = "hello"
        static_vars = ("lock", "counter")

        def main(self, ctx):
            lock = SpinLock(ctx.static_addr("lock"))
            tid = yield from ctx.spawn(self.worker, lock)
            yield from ctx.printf("hello from main\\n")
            yield from ctx.join(tid)

        def worker(self, ctx, lock):
            yield from lock.acquire(ctx)
            ...

Plain (non-atomic) accesses to lock-protected shared data use
``ctx.mem_load`` / ``ctx.mem_store`` directly — they are ordinary
instructions, not sync ops, and the paper's threat model (data-race-free
programs, Section 3) guarantees they are ordered by the surrounding
synchronization.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.sched.events import (
    Annotate,
    Compute,
    InstructionClass,
    Join,
    Spawn,
    SyncOp,
    Syscall,
)


class GuestProgram:
    """Base class for guest programs.

    Attributes
    ----------
    name:
        Used in reports and benchmark tables.
    static_vars:
        Names of global words allocated (in declaration order) before the
        program starts.  Because allocation order is fixed, the k-th
        static is the same *logical* variable in every variant even though
        its address differs under diversified layouts.
    """

    name = "program"
    static_vars: tuple[str, ...] = ()

    def main(self, ctx: "GuestContext"):
        """The main-thread body (a generator).  Must be overridden."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type clarity

    def sync_sites(self) -> frozenset[str]:
        """Sync-op sites this program (and its libraries) may execute.

        Used by the instrumentation layer; the default "everything the
        runtime libraries define plus anything prefixed with the program
        name" is refined by the static analysis pipeline.
        """
        return frozenset()


class GuestContext:
    """Per-variant handle guest code uses to interact with the simulator."""

    def __init__(self, vm, statics: dict[str, int] | None = None):
        self.vm = vm
        self._statics = statics or {}
        #: Guest libc instance, installed by ``GuestLibc.setup``.
        self.libc = None

    # -- addresses ---------------------------------------------------------

    def static_addr(self, name: str) -> int:
        """Address of a pre-allocated program global (variant-local)."""
        return self._statics[name]

    def alloc_static(self, name: str, size: int = 8) -> int:
        """Allocate a fresh global word (main thread, pre-spawn only)."""
        addr = self.vm.kernel.addr_space.alloc_static(size)
        self._statics[name] = addr
        return addr

    # -- plain memory (ordinary instructions, not sync ops) ------------------

    def mem_load(self, addr: int) -> int:
        """Plain load of lock-protected shared data (no event)."""
        return self.vm.kernel.addr_space.load(addr)

    def mem_store(self, addr: int, value: int) -> None:
        """Plain store to lock-protected shared data (no event)."""
        self.vm.kernel.addr_space.store(addr, value)

    # -- computation and annotations --------------------------------------------

    def compute(self, cycles: float):
        """Burn ``cycles`` of CPU time."""
        yield Compute(cycles)

    def annotate(self, label: str, payload=None):
        """Emit a zero-cost trace marker (tests / figure benches)."""
        yield Annotate(label, payload)

    # -- system calls ---------------------------------------------------------------

    def syscall(self, name: str, *args):
        """Issue a raw system call and return its result."""
        result = yield Syscall(name, args)
        return result

    def write(self, fd: int, data) -> "int":
        result = yield Syscall("write", (fd, data))
        return result

    def read(self, fd: int, count: int):
        result = yield Syscall("read", (fd, count))
        return result

    def open(self, path: str, mode: str = "r"):
        result = yield Syscall("open", (path, mode))
        return result

    def close(self, fd: int):
        result = yield Syscall("close", (fd,))
        return result

    def printf(self, text: str):
        """Formatted output to stdout (a ``write`` under the hood)."""
        result = yield Syscall("write", (1, text))
        return result

    def gettimeofday(self):
        result = yield Syscall("gettimeofday", ())
        return result

    def sched_yield(self):
        result = yield Syscall("sched_yield", ())
        return result

    def futex_wait(self, addr: int, expected: int):
        result = yield Syscall("futex_wait", (addr, expected))
        return result

    def futex_wake(self, addr: int, count: int = 1):
        result = yield Syscall("futex_wake", (addr, count))
        return result

    def mvee_get_role(self):
        """The paper's self-awareness pseudo-syscall (Section 4.5)."""
        result = yield Syscall("mvee_get_role", ())
        return result

    def kill(self, sig: int):
        """Send a signal to this process."""
        result = yield Syscall("kill", (sig,))
        return result

    def sigwait(self, sig: int):
        """Block until ``sig`` is delivered; returns the signal number."""
        result = yield Syscall("sigwait", (sig,))
        return result

    # -- atomic operations (sync ops) -----------------------------------------------

    def cas(self, addr: int, expected: int, new: int,
            site: str = "anonymous", width: int = 4):
        """LOCK CMPXCHG — type (i).  Returns the old value."""
        result = yield SyncOp("cas", addr, (expected, new),
                              InstructionClass.LOCK_PREFIXED, site, width)
        return result

    def fetch_add(self, addr: int, delta: int,
                  site: str = "anonymous", width: int = 4):
        """LOCK XADD — type (i).  Returns the old value."""
        result = yield SyncOp("fetch_add", addr, (delta,),
                              InstructionClass.LOCK_PREFIXED, site, width)
        return result

    def xchg(self, addr: int, new: int,
             site: str = "anonymous", width: int = 4):
        """XCHG — type (ii).  Returns the old value."""
        result = yield SyncOp("xchg", addr, (new,),
                              InstructionClass.XCHG, site, width)
        return result

    def atomic_load(self, addr: int, site: str = "anonymous",
                    width: int = 4):
        """Aligned load — type (iii) when it aliases a sync variable."""
        result = yield SyncOp("load", addr, (),
                              InstructionClass.PLAIN, site, width)
        return result

    def atomic_store(self, addr: int, value: int,
                     site: str = "anonymous", width: int = 4):
        """Aligned store — type (iii) when it aliases a sync variable."""
        result = yield SyncOp("store", addr, (value,),
                              InstructionClass.PLAIN, site, width)
        return result

    # -- threads -----------------------------------------------------------------------

    def spawn(self, fn: Callable, *args, name: str | None = None):
        """Create a thread running ``fn(ctx, *args)``; returns its id."""
        tid = yield Spawn(fn, (self,) + tuple(args), name)
        return tid

    def join(self, tid: str):
        """Wait for a thread and return its return value."""
        result = yield Join(tid)
        return result

    def spawn_all(self, fn: Callable, arg_lists: Iterable[tuple]):
        """Spawn one thread per argument tuple; returns all ids."""
        tids = []
        for args in arg_lists:
            tid = yield Spawn(fn, (self,) + tuple(args), None)
            tids.append(tid)
        return tids

    def join_all(self, tids: Iterable[str]):
        """Join every thread in ``tids``; returns their results."""
        results = []
        for tid in tids:
            result = yield Join(tid)
            results.append(result)
        return results


def build_context(vm, program: GuestProgram) -> GuestContext:
    """Allocate a program's statics on ``vm`` and return its context."""
    statics: dict[str, int] = {}
    for name in program.static_vars:
        statics[name] = vm.kernel.addr_space.alloc_static(8)
    return GuestContext(vm, statics)
