"""Guest synchronization library — the simulation's "libpthread".

Every primitive is built from tagged atomic instructions, with stable
*site* labels (``libpthread.mutex.lock.cmpxchg`` and so on).  The site
labels matter twice:

* the static analysis pipeline (:mod:`repro.analysis`) identifies exactly
  these sites as sync ops — including the type (iii) plain stores such as
  the spinlock release, reproducing Listing 1's analysis example;
* the instrumentation filter decides per site whether the agent wrappers
  run, so tests can reproduce the paper's nginx failure mode by leaving
  the custom primitives un-instrumented (Section 5.5).

The mutex/condvar follow the glibc futex protocol (fast path in user
space, ``futex`` syscalls only under contention), because the distinction
matters to the monitor: futex is the blocking call exempted from syscall
ordering (Section 4.1).
"""

from __future__ import annotations

from repro.guest.program import GuestContext

#: Upper bound used for "wake all waiters".
WAKE_ALL = 1 << 30


class SpinLock:
    """Listing 1's ad-hoc spinlock: LOCK CMPXCHG to lock, plain store to
    unlock (the store is the type (iii) sync op found by points-to)."""

    SITE_LOCK = "libpthread.spinlock.lock.cmpxchg"
    SITE_UNLOCK = "libpthread.spinlock.unlock.store"

    def __init__(self, addr: int):
        self.addr = addr

    def acquire(self, ctx: GuestContext):
        while True:
            old = yield from ctx.cas(self.addr, 0, 1, site=self.SITE_LOCK)
            if old == 0:
                return
            yield from ctx.sched_yield()

    def release(self, ctx: GuestContext):
        yield from ctx.atomic_store(self.addr, 0, site=self.SITE_UNLOCK)


class TicketLock:
    """FIFO lock: XADD on the ticket counter, plain loads on "now serving"."""

    SITE_TAKE = "libpthread.ticketlock.take.xadd"
    SITE_POLL = "libpthread.ticketlock.poll.load"
    SITE_SERVE = "libpthread.ticketlock.serve.store"

    def __init__(self, ticket_addr: int, serving_addr: int):
        self.ticket_addr = ticket_addr
        self.serving_addr = serving_addr

    def acquire(self, ctx: GuestContext):
        ticket = yield from ctx.fetch_add(self.ticket_addr, 1,
                                          site=self.SITE_TAKE)
        while True:
            serving = yield from ctx.atomic_load(self.serving_addr,
                                                 site=self.SITE_POLL)
            if serving == ticket:
                return
            yield from ctx.sched_yield()

    def release(self, ctx: GuestContext):
        serving = yield from ctx.atomic_load(self.serving_addr,
                                             site=self.SITE_POLL)
        yield from ctx.atomic_store(self.serving_addr, serving + 1,
                                    site=self.SITE_SERVE)


class Mutex:
    """Futex-backed mutex (glibc-style three-state protocol).

    States: 0 = free, 1 = locked, 2 = locked with (possible) waiters.
    """

    SITE_FAST = "libpthread.mutex.lock.cmpxchg"
    SITE_SLOW = "libpthread.mutex.lock.xchg"
    SITE_TRY = "libpthread.mutex.trylock.cmpxchg"
    SITE_UNLOCK = "libpthread.mutex.unlock.xchg"

    def __init__(self, addr: int):
        self.addr = addr

    def acquire(self, ctx: GuestContext):
        old = yield from ctx.cas(self.addr, 0, 1, site=self.SITE_FAST)
        if old == 0:
            return
        while True:
            old = yield from ctx.xchg(self.addr, 2, site=self.SITE_SLOW)
            if old == 0:
                return
            yield from ctx.futex_wait(self.addr, 2)

    def try_acquire(self, ctx: GuestContext):
        """pthread_mutex_trylock: True on success (no blocking).

        Carries its own site label so the deadlock analyses can tell a
        guarded attempt from a blocking acquisition.
        """
        old = yield from ctx.cas(self.addr, 0, 1, site=self.SITE_TRY)
        return old == 0

    def release(self, ctx: GuestContext):
        old = yield from ctx.xchg(self.addr, 0, site=self.SITE_UNLOCK)
        if old == 2:
            yield from ctx.futex_wake(self.addr, 1)


class CondVar:
    """Futex-backed condition variable (sequence-counter protocol).

    Users must hold the associated mutex around ``wait`` and re-check
    their predicate in a loop, as with real condition variables.
    """

    SITE_SEQ_READ = "libpthread.cond.wait.load"
    SITE_SIGNAL = "libpthread.cond.signal.xadd"

    def __init__(self, seq_addr: int):
        self.seq_addr = seq_addr

    def wait(self, ctx: GuestContext, mutex: Mutex):
        seq = yield from ctx.atomic_load(self.seq_addr,
                                         site=self.SITE_SEQ_READ)
        yield from mutex.release(ctx)
        yield from ctx.futex_wait(self.seq_addr, seq)
        yield from mutex.acquire(ctx)

    def signal(self, ctx: GuestContext):
        yield from ctx.fetch_add(self.seq_addr, 1, site=self.SITE_SIGNAL)
        yield from ctx.futex_wake(self.seq_addr, 1)

    def broadcast(self, ctx: GuestContext):
        yield from ctx.fetch_add(self.seq_addr, 1, site=self.SITE_SIGNAL)
        yield from ctx.futex_wake(self.seq_addr, WAKE_ALL)


class Barrier:
    """Sense-reversing futex barrier for a fixed party count."""

    SITE_ARRIVE = "libpthread.barrier.arrive.xadd"
    SITE_GEN_READ = "libpthread.barrier.generation.load"
    SITE_GEN_BUMP = "libpthread.barrier.generation.xadd"
    SITE_RESET = "libpthread.barrier.reset.store"

    def __init__(self, count_addr: int, gen_addr: int, parties: int):
        self.count_addr = count_addr
        self.gen_addr = gen_addr
        self.parties = parties

    def wait(self, ctx: GuestContext):
        generation = yield from ctx.atomic_load(self.gen_addr,
                                                site=self.SITE_GEN_READ)
        arrived = yield from ctx.fetch_add(self.count_addr, 1,
                                           site=self.SITE_ARRIVE)
        if arrived + 1 == self.parties:
            yield from ctx.atomic_store(self.count_addr, 0,
                                        site=self.SITE_RESET)
            yield from ctx.fetch_add(self.gen_addr, 1,
                                     site=self.SITE_GEN_BUMP)
            yield from ctx.futex_wake(self.gen_addr, WAKE_ALL)
            return True  # the "serial thread", like pthread_barrier_wait
        while True:
            current = yield from ctx.atomic_load(self.gen_addr,
                                                 site=self.SITE_GEN_READ)
            if current != generation:
                return False
            yield from ctx.futex_wait(self.gen_addr, generation)


class Semaphore:
    """Counting semaphore over CAS + futex."""

    SITE_TRY = "libpthread.sem.trywait.cmpxchg"
    SITE_READ = "libpthread.sem.value.load"
    SITE_POST = "libpthread.sem.post.xadd"

    def __init__(self, addr: int):
        self.addr = addr

    def acquire(self, ctx: GuestContext):
        while True:
            value = yield from ctx.atomic_load(self.addr,
                                               site=self.SITE_READ)
            if value > 0:
                old = yield from ctx.cas(self.addr, value, value - 1,
                                         site=self.SITE_TRY)
                if old == value:
                    return
            else:
                yield from ctx.futex_wait(self.addr, 0)

    def release(self, ctx: GuestContext):
        yield from ctx.fetch_add(self.addr, 1, site=self.SITE_POST)
        yield from ctx.futex_wake(self.addr, 1)


class Once:
    """pthread_once: run an initializer exactly once across threads.

    States: 0 = never run, 1 = running, 2 = done.  Late arrivals wait on
    the state word's futex while the winner runs the initializer.
    """

    SITE_CLAIM = "libpthread.once.claim.cmpxchg"
    SITE_READ = "libpthread.once.state.load"
    SITE_DONE = "libpthread.once.done.store"

    def __init__(self, addr: int):
        self.addr = addr

    def call(self, ctx: GuestContext, initializer):
        """Run ``initializer(ctx)`` once; returns True for the winner."""
        old = yield from ctx.cas(self.addr, 0, 1, site=self.SITE_CLAIM)
        if old == 0:
            yield from initializer(ctx)
            yield from ctx.atomic_store(self.addr, 2,
                                        site=self.SITE_DONE)
            yield from ctx.futex_wake(self.addr, WAKE_ALL)
            return True
        while True:
            state = yield from ctx.atomic_load(self.addr,
                                               site=self.SITE_READ)
            if state == 2:
                return False
            yield from ctx.futex_wait(self.addr, state)


class RWLock:
    """Writer-preferring readers/writer lock.

    State word: -1 = writer holds, 0 = free, n>0 = n readers.  A separate
    word counts queued writers so readers defer to them.
    """

    SITE_STATE = "libpthread.rwlock.state.cmpxchg"
    SITE_STATE_READ = "libpthread.rwlock.state.load"
    SITE_WRITERS = "libpthread.rwlock.writers.xadd"
    SITE_WRITERS_READ = "libpthread.rwlock.writers.load"

    def __init__(self, state_addr: int, writers_addr: int):
        self.state_addr = state_addr
        self.writers_addr = writers_addr

    def acquire_read(self, ctx: GuestContext):
        while True:
            queued = yield from ctx.atomic_load(self.writers_addr,
                                                site=self.SITE_WRITERS_READ)
            state = yield from ctx.atomic_load(self.state_addr,
                                               site=self.SITE_STATE_READ)
            if queued == 0 and state >= 0:
                old = yield from ctx.cas(self.state_addr, state, state + 1,
                                         site=self.SITE_STATE)
                if old == state:
                    return
            yield from ctx.sched_yield()

    def release_read(self, ctx: GuestContext):
        while True:
            state = yield from ctx.atomic_load(self.state_addr,
                                               site=self.SITE_STATE_READ)
            old = yield from ctx.cas(self.state_addr, state, state - 1,
                                     site=self.SITE_STATE)
            if old == state:
                return

    def acquire_write(self, ctx: GuestContext):
        yield from ctx.fetch_add(self.writers_addr, 1,
                                 site=self.SITE_WRITERS)
        while True:
            old = yield from ctx.cas(self.state_addr, 0, -1,
                                     site=self.SITE_STATE)
            if old == 0:
                return
            yield from ctx.sched_yield()

    def release_write(self, ctx: GuestContext):
        yield from ctx.cas(self.state_addr, -1, 0, site=self.SITE_STATE)
        yield from ctx.fetch_add(self.writers_addr, -1,
                                 site=self.SITE_WRITERS)


class VolatileFlag:
    """Listing 2 at run time: a ``volatile int`` used as a one-shot
    signal, touched only by plain aligned load/store — no LOCK-prefixed
    or XCHG instruction ever targets the flag, so the static pipeline
    has no stage-1 root and never identifies these sites.  That makes
    this the reference workload for the race detector's coverage
    cross-check: every access shows up as an un-identified plain access,
    and the signal/wait pair races by construction.

    ``raise_flag``/``is_raised`` mirror Listing 2's ``signal_thread``/
    ``wait_until_signaled`` halves; ``spin_until_raised`` is the
    busy-wait loop (with a ``sched_yield`` so the simulation's
    scheduler can make progress).
    """

    SITE_RAISE = "volatile.flag.raise.store"
    SITE_POLL = "volatile.flag.poll.load"

    def __init__(self, addr: int):
        self.addr = addr

    def raise_flag(self, ctx: GuestContext):
        yield from ctx.atomic_store(self.addr, 1, site=self.SITE_RAISE)

    def is_raised(self, ctx: GuestContext):
        value = yield from ctx.atomic_load(self.addr,
                                           site=self.SITE_POLL)
        return value != 0

    def spin_until_raised(self, ctx: GuestContext):
        while True:
            raised = yield from self.is_raised(ctx)
            if raised:
                return
            yield from ctx.sched_yield()


#: The volatile-only sites — deliberately NOT in LIBPTHREAD_SITES: the
#: analysis cannot find them (the Listing-2 false negative), and the
#: cross-checker proves it.
VOLATILE_FLAG_SITES = frozenset({
    VolatileFlag.SITE_RAISE, VolatileFlag.SITE_POLL,
})


#: Every site label defined by this library — the ground truth the static
#: analysis is expected to recover (used in tests and Table 3).
LIBPTHREAD_SITES = frozenset({
    SpinLock.SITE_LOCK, SpinLock.SITE_UNLOCK,
    TicketLock.SITE_TAKE, TicketLock.SITE_POLL, TicketLock.SITE_SERVE,
    Mutex.SITE_FAST, Mutex.SITE_SLOW, Mutex.SITE_TRY, Mutex.SITE_UNLOCK,
    CondVar.SITE_SEQ_READ, CondVar.SITE_SIGNAL,
    Barrier.SITE_ARRIVE, Barrier.SITE_GEN_READ, Barrier.SITE_GEN_BUMP,
    Barrier.SITE_RESET,
    Semaphore.SITE_TRY, Semaphore.SITE_READ, Semaphore.SITE_POST,
    Once.SITE_CLAIM, Once.SITE_READ, Once.SITE_DONE,
    RWLock.SITE_STATE, RWLock.SITE_STATE_READ, RWLock.SITE_WRITERS,
    RWLock.SITE_WRITERS_READ,
})
