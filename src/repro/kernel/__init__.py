"""Simulated operating-system substrate.

The paper's MVEE (ReMon) interposes on the system calls of real Linux
processes via ptrace.  This package provides the equivalent surface for the
reproduction: a small, deterministic virtual kernel per variant, backed by a
shared virtual "disk" so that all variants observe identical program inputs.

Public entry points:

* :class:`repro.kernel.kernel.VirtualKernel` — per-variant kernel state and
  syscall dispatch.
* :class:`repro.kernel.fs.VirtualDisk` — host-side file store shared between
  variants (the common input source / output sink).
* :data:`repro.kernel.syscalls.SYSCALL_TABLE` — the syscall catalogue with
  per-call monitoring classification (ordered / replicated / blocking ...).
"""

from repro.kernel.fs import VirtualDisk, VirtualFile, Pipe
from repro.kernel.fdtable import FDTable, FileDescriptor
from repro.kernel.vmem import AddressSpace, MemoryRegion, Protection
from repro.kernel.vtime import VirtualClock
from repro.kernel.futex import FutexTable
from repro.kernel.net import Network, ListenSocket, ConnSocket
from repro.kernel.syscalls import (
    SYSCALL_TABLE,
    SyscallClass,
    SyscallSpec,
    MVEE_GET_ROLE,
)
from repro.kernel.kernel import VirtualKernel

__all__ = [
    "VirtualKernel",
    "VirtualDisk",
    "VirtualFile",
    "Pipe",
    "FDTable",
    "FileDescriptor",
    "AddressSpace",
    "MemoryRegion",
    "Protection",
    "VirtualClock",
    "FutexTable",
    "Network",
    "ListenSocket",
    "ConnSocket",
    "SYSCALL_TABLE",
    "SyscallClass",
    "SyscallSpec",
    "MVEE_GET_ROLE",
]
