"""Per-variant file-descriptor table.

The kernel assigns the *lowest available* descriptor number to each newly
created descriptor — exactly the behaviour Section 3.1 of the paper calls
out: if two threads race to ``open`` files and the MVEE does not order the
``sys_open`` calls across variants, different FD numbers are handed to
equivalent threads in different variants, and the divergence surfaces later
(printed FDs, subsequent file operations).  Tests exercise this scenario
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SyscallError

#: Well-known descriptors every process starts with.
STDIN_FD = 0
STDOUT_FD = 1
STDERR_FD = 2


@dataclass
class FileDescriptor:
    """An open descriptor: what it refers to plus per-descriptor state."""

    fd: int
    #: One of "file", "pipe_r", "pipe_w", "stream", "listen_sock",
    #: "conn_sock".
    kind: str
    #: The underlying object (VirtualFile, Pipe, stream name, socket, ...).
    obj: Any
    offset: int = 0
    flags: frozenset[str] = field(default_factory=frozenset)

    def clone_for_dup(self, new_fd: int) -> "FileDescriptor":
        """Return a duplicate referring to the same object.

        Real ``dup`` shares the offset through the open file description;
        our guests never rely on shared offsets, so an independent copy is
        a faithful-enough model and keeps the table simple.
        """
        return FileDescriptor(fd=new_fd, kind=self.kind, obj=self.obj,
                              offset=self.offset, flags=self.flags)


class FDTable:
    """Lowest-free-number file-descriptor allocation."""

    def __init__(self):
        self._table: dict[int, FileDescriptor] = {}
        # Standard streams are "stream" descriptors writing to the shared
        # disk's captured output streams.
        self._table[STDIN_FD] = FileDescriptor(STDIN_FD, "stream", "stdin")
        self._table[STDOUT_FD] = FileDescriptor(STDOUT_FD, "stream", "stdout")
        self._table[STDERR_FD] = FileDescriptor(STDERR_FD, "stream", "stderr")

    def lowest_free(self) -> int:
        """Return the smallest unused descriptor number."""
        fd = 0
        while fd in self._table:
            fd += 1
        return fd

    def install(self, kind: str, obj: Any,
                flags: frozenset[str] = frozenset()) -> FileDescriptor:
        """Allocate the lowest free FD and bind it."""
        fd = self.lowest_free()
        entry = FileDescriptor(fd=fd, kind=kind, obj=obj, flags=flags)
        self._table[fd] = entry
        return entry

    def get(self, fd: int) -> FileDescriptor:
        """Look up a descriptor; raises EBADF if closed/unknown."""
        entry = self._table.get(fd)
        if entry is None:
            raise SyscallError(f"bad file descriptor: {fd}",
                               errno_name="EBADF")
        return entry

    def dup(self, fd: int) -> FileDescriptor:
        """POSIX dup: duplicate onto the lowest free descriptor."""
        source = self.get(fd)
        new_fd = self.lowest_free()
        entry = source.clone_for_dup(new_fd)
        self._table[new_fd] = entry
        return entry

    def close(self, fd: int) -> FileDescriptor:
        """Close a descriptor and return the removed entry."""
        entry = self.get(fd)
        del self._table[fd]
        return entry

    def open_fds(self) -> list[int]:
        """All currently open descriptor numbers, sorted."""
        return sorted(self._table)

    def __contains__(self, fd: int) -> bool:
        return fd in self._table

    def __len__(self) -> int:
        return len(self._table)
