"""Virtual filesystem shared by all variants.

The MVEE presents N variants as a single application: all variants must read
the *same* input files, and each output must be performed exactly once
(Section 2 of the paper).  We model this with a single :class:`VirtualDisk`
object shared between the variants' kernels.  Reads are idempotent so every
variant may perform them; writes are applied by whoever the monitor allows
to execute them (the master, under MVEE control) and are visible to all.

Pipes are also defined here; a pipe is private to one variant (it lives in
that variant's kernel) but its *contents* are replicated by the monitor the
same way file I/O results are.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SyscallError


@dataclass
class VirtualFile:
    """A regular file on the shared disk."""

    path: str
    data: bytearray = field(default_factory=bytearray)

    @property
    def size(self) -> int:
        return len(self.data)

    def read_at(self, offset: int, count: int) -> bytes:
        """Read up to ``count`` bytes starting at ``offset``."""
        if offset >= len(self.data):
            return b""
        return bytes(self.data[offset:offset + count])

    def write_at(self, offset: int, payload: bytes) -> int:
        """Write ``payload`` at ``offset``, growing the file if needed."""
        end = offset + len(payload)
        if end > len(self.data):
            self.data.extend(b"\x00" * (end - len(self.data)))
        self.data[offset:end] = payload
        return len(payload)


class VirtualDisk:
    """Host-side file store shared between all variants of an MVEE run.

    The disk also collects *output streams*: stdout/stderr writes are
    appended here once (deduplicated by the monitor), so tests can assert
    on what the "application" printed regardless of how many variants ran.
    """

    def __init__(self):
        self._files: dict[str, VirtualFile] = {}
        #: Output captured from well-known FDs: {"stdout": bytearray, ...}
        self.streams: dict[str, bytearray] = {
            "stdout": bytearray(),
            "stderr": bytearray(),
        }

    # -- file management -------------------------------------------------

    def add_file(self, path: str, data: bytes = b"") -> VirtualFile:
        """Create (or replace) a file with the given contents."""
        vfile = VirtualFile(path=path, data=bytearray(data))
        self._files[path] = vfile
        return vfile

    def lookup(self, path: str) -> VirtualFile | None:
        """Return the file at ``path`` or ``None``."""
        return self._files.get(path)

    def create(self, path: str) -> VirtualFile:
        """O_CREAT semantics: return existing file or create empty one."""
        vfile = self._files.get(path)
        if vfile is None:
            vfile = self.add_file(path)
        return vfile

    def unlink(self, path: str) -> None:
        """Remove a file; raises ENOENT if absent."""
        if path not in self._files:
            raise SyscallError(f"unlink: no such file: {path}",
                               errno_name="ENOENT")
        del self._files[path]

    def exists(self, path: str) -> bool:
        return path in self._files

    def paths(self) -> list[str]:
        """All file paths currently on the disk, sorted."""
        return sorted(self._files)

    # -- output streams ---------------------------------------------------

    def append_stream(self, name: str, payload: bytes) -> None:
        """Record deduplicated output (called once per logical write)."""
        self.streams.setdefault(name, bytearray()).extend(payload)

    def stream_text(self, name: str) -> str:
        """Decode a captured stream as UTF-8 (for test assertions)."""
        return bytes(self.streams.get(name, b"")).decode("utf-8",
                                                         errors="replace")


class Pipe:
    """An in-kernel unidirectional byte channel.

    Readers that find the pipe empty block (the kernel returns a
    ``would_block`` indication and the simulator parks the thread until a
    writer arrives or all write ends close).
    """

    def __init__(self, pipe_id: int):
        self.pipe_id = pipe_id
        self.buffer = bytearray()
        self.read_ends = 1
        self.write_ends = 1

    @property
    def writers_closed(self) -> bool:
        return self.write_ends <= 0

    def write(self, payload: bytes) -> int:
        if self.read_ends <= 0:
            raise SyscallError("write to pipe with no readers (EPIPE)",
                               errno_name="EPIPE")
        self.buffer.extend(payload)
        return len(payload)

    def read(self, count: int) -> bytes | None:
        """Read up to ``count`` bytes; ``None`` means "would block".

        Returns ``b""`` (EOF) once all write ends are closed and the buffer
        is drained.
        """
        if not self.buffer:
            if self.writers_closed:
                return b""
            return None
        taken = bytes(self.buffer[:count])
        del self.buffer[:count]
        return taken
