"""Futex wait queues for one variant.

``sys_futex`` is the one blocking call the paper's syscall-ordering
mechanism must exempt (Section 4.1, footnote 5): the monitor cannot hold a
blocking call inside the ordering critical section because it may never
return.  ReMon therefore treats futex like an I/O operation.  Our monitor
does the same; the futex implementation itself is entirely per-variant.

The simulator (not this class) parks and wakes the actual threads; this
class only tracks, per futex word address, which thread identifiers are
waiting.
"""

from __future__ import annotations


class FutexTable:
    """Per-variant map from futex word address to waiting thread ids."""

    def __init__(self):
        self._waiters: dict[int, list[str]] = {}
        #: Optional :class:`repro.obs.ObsHub`; when set, parking and
        #: waking are reported as ``futex.*`` trace events.
        self.obs = None
        #: Optional :class:`repro.faults.FaultInjector` plus the owning
        #: variant's index; when set, a planned ``drop_wake`` fault can
        #: suppress wakeups (the waiters stay queued — a lost wake).
        self.faults = None
        self.variant = 0
        #: Optional :class:`repro.races.RaceDetector`; a wake with a
        #: known waker is a happens-before edge (waker → each wakee).
        self.races = None
        #: Optional replay sink (recorder or replayer); wake choices on
        #: the master are part of the decision stream.
        self.replay = None
        #: Optional :class:`repro.races.DeadlockDetector`; parking on an
        #: owned word adds a wait-for edge (and may complete a cycle).
        self.deadlocks = None

    def add_waiter(self, addr: int, thread_id: str) -> None:
        """Register ``thread_id`` as blocked on the futex word ``addr``."""
        self._waiters.setdefault(addr, []).append(thread_id)
        if self.obs is not None:
            self.obs.futex_park(thread_id, addr)
        if self.deadlocks is not None:
            self.deadlocks.on_futex_wait(self.variant, thread_id, addr)

    def remove_waiter(self, addr: int, thread_id: str) -> None:
        """Remove a waiter (e.g. on timeout or variant shutdown)."""
        queue = self._waiters.get(addr)
        if queue and thread_id in queue:
            queue.remove(thread_id)
            if not queue:
                del self._waiters[addr]
            if self.deadlocks is not None:
                self.deadlocks.on_futex_unwait(thread_id)

    def wake(self, addr: int, count: int,
             waker: str | None = None) -> list[str]:
        """Dequeue up to ``count`` waiters in FIFO order and return them."""
        queue = self._waiters.get(addr)
        if not queue:
            return []
        if self.faults is not None:
            count = max(count - self.faults.check_drop_wake(self.variant,
                                                            addr), 0)
        woken = queue[:count]
        remaining = queue[count:]
        if remaining:
            self._waiters[addr] = remaining
        else:
            del self._waiters[addr]
        if self.obs is not None:
            self.obs.futex_wake(addr, woken)
        if self.races is not None and waker is not None and woken:
            self.races.on_futex_wake(waker, woken)
        if self.replay is not None:
            self.replay.on_wake(self.variant, addr, woken)
        if self.deadlocks is not None and woken:
            self.deadlocks.on_futex_wake(woken)
        return woken

    def waiters(self, addr: int) -> list[str]:
        """Current waiters on ``addr`` (FIFO order)."""
        return list(self._waiters.get(addr, []))

    def snapshot(self) -> dict:
        """JSON-safe view of the wait queues (checkpoint fingerprints)."""
        return {str(addr): list(queue)
                for addr, queue in sorted(self._waiters.items())}

    def all_waiting_threads(self) -> list[str]:
        """Every thread currently blocked on any futex (for diagnostics)."""
        result = []
        for queue in self._waiters.values():
            result.extend(queue)
        return result
