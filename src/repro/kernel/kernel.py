"""Per-variant virtual kernel: state + syscall execution.

One :class:`VirtualKernel` instance exists per variant (plus one for native
runs).  The kernel owns the variant-private state — address space, FD
table, futex queues, pipes — and executes syscalls against it.  Shared
state (the disk and the network) is passed in and shared across variants,
which is what makes "all variants receive the same inputs" physically true
in the simulation.

The kernel knows its *role*:

* ``"native"`` — a plain run outside any MVEE; everything executes locally.
* ``"master"`` — the leader variant inside an MVEE; wired to the disk's
  output streams and to the network.
* ``"slave"`` — a follower; executes state-establishing calls locally but
  receives I/O results via :meth:`apply_replicated` (Section 2: inputs are
  duplicated to each variant, outputs performed only once).

Blocking calls return a :class:`Blocked` marker instead of a result; the
simulator parks the calling thread on ``Blocked.wait_key`` and either
retries the call when woken (``retry=True``) or delivers
``Blocked.wake_result`` directly (futex-style, ``retry=False``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import SyscallError
from repro.kernel.fdtable import FDTable
from repro.kernel.fs import Pipe, VirtualDisk
from repro.kernel.futex import FutexTable
from repro.kernel.net import (
    WOULD_BLOCK,
    ConnSocket,
    ListenSocket,
    Network,
    accept_wait_key,
    recv_wait_key,
)
from repro.kernel.signals import SignalState
from repro.kernel.vmem import AddressSpace, LayoutBases, Protection
from repro.kernel.vtime import VirtualClock, seconds_to_cycles

#: Conventional negative errno results guests may check for.
ENOENT = -2
EAGAIN = -11
ENOSYS = -38


@dataclass
class Blocked:
    """Marker: the syscall would block.

    ``wait_key`` is the simulator-level key the thread parks on.
    ``retry`` selects re-execution on wake (I/O) vs. direct result delivery
    (futex).  ``timeout_cycles`` (nanosleep) asks for a timed wake.
    """

    wait_key: tuple
    retry: bool = True
    wake_result: Any = None
    timeout_cycles: float | None = None


@dataclass
class ExecRecord:
    """A successful ``execve`` — i.e. a compromise, in the attack demos."""

    path: str
    argv: tuple
    thread_id: str


class VirtualKernel:
    """All variant-private kernel state plus the syscall interpreter."""

    def __init__(self, disk: VirtualDisk, network: Network | None = None,
                 bases: LayoutBases | None = None, role: str = "native",
                 variant_index: int = 0):
        self.disk = disk
        self.network = network
        self.role = role
        self.variant_index = variant_index
        self.addr_space = AddressSpace(bases)
        self.fdt = FDTable()
        self.futexes = FutexTable()
        self.signals = SignalState()
        self.clock = VirtualClock()
        self.pid = 4242  # replicated by the monitor; equal in all variants
        self.exec_log: list[ExecRecord] = []
        #: Threads a just-executed syscall made runnable (futex wakes);
        #: drained by the simulator after each call.
        self.pending_wakeups: list[str] = []
        self._next_pipe_id = 1
        self._sleep_serial = 0

    # -- helpers -------------------------------------------------------------

    @property
    def executes_io(self) -> bool:
        """Whether this kernel performs real I/O (native or master role)."""
        return self.role in ("native", "master")

    def set_role(self, role: str) -> None:
        """Called by the MVEE bootstrap when variants are assigned roles."""
        self.role = role

    # -- dispatch ----------------------------------------------------------

    def execute(self, name: str, args: tuple, thread_id: str):
        """Execute one syscall locally.  Returns a result or ``Blocked``."""
        handler = getattr(self, f"_sys_{name}", None)
        if handler is None:
            # Unknown syscalls: real kernels return -ENOSYS; the monitor
            # may still have intercepted and answered them (MVEE_GET_ROLE).
            return ENOSYS
        return handler(thread_id, *args)

    def apply_replicated(self, name: str, args: tuple, result) -> None:
        """Update slave-local state to mirror a master-executed I/O call."""
        handler = getattr(self, f"_replicate_{name}", None)
        if handler is not None:
            handler(args, result)

    # -- files ---------------------------------------------------------------

    def _sys_open(self, thread_id: str, path: str, mode: str = "r"):
        if mode == "r":
            vfile = self.disk.lookup(path)
            if vfile is None:
                return ENOENT
        else:
            vfile = self.disk.create(path)
        entry = self.fdt.install("file", vfile, flags=frozenset({mode}))
        return entry.fd

    def _sys_close(self, thread_id: str, fd: int):
        entry = self.fdt.close(fd)
        if entry.kind == "pipe_w":
            pipe: Pipe = entry.obj
            pipe.write_ends -= 1
            if pipe.writers_closed:
                # EOF becomes observable; wake blocked readers.
                self.pending_wakeups.append(("key", ("pipe", self.variant_index,
                                                     pipe.pipe_id)))
        elif entry.kind == "pipe_r":
            entry.obj.read_ends -= 1
        elif entry.kind == "conn_sock":
            sock: ConnSocket = entry.obj
            if sock.wired and self.network is not None:
                self.network.server_close(sock.conn_id)
        return 0

    def _sys_read(self, thread_id: str, fd: int, count: int):
        entry = self.fdt.get(fd)
        if entry.kind == "file":
            data = entry.obj.read_at(entry.offset, count)
            entry.offset += len(data)
            return data
        if entry.kind == "stream":
            return b""  # stdin is empty in the simulation
        if entry.kind == "pipe_r":
            pipe: Pipe = entry.obj
            data = pipe.read(count)
            if data is None:
                return Blocked(("pipe", self.variant_index, pipe.pipe_id))
            return data
        if entry.kind == "conn_sock":
            return self._sys_recv(thread_id, fd, count)
        raise SyscallError(f"read on unsupported fd kind {entry.kind}",
                           errno_name="EINVAL")

    def _replicate_read(self, args, result) -> None:
        fd = args[0]
        entry = self.fdt.get(fd)
        if entry.kind == "file" and isinstance(result, bytes):
            entry.offset += len(result)
        elif entry.kind == "pipe_r" and isinstance(result, bytes):
            # Drain the slave-local pipe copy so it does not grow without
            # bound (its contents were mirrored by _replicate_write).
            entry.obj.read(len(result))

    def _sys_write(self, thread_id: str, fd: int, data: bytes):
        entry = self.fdt.get(fd)
        if isinstance(data, str):
            data = data.encode("utf-8")
        if entry.kind == "file":
            written = entry.obj.write_at(entry.offset, data)
            entry.offset += written
            return written
        if entry.kind == "stream":
            self.disk.append_stream(entry.obj, data)
            return len(data)
        if entry.kind == "pipe_w":
            pipe: Pipe = entry.obj
            written = pipe.write(data)
            self.pending_wakeups.append(("key", ("pipe", self.variant_index,
                                                 pipe.pipe_id)))
            return written
        if entry.kind == "conn_sock":
            return self._sys_send(thread_id, fd, data)
        raise SyscallError(f"write on unsupported fd kind {entry.kind}",
                           errno_name="EINVAL")

    def _replicate_write(self, args, result) -> None:
        fd, data = args[0], args[1]
        entry = self.fdt.get(fd)
        if entry.kind == "file" and isinstance(result, int) and result > 0:
            entry.offset += result
        elif entry.kind == "pipe_w":
            # Slave pipes carry real bytes so slave readers see them.
            if isinstance(data, str):
                data = data.encode("utf-8")
            entry.obj.write(data)
            self.pending_wakeups.append(
                ("key", ("pipe", self.variant_index, entry.obj.pipe_id)))

    def _sys_lseek(self, thread_id: str, fd: int, offset: int,
                   whence: str = "set"):
        entry = self.fdt.get(fd)
        if whence == "set":
            entry.offset = offset
        elif whence == "cur":
            entry.offset += offset
        elif whence == "end":
            entry.offset = entry.obj.size + offset
        else:
            raise SyscallError(f"lseek: bad whence {whence!r}",
                               errno_name="EINVAL")
        return entry.offset

    def _sys_stat(self, thread_id: str, path: str):
        vfile = self.disk.lookup(path)
        if vfile is None:
            return ENOENT
        return vfile.size

    def _sys_unlink(self, thread_id: str, path: str):
        self.disk.unlink(path)
        return 0

    def _sys_pipe(self, thread_id: str):
        pipe = Pipe(pipe_id=(self.variant_index << 20) | self._next_pipe_id)
        self._next_pipe_id += 1
        read_end = self.fdt.install("pipe_r", pipe)
        write_end = self.fdt.install("pipe_w", pipe)
        return (read_end.fd, write_end.fd)

    def _sys_dup(self, thread_id: str, fd: int):
        return self.fdt.dup(fd).fd

    # -- memory -----------------------------------------------------------------

    def _sys_brk(self, thread_id: str, new_end: int | None = None):
        return self.addr_space.brk(new_end)

    def _sys_mmap(self, thread_id: str, size: int,
                  prot: Protection = Protection.RW):
        return self.addr_space.mmap(size, prot)

    def _sys_munmap(self, thread_id: str, start: int):
        self.addr_space.munmap(start)
        return 0

    def _sys_mprotect(self, thread_id: str, start: int, prot: Protection):
        self.addr_space.mprotect(start, prot)
        return 0

    # -- threads / time ------------------------------------------------------------

    def _sys_futex_wait(self, thread_id: str, addr: int, expected: int):
        value = self.addr_space.load(addr)
        if value != expected:
            return EAGAIN
        self.futexes.add_waiter(addr, thread_id)
        return Blocked(("futex", self.variant_index, addr), retry=False,
                       wake_result=0)

    def _sys_futex_wake(self, thread_id: str, addr: int, count: int = 1):
        woken = self.futexes.wake(addr, count, waker=thread_id)
        for waiter in woken:
            self.pending_wakeups.append(("thread", waiter))
        return len(woken)

    def _sys_sched_yield(self, thread_id: str):
        return 0

    def _sys_nanosleep(self, thread_id: str, seconds: float):
        self._sleep_serial += 1
        return Blocked(("sleep", self.variant_index, self._sleep_serial),
                       retry=False, wake_result=0,
                       timeout_cycles=seconds_to_cycles(seconds))

    def _sys_getpid(self, thread_id: str):
        return self.pid

    def _sys_gettimeofday(self, thread_id: str):
        return self.clock.gettimeofday()

    def _sys_clock_gettime(self, thread_id: str):
        return self.clock.clock_gettime()

    def _sys_rdtsc(self, thread_id: str):
        return self.clock.rdtsc()

    # -- network --------------------------------------------------------------------

    def _sys_socket(self, thread_id: str):
        entry = self.fdt.install("listen_sock", ListenSocket())
        return entry.fd

    def _sys_bind(self, thread_id: str, fd: int, port: int):
        sock = self._listen_sock(fd)
        sock.port = port
        return 0

    def _sys_listen(self, thread_id: str, fd: int):
        sock = self._listen_sock(fd)
        if sock.port is None:
            raise SyscallError("listen before bind", errno_name="EINVAL")
        if self.executes_io:
            self._net().listen(sock.port)
        sock.listening = True
        return 0

    def _sys_accept(self, thread_id: str, fd: int):
        sock = self._listen_sock(fd)
        if not sock.listening:
            raise SyscallError("accept on non-listening socket",
                               errno_name="EINVAL")
        outcome = self._net().accept(sock.port)
        if outcome is WOULD_BLOCK:
            return Blocked(accept_wait_key(sock.port))
        entry = self.fdt.install("conn_sock",
                                 ConnSocket(conn_id=outcome, wired=True))
        return entry.fd

    def _replicate_accept(self, args, result) -> None:
        # Slave materializes an unwired connection socket; the FD number it
        # allocates is compared against the master's by the monitor.
        self.fdt.install("conn_sock", ConnSocket(conn_id=-1, wired=False))

    def _sys_recv(self, thread_id: str, fd: int, count: int):
        sock = self._conn_sock(fd)
        outcome = self._net().server_recv(sock.conn_id, count)
        if outcome is WOULD_BLOCK:
            return Blocked(recv_wait_key(sock.conn_id))
        return outcome

    def _sys_send(self, thread_id: str, fd: int, data: bytes):
        sock = self._conn_sock(fd)
        if isinstance(data, str):
            data = data.encode("utf-8")
        return self._net().server_send(sock.conn_id, data)

    # -- signals ------------------------------------------------------------------------

    def _sys_kill(self, thread_id: str, sig: int):
        """Send a signal to this process; wakes one sigwait-er if any."""
        woken = self.signals.send(sig)
        if woken is not None:
            self.pending_wakeups.append(("thread", woken))
        return 0

    def _sys_sigwait(self, thread_id: str, sig: int):
        """Block until the given signal arrives (consumes pending)."""
        if self.signals.try_consume(sig):
            return sig
        self.signals.add_waiter(sig, thread_id)
        return Blocked(("signal", self.variant_index, sig), retry=False,
                       wake_result=sig)

    def _sys_sigpending(self, thread_id: str, sig: int):
        """Count of undelivered instances of ``sig``."""
        return self.signals.pending.get(sig, 0)

    # -- process ------------------------------------------------------------------------

    def _sys_execve(self, thread_id: str, path: str, argv: tuple = ()):
        self.exec_log.append(ExecRecord(path=path, argv=tuple(argv),
                                        thread_id=thread_id))
        return 0

    def _sys_exit_group(self, thread_id: str, code: int = 0):
        return ("exit_group", code)  # interpreted by the simulator

    def _sys_mvee_get_role(self, thread_id: str):
        # Reached only outside an MVEE: the real kernel has no such call.
        # Inside an MVEE the monitor intercepts and answers it.
        return ENOSYS

    # -- internals --------------------------------------------------------------------------

    def _net(self) -> Network:
        if self.network is None:
            raise SyscallError("no network attached to this kernel",
                               errno_name="ENETDOWN")
        return self.network

    def _listen_sock(self, fd: int) -> ListenSocket:
        entry = self.fdt.get(fd)
        if entry.kind != "listen_sock":
            raise SyscallError(f"fd {fd} is not a socket",
                               errno_name="ENOTSOCK")
        return entry.obj

    def _conn_sock(self, fd: int) -> ConnSocket:
        entry = self.fdt.get(fd)
        if entry.kind != "conn_sock":
            raise SyscallError(f"fd {fd} is not a connection",
                               errno_name="ENOTCONN")
        return entry.obj
