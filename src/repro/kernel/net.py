"""Simulated network for the nginx use case (Section 5.5).

The paper benchmarks nginx under ReMon with the ``wrk`` load generator
running either on a separate client machine (gigabit link) or on the server
itself (loopback).  We model the network as a host-side object shared by
the whole simulation:

* The *server* side is a guest program inside the MVEE.  Only the master
  variant's kernel is wired to the network; slaves receive replicated
  syscall results exactly as they do for file I/O.
* The *client* side (the wrk analogue) lives outside the MVEE entirely.
  The benchmark harness drives it through :class:`ClientConnection`,
  scheduled as external simulator events with per-message latency that
  models either the LAN or the loopback path.

Blocking semantics: ``accept`` and ``recv`` return the ``WOULD_BLOCK``
sentinel when nothing is pending; the simulator parks the calling thread on
a wait key and the network wakes it when a client injects traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SyscallError

#: Sentinel returned by non-ready blocking network operations.
WOULD_BLOCK = object()


def accept_wait_key(port: int) -> tuple:
    """Simulator wait key for a server blocked in ``accept`` on ``port``."""
    return ("net_accept", port)


def recv_wait_key(conn_id: int) -> tuple:
    """Simulator wait key for a server blocked in ``recv``."""
    return ("net_recv", conn_id)


def client_wait_key(conn_id: int) -> tuple:
    """Simulator wait key for an external client awaiting a response."""
    return ("net_client", conn_id)


@dataclass
class Connection:
    """A bidirectional stream between one client and the server."""

    conn_id: int
    port: int
    to_server: bytearray = field(default_factory=bytearray)
    to_client: bytearray = field(default_factory=bytearray)
    client_closed: bool = False
    server_closed: bool = False


class Network:
    """Shared network state: listening ports and live connections."""

    def __init__(self):
        self._listening: dict[int, list[int]] = {}  # port -> pending conns
        self._connections: dict[int, Connection] = {}
        self._next_conn_id = 1
        # Installed by the simulator: callable(wait_key) that wakes parked
        # threads / external actors registered on that key.
        self._waker = lambda key: None

    def bind_waker(self, waker) -> None:
        """Install the simulator's wake callback."""
        self._waker = waker

    # -- server side (called by the master variant's kernel) --------------

    def listen(self, port: int) -> None:
        """Start accepting connections on ``port``."""
        if port in self._listening:
            raise SyscallError(f"port {port} already bound",
                               errno_name="EADDRINUSE")
        self._listening[port] = []

    def accept(self, port: int):
        """Pop one pending connection, or ``WOULD_BLOCK``."""
        pending = self._listening.get(port)
        if pending is None:
            raise SyscallError(f"accept on non-listening port {port}",
                               errno_name="EINVAL")
        if not pending:
            return WOULD_BLOCK
        return pending.pop(0)

    def server_recv(self, conn_id: int, count: int):
        """Read client bytes; ``WOULD_BLOCK`` if none and still open."""
        conn = self._conn(conn_id)
        if not conn.to_server:
            if conn.client_closed:
                return b""
            return WOULD_BLOCK
        taken = bytes(conn.to_server[:count])
        del conn.to_server[:count]
        return taken

    def server_send(self, conn_id: int, payload: bytes) -> int:
        """Send bytes to the client and wake it."""
        conn = self._conn(conn_id)
        if conn.client_closed:
            raise SyscallError("send on closed connection",
                               errno_name="EPIPE")
        conn.to_client.extend(payload)
        self._waker(client_wait_key(conn_id))
        return len(payload)

    def server_close(self, conn_id: int) -> None:
        """Server side shutdown; wakes a client blocked on the response."""
        conn = self._conn(conn_id)
        conn.server_closed = True
        self._waker(client_wait_key(conn_id))

    # -- client side (called by the benchmark harness / external actors) --

    def client_connect(self, port: int) -> int:
        """Open a new connection to a listening port; wakes ``accept``."""
        if port not in self._listening:
            raise SyscallError(f"connection refused on port {port}",
                               errno_name="ECONNREFUSED")
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        self._connections[conn_id] = Connection(conn_id=conn_id, port=port)
        self._listening[port].append(conn_id)
        self._waker(accept_wait_key(port))
        return conn_id

    def client_send(self, conn_id: int, payload: bytes) -> None:
        """Inject request bytes and wake a server blocked in ``recv``."""
        conn = self._conn(conn_id)
        conn.to_server.extend(payload)
        self._waker(recv_wait_key(conn_id))

    def client_recv(self, conn_id: int):
        """Drain response bytes; ``WOULD_BLOCK`` when none are pending."""
        conn = self._conn(conn_id)
        if not conn.to_client:
            if conn.server_closed:
                return b""
            return WOULD_BLOCK
        taken = bytes(conn.to_client)
        conn.to_client.clear()
        return taken

    def client_close(self, conn_id: int) -> None:
        """Client side shutdown; wakes a server blocked in ``recv``."""
        conn = self._conn(conn_id)
        conn.client_closed = True
        self._waker(recv_wait_key(conn_id))

    # -- shared ------------------------------------------------------------

    def _conn(self, conn_id: int) -> Connection:
        conn = self._connections.get(conn_id)
        if conn is None:
            raise SyscallError(f"unknown connection {conn_id}",
                               errno_name="EBADF")
        return conn

    def connection(self, conn_id: int) -> Connection:
        """Public lookup (for tests and the traffic driver)."""
        return self._conn(conn_id)


@dataclass
class ListenSocket:
    """Per-variant kernel object representing a listening socket."""

    port: int | None = None
    listening: bool = False


@dataclass
class ConnSocket:
    """Per-variant kernel object representing an accepted connection.

    In slave variants the socket exists (so FD numbers line up) but is not
    wired to the shared network; all its I/O results come from replication.
    """

    conn_id: int
    wired: bool = True
