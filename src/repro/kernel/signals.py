"""Virtual POSIX-style signals.

Signals matter to the paper twice:

* Section 6 dismisses barrier-based DMT systems because they are
  "incompatible with parallel programs in which threads deliberately
  wait in an infinite loop for an asynchronous event such as the
  delivery of a signal" — such threads never reach the global barrier.
  Our DMT baseline exhibits exactly that failure on the signal-driven
  workload, while the record/replay agents handle it.
* Real MVEEs must replicate signal delivery so all variants observe the
  same signals at equivalent points; we model the synchronous-wait
  subset (``sigwait``), which the monitor replicates through the same
  per-thread blocking-result stream used for futex (Section 4.1).

The model: per-process pending counters and FIFO waiter queues per
signal number.  ``kill`` targets the process; a pending signal is
consumed by the next ``sigwait``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Conventional numbers for the signals guests use.
SIGHUP = 1
SIGUSR1 = 10
SIGUSR2 = 12
SIGALRM = 14
SIGTERM = 15

SIGNAL_NAMES = {
    SIGHUP: "SIGHUP",
    SIGUSR1: "SIGUSR1",
    SIGUSR2: "SIGUSR2",
    SIGALRM: "SIGALRM",
    SIGTERM: "SIGTERM",
}


@dataclass
class SignalState:
    """Per-variant signal bookkeeping."""

    #: signal -> undelivered count (no waiter was present at send time).
    pending: dict[int, int] = field(default_factory=dict)
    #: signal -> FIFO of blocked sigwait-ing thread ids.
    waiters: dict[int, list[str]] = field(default_factory=dict)
    #: total signals ever sent, per signal (for tests/stats).
    sent: dict[int, int] = field(default_factory=dict)

    def send(self, sig: int) -> str | None:
        """Deliver one signal; returns the woken thread id, if any."""
        self.sent[sig] = self.sent.get(sig, 0) + 1
        queue = self.waiters.get(sig)
        if queue:
            return queue.pop(0)
        self.pending[sig] = self.pending.get(sig, 0) + 1
        return None

    def try_consume(self, sig: int) -> bool:
        """Consume a pending signal without blocking, if one exists."""
        count = self.pending.get(sig, 0)
        if count > 0:
            self.pending[sig] = count - 1
            return True
        return False

    def add_waiter(self, sig: int, thread_id: str) -> None:
        self.waiters.setdefault(sig, []).append(thread_id)

    def remove_waiter(self, sig: int, thread_id: str) -> None:
        queue = self.waiters.get(sig)
        if queue and thread_id in queue:
            queue.remove(thread_id)

    def waiting_threads(self) -> list[str]:
        return [tid for queue in self.waiters.values() for tid in queue]
