"""System call catalogue and monitoring classification.

Every syscall the virtual kernel implements is described by a
:class:`SyscallSpec` that tells the MVEE monitor how to treat it.  The
classification implements Sections 2, 3.1 and 4.1 of the paper:

* ``ordered`` — the call operates on shared resources whose results depend
  on cross-thread ordering (FD numbers, heap/mapping addresses).  The
  monitor runs these through the Lamport syscall-ordering clock so all
  variants execute related calls in the same order (Section 4.1).
* ``replicated`` — an I/O call: only the master variant performs the real
  operation and the monitor copies the result to the slaves (Section 2).
  Replicated blocking calls are exempt from ordering, exactly as the paper
  describes ("we cannot order blocking system calls ... I/O operations are
  only executed by the master variant").
* ``blocking`` — the call may park the calling thread (futex, accept, pipe
  reads, ...).  Blocking calls never enter the ordering critical section.
* ``sensitive`` — security-sensitive: under the relaxed monitoring policy
  only these are cross-checked in lockstep.
* ``address_result`` — the result is an address-space value that legally
  differs across diversified variants (mmap/brk); the monitor must not
  compare it raw.

The table also contains ``MVEE_GET_ROLE``, the paper's "self-awareness"
pseudo-syscall (Section 4.5): it does not exist in the kernel, but because
unknown syscalls are still reported to the monitor, the monitor can answer
it — telling the agent whether it should record (master) or replay (slave).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SyscallClass(enum.Enum):
    """Who executes the call."""

    #: Every variant executes the call against its own kernel (state
    #: establishing calls: open, mmap, futex, ...).
    EXECUTE_ALL = "execute_all"
    #: Only the master executes; the monitor replicates the result and asks
    #: slave kernels to apply equivalent state updates (I/O calls).
    MASTER_ONLY = "master_only"


@dataclass(frozen=True)
class SyscallSpec:
    """Static description of one system call."""

    name: str
    cls: SyscallClass
    ordered: bool = False
    blocking: bool = False
    sensitive: bool = False
    #: Result legitimately differs across diversified variants (addresses).
    address_result: bool = False
    #: Argument positions holding pointers; compared by pointed-to content
    #: (already materialized in our events), never by raw address value.
    address_args: tuple[int, ...] = field(default=())
    #: Excluded from monitoring entirely (sched_yield and similar noise).
    unmonitored: bool = False
    #: Blocking calls replicated through a per-thread result stream
    #: (Section 4.1 footnote: futex is "treated as an I/O operation").
    #: The master executes locally (and may sleep); slaves never execute —
    #: they consume the master's result for their thread's k-th such call.
    #: No rendezvous, no ordering, no argument comparison: the call counts
    #: are implied by the replayed sync-op results, and slaves must never
    #: actually sleep in a futex (an arbitrary slave-side FIFO wake could
    #: rouse a thread whose replay turn has not come, deadlocking replay).
    stream_replicated: bool = False

    @property
    def replicated(self) -> bool:
        return self.cls is SyscallClass.MASTER_ONLY


#: Syscall number of the self-awareness pseudo-call (any unused number).
MVEE_GET_ROLE = "mvee_get_role"


def _spec(name, cls, **kwargs) -> SyscallSpec:
    return SyscallSpec(name=name, cls=cls, **kwargs)


_ALL = SyscallClass.EXECUTE_ALL
_MASTER = SyscallClass.MASTER_ONLY

SYSCALL_TABLE: dict[str, SyscallSpec] = {
    spec.name: spec for spec in [
        # -- files ---------------------------------------------------------
        _spec("open", _ALL, ordered=True, sensitive=True),
        _spec("close", _ALL, ordered=True),
        _spec("read", _MASTER, blocking=True),
        _spec("write", _MASTER, sensitive=True),
        _spec("lseek", _ALL),
        _spec("stat", _MASTER),
        _spec("unlink", _MASTER, ordered=True, sensitive=True),
        _spec("pipe", _ALL, ordered=True),
        _spec("dup", _ALL, ordered=True),
        # -- memory ----------------------------------------------------------
        _spec("brk", _ALL, ordered=True, address_result=True,
              address_args=(0,)),
        _spec("mmap", _ALL, ordered=True, address_result=True),
        _spec("munmap", _ALL, ordered=True, address_args=(0,)),
        _spec("mprotect", _ALL, ordered=True, sensitive=True,
              address_args=(0,)),
        # -- threads / scheduling ---------------------------------------------
        _spec("clone", _ALL, ordered=True, sensitive=True),
        # Futex is the paper's explicit exemption (Section 4.1 footnote):
        # a blocking call that cannot sit in the ordering critical section.
        # It is treated as an I/O operation: executed by the master only,
        # results streamed to the slaves per thread.
        _spec("futex_wait", _MASTER, blocking=True, address_args=(0,),
              stream_replicated=True),
        _spec("futex_wake", _MASTER, address_args=(0,),
              stream_replicated=True),
        _spec("sched_yield", _ALL, unmonitored=True),
        _spec("nanosleep", _MASTER, blocking=True, stream_replicated=True),
        # -- signals: kill is cross-checked and executed everywhere (each
        # variant delivers to its own threads); sigwait blocks like futex
        # and is replicated through the per-thread stream so slaves never
        # sleep waiting for a slave-local delivery.
        _spec("kill", _ALL, sensitive=True),
        _spec("sigwait", _MASTER, blocking=True, stream_replicated=True),
        _spec("sigpending", _MASTER),
        # -- identity / time ---------------------------------------------------
        _spec("getpid", _MASTER),
        _spec("gettimeofday", _MASTER),
        _spec("clock_gettime", _MASTER),
        _spec("rdtsc", _MASTER),  # an instruction, but replicated like one
        # -- network -----------------------------------------------------------
        _spec("socket", _ALL, ordered=True, sensitive=True),
        _spec("bind", _ALL, ordered=True, sensitive=True),
        _spec("listen", _ALL, ordered=True, sensitive=True),
        _spec("accept", _MASTER, blocking=True, sensitive=True),
        _spec("recv", _MASTER, blocking=True),
        _spec("send", _MASTER, sensitive=True),
        # -- process ------------------------------------------------------------
        _spec("execve", _ALL, sensitive=True),
        _spec("exit_group", _ALL, sensitive=True),
        # -- MVEE pseudo-syscall --------------------------------------------------
        # Monitored so the MVEE can answer it (a native kernel returns
        # -ENOSYS; "non-existing system calls are still reported to the
        # MVEE's monitor", Section 4.5).
        _spec(MVEE_GET_ROLE, _ALL),
    ]
}


#: Frozen specs synthesized for names outside the table, memoized so
#: repeated interception of the same unknown call reuses one object
#: instead of constructing a fresh spec per lookup (a hot-path cost:
#: ``spec_for`` runs several times per monitored syscall).
_UNKNOWN_SPEC_CACHE: dict[str, SyscallSpec] = {}


def _unknown_spec(name: str) -> SyscallSpec:
    spec = SyscallSpec(name=name, cls=SyscallClass.EXECUTE_ALL,
                       sensitive=True)
    _UNKNOWN_SPEC_CACHE[name] = spec
    return spec


def spec_for(name: str) -> SyscallSpec:
    """Look up a syscall spec; unknown calls get a strict default.

    Unknown syscalls are reported to the monitor (like real ptrace-based
    MVEEs see unknown syscall numbers) and treated as sensitive
    execute-all calls, which is the conservative choice.
    """
    spec = SYSCALL_TABLE.get(name)
    if spec is not None:
        return spec
    spec = _UNKNOWN_SPEC_CACHE.get(name)
    if spec is not None:
        return spec
    return _unknown_spec(name)
