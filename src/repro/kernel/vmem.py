"""Per-variant virtual address space.

Two properties of real address spaces matter for the paper and are modelled
here:

* **Addresses are variant-specific.**  Under ASLR / diversified layouts the
  same logical variable lives at a different address in every variant
  (Section 3.3).  The synchronization agents must therefore work without an
  explicit master-to-slave address map — they rely on the *n-th sync op of a
  thread* correspondence instead (Section 4.5.1).  The address space hands
  out addresses from diversified region bases so this is exercised for real.
* **Memory syscalls have ordering-sensitive results.**  ``brk`` grows a
  linear heap; ``mmap`` assigns the lowest free region slot.  If two threads
  race on these calls and the MVEE does not order them, variants end up with
  different address-space layouts — the memory-allocator hazard of
  Section 3.1 / 4.3 (glibc malloc's internal locks protect exactly this).

Data memory is word-granular: a ``dict`` from address to Python integer.
Guest programs only access memory through the simulator's atomic ops or
through plain loads/stores between scheduling points, which is sufficient
for the data-race-free programs the paper targets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import MemoryFault, SyscallError

#: Size of one simulated page.
PAGE_SIZE = 4096

#: Word size; sync variables are 4 or 8 bytes in the paper's x86 target.
WORD_SIZE = 8


class Protection(enum.Flag):
    """Page protection bits (subset of PROT_*)."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXEC = enum.auto()
    RW = READ | WRITE
    RX = READ | EXEC


@dataclass
class MemoryRegion:
    """A contiguous mapped region."""

    start: int
    size: int
    prot: Protection
    tag: str = "anon"

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end


def page_align_up(value: int) -> int:
    """Round ``value`` up to the next page boundary."""
    return (value + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE


@dataclass
class LayoutBases:
    """Diversified base addresses for the canonical regions.

    The defaults correspond to a non-ASLR layout; ``repro.diversity.aslr``
    produces randomized instances per variant.
    """

    code_base: int = 0x0040_0000
    static_base: int = 0x0060_0000
    heap_base: int = 0x0080_0000
    mmap_base: int = 0x7F00_0000_0000
    stack_base: int = 0x7FFF_F000_0000


class AddressSpace:
    """Mapped regions, the brk heap, and word-granular data memory."""

    def __init__(self, bases: LayoutBases | None = None):
        self.bases = bases or LayoutBases()
        self.regions: list[MemoryRegion] = []
        self._memory: dict[int, int] = {}
        # Code and static-data regions exist from "process start".
        self._map(self.bases.code_base, 16 * PAGE_SIZE, Protection.RX, "code")
        self.static_region = self._map(self.bases.static_base,
                                       64 * PAGE_SIZE, Protection.RW, "data")
        self._static_cursor = self.bases.static_base
        # brk heap: starts empty, grows linearly.
        self.brk_start = self.bases.heap_base
        self.brk_current = self.bases.heap_base
        self.heap_region = self._map(self.brk_start, 0, Protection.RW, "heap")
        # mmap allocation cursor (grows upward from mmap_base).
        self._mmap_cursor = self.bases.mmap_base

    # -- region management -------------------------------------------------

    def _map(self, start: int, size: int, prot: Protection,
             tag: str) -> MemoryRegion:
        region = MemoryRegion(start=start, size=size, prot=prot, tag=tag)
        self.regions.append(region)
        return region

    def region_at(self, addr: int) -> MemoryRegion | None:
        """Find the region containing ``addr``, if any."""
        for region in self.regions:
            if region.contains(addr):
                return region
        return None

    # -- syscall backends ---------------------------------------------------

    def brk(self, new_end: int | None) -> int:
        """Move the program break; ``None`` or 0 queries the current break."""
        if not new_end:
            return self.brk_current
        if new_end < self.brk_start:
            raise SyscallError("brk below heap start", errno_name="ENOMEM")
        self.brk_current = new_end
        self.heap_region.size = page_align_up(new_end - self.brk_start)
        return self.brk_current

    def mmap(self, size: int, prot: Protection = Protection.RW,
             tag: str = "mmap") -> int:
        """Map an anonymous region at the lowest free mmap slot."""
        if size <= 0:
            raise SyscallError("mmap with non-positive size",
                               errno_name="EINVAL")
        size = page_align_up(size)
        start = self._mmap_cursor
        self._mmap_cursor += size + PAGE_SIZE  # guard page gap
        self._map(start, size, prot, tag)
        return start

    def munmap(self, start: int) -> None:
        """Unmap the region starting exactly at ``start``."""
        for index, region in enumerate(self.regions):
            if region.start == start and region.tag not in ("code", "data",
                                                            "heap"):
                del self.regions[index]
                return
        raise SyscallError(f"munmap: no region at {start:#x}",
                           errno_name="EINVAL")

    def mprotect(self, start: int, prot: Protection) -> None:
        """Change protection of the region starting at ``start``."""
        region = self.region_at(start)
        if region is None:
            raise SyscallError(f"mprotect: unmapped address {start:#x}",
                               errno_name="ENOMEM")
        region.prot = prot

    # -- static and heap allocation -----------------------------------------

    def alloc_static(self, size: int = WORD_SIZE,
                     align: int = WORD_SIZE) -> int:
        """Allocate static (global) storage; used for program globals.

        Statics are allocated in program-declaration order, so the k-th
        static of every variant is the same logical variable even though
        its address differs under diversified bases.
        """
        cursor = (self._static_cursor + align - 1) // align * align
        if cursor + size > self.static_region.end:
            raise MemoryFault("static region exhausted")
        self._static_cursor = cursor + size
        return cursor

    # -- data access ----------------------------------------------------------

    def _check(self, addr: int, need: Protection) -> None:
        region = self.region_at(addr)
        if region is None:
            raise MemoryFault(f"access to unmapped address {addr:#x}")
        if not region.prot & need:
            raise MemoryFault(
                f"protection violation at {addr:#x}: "
                f"page is {region.prot}, need {need}")

    def load(self, addr: int) -> int:
        """Read the word at ``addr`` (0 if never written)."""
        self._check(addr, Protection.READ)
        return self._memory.get(addr, 0)

    def store(self, addr: int, value: int) -> None:
        """Write the word at ``addr``."""
        self._check(addr, Protection.WRITE)
        self._memory[addr] = value

    def peek(self, addr: int) -> int:
        """Debug read without protection checks (monitor-side use only)."""
        return self._memory.get(addr, 0)

    def snapshot(self) -> dict[int, int]:
        """Copy of all written words (for test assertions)."""
        return dict(self._memory)
