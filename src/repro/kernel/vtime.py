"""Virtual time for the simulated machine.

All timing in the reproduction is *simulated*: the discrete-event simulator
advances a global clock measured in cycles, and the kernel converts cycles
to seconds using a fixed frequency.  This keeps every run deterministic,
which matters for two reasons:

* the performance evaluation (Table 1 / Figure 5) must be reproducible, and
* the ``gettimeofday``/``rdtsc`` covert channel of Section 5.4 relies on
  data-dependent *time deltas* being replicated from the master variant to
  the slaves — the deltas must be an honest function of simulated execution
  so that the proof-of-concept genuinely decodes the transmitted bits.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Simulated CPU frequency.  The paper's Xeon E5-2660 runs at 2.2 GHz; we use
#: a round 1 GHz so that 1 cycle == 1 ns, which makes traces easy to read.
CYCLES_PER_SECOND = 1_000_000_000


def cycles_to_seconds(cycles: float) -> float:
    """Convert a simulated cycle count to simulated seconds."""
    return cycles / CYCLES_PER_SECOND


def seconds_to_cycles(seconds: float) -> float:
    """Convert simulated seconds to simulated cycles."""
    return seconds * CYCLES_PER_SECOND


@dataclass
class VirtualClock:
    """A view of simulated time as seen through kernel time syscalls.

    The clock itself does not advance; it reads the machine's global
    simulated time through a callback installed by the simulator.  A fixed
    ``epoch`` offset makes ``gettimeofday`` return plausible wall-clock
    values instead of values near zero.
    """

    #: Seconds added to the simulated time for wall-clock realism.
    epoch: float = 1_490_000_000.0  # late March 2017, the paper's conference

    def __post_init__(self):
        self._now_cycles = lambda: 0.0

    def bind(self, now_cycles_fn) -> None:
        """Install the simulator callback returning current cycles."""
        self._now_cycles = now_cycles_fn

    def now_cycles(self) -> float:
        """Current simulated time in cycles."""
        return self._now_cycles()

    def gettimeofday(self) -> tuple[int, int]:
        """Return ``(seconds, microseconds)`` like the real syscall."""
        total = self.epoch + cycles_to_seconds(self._now_cycles())
        seconds = int(total)
        microseconds = int(round((total - seconds) * 1_000_000))
        return seconds, microseconds

    def clock_gettime(self) -> tuple[int, int]:
        """Return ``(seconds, nanoseconds)`` of the monotonic clock."""
        total = cycles_to_seconds(self._now_cycles())
        seconds = int(total)
        nanoseconds = int(round((total - seconds) * 1_000_000_000))
        return seconds, nanoseconds

    def rdtsc(self) -> int:
        """Return the simulated time-stamp counter (integer cycles)."""
        return int(self._now_cycles())
