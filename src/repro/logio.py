"""Shared JSON-lines I/O with torn-tail tolerance.

Two subsystems persist append-only JSONL and must survive the same
failure: a crash mid-``write`` leaves a *torn tail* — a final line that
is a prefix of a record (or a line with no trailing newline at all).
The serve registry journal (:mod:`repro.serve.registry`) and the replay
:class:`~repro.replay.log.DecisionLog` both recover from such files, so
the truncated-line handling lives here, once.

Semantics
---------
:func:`read_jsonl` parses every line of ``path``:

* A final line that fails to decode — or decodes but was never
  newline-terminated — is the torn tail: it is dropped (never trusted)
  and flagged via :attr:`JsonlPage.torn_tail`.
* An *interior* line that fails to decode is corruption, not a torn
  write.  ``on_bad="skip"`` (journal semantics: one bad entry must not
  take down recovery) counts and skips it; ``on_bad="error"`` (decision
  log semantics: a log with a hole cannot replay) raises
  :class:`JsonlCorruption` naming the line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ReproError


class JsonlCorruption(ReproError):
    """An interior JSONL line failed to decode under ``on_bad="error"``."""


@dataclass
class JsonlPage:
    """The readable prefix of a JSONL file."""

    records: list = field(default_factory=list)
    #: Interior undecodable lines skipped (``on_bad="skip"`` only).
    skipped: int = 0
    #: True when the final line was dropped as a torn (partial) write.
    torn_tail: bool = False


def read_jsonl(path: str, on_bad: str = "skip") -> JsonlPage:
    """Read ``path`` tolerating a torn final record; see module docs."""
    if on_bad not in ("skip", "error"):
        raise ValueError(f"unknown on_bad mode {on_bad!r}")
    try:
        with open(path, "r") as handle:
            text = handle.read()
    except OSError as exc:
        raise ReproError(f"cannot read JSONL file {path!r}: "
                         f"{exc.strerror or exc}") from exc
    page = JsonlPage()
    if not text:
        return page
    complete = text.endswith("\n")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    last = len(lines) - 1
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        is_tail = index == last
        try:
            record = json.loads(line)
        except ValueError:
            if is_tail:
                # Torn write from a crash: drop it, flag it.
                page.torn_tail = True
                continue
            if on_bad == "error":
                raise JsonlCorruption(
                    f"{path}: line {index + 1} is not valid JSON "
                    "(interior corruption, not a torn tail)") from None
            page.skipped += 1
            continue
        if is_tail and not complete:
            # Decodable but never newline-terminated: still a partial
            # write (the full record may have had more bytes).
            page.torn_tail = True
            continue
        page.records.append(record)
    return page


def append_jsonl(handle, record) -> None:
    """Write one record as a canonical JSONL line to an open handle."""
    handle.write(json.dumps(record, sort_keys=True,
                            separators=(",", ":")))
    handle.write("\n")
