"""``repro.obs`` — structured tracing, metrics, and divergence forensics.

The simulator's hot paths carry *hook points*: one-line calls into an
:class:`ObsHub` guarded by ``obs is not None``.  Without a hub attached
(the default) every hook is a single attribute test and the run is
observationally identical to the seed simulator; with a hub attached,
each hook feeds

* the **tracer** (:mod:`repro.obs.tracer`) — spans/instants keyed by
  (variant, logical thread), exportable to Chrome ``trace_event`` JSON
  for Perfetto or to JSONL;
* the **metrics registry** (:mod:`repro.obs.metrics`) — counters,
  gauges, and histograms with deterministic snapshots;
* the **forensics rings** (:mod:`repro.obs.forensics`) — bounded
  per-variant event tails captured into a divergence bundle when the
  monitor kills the run.

Wiring happens in :class:`repro.core.mvee.MVEE` (pass ``obs=ObsHub()``)
and in the CLI (``--trace-out`` / ``--metrics``); hub methods never
charge simulated cycles, so enabling observability does not perturb the
simulated timeline — a property the test suite pins down.
"""

from __future__ import annotations

from repro.obs.forensics import (
    DivergenceBundle,
    bundle_to_chrome,
    capture_bundle,
    diff_tails,
    summarize_bundle,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, TraceEvent, Tracer

__all__ = [
    "ObsHub",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DivergenceBundle",
    "capture_bundle",
    "diff_tails",
    "summarize_bundle",
    "bundle_to_chrome",
]


def _variant_of(thread_global: str) -> int:
    """Variant index from a global thread id (``"v0:main/1"`` -> 0)."""
    try:
        return int(thread_global[1:thread_global.index(":")])
    except (ValueError, IndexError):  # pragma: no cover - defensive
        return -1


class ObsHub:
    """One observability session: tracer + metrics + forensic state.

    Every method here is a *hook target*: the simulator, monitor,
    agents, and kernel call them from their hot paths when (and only
    when) a hub is attached.  The hub translates each occurrence into
    trace events and metric updates; it holds whatever cross-call state
    that requires (e.g. rendezvous first-arrival timestamps) so the
    instrumented components stay stateless about observability.
    """

    def __init__(self, trace: bool = True, ring_size: int | None = None,
                 profile: bool = False, lag_sample_every: int = 1):
        from repro.obs.tracer import DEFAULT_RING_SIZE

        self.tracer = (Tracer(ring_size=ring_size or DEFAULT_RING_SIZE)
                       if trace else NULL_TRACER)
        self.metrics = MetricsRegistry()
        self._clock = None
        #: Optional cycle profiler (see :mod:`repro.prof.accounting`).
        self.prof = None
        if profile:
            from repro.prof.accounting import CycleProfiler

            self.attach_profiler(
                CycleProfiler(lag_sample_every=lag_sample_every))
        #: rendezvous key -> (first-arrival ts, arrival count).
        self._rdv_first: dict = {}
        self.divergence_report = None
        #: Injected-fault records (dicts), in injection order.
        self.fault_log: list[dict] = []
        #: Recovery actions (watchdog fires, quarantines, restarts).
        self.recovery_log: list[dict] = []
        #: Races reported by an attached detector (dicts, in order).
        self.race_log: list[dict] = []
        #: Wait-for cycles reported by an attached deadlock detector.
        #: Deliberately NOT part of :meth:`digest`'s payload (the keys
        #: there are frozen by the golden-digest pins); a detected cycle
        #: still moves the digest through the ``deadlocks.detected``
        #: counter, and a clean run's digest is unchanged.
        self.deadlock_log: list[dict] = []

    def attach_profiler(self, prof) -> None:
        """Attach a :class:`repro.prof.accounting.CycleProfiler`."""
        self.prof = prof
        if self._clock is not None:
            prof.bind_clock(self._clock)

    def bind_clock(self, clock) -> None:
        """Attach the machine's simulated clock (``lambda: machine.now``)."""
        self.tracer.bind_clock(clock)
        self._clock = clock
        if self.prof is not None:
            self.prof.bind_clock(clock)

    @property
    def now(self) -> float:
        return self.tracer.now

    def digest(self) -> str:
        """Canonical digest of everything the hub observed.

        Covers the metrics snapshot and the fault/recovery/race logs —
        all simulated quantities, so two runs of the same configuration
        produce the same digest regardless of host, worker count, or
        whether the run was driven in one shot or in step batches.
        ``repro.serve`` uses this to prove a served session is
        byte-identical to the equivalent single-shot ``repro run``.
        """
        import hashlib
        import json

        payload = {
            "metrics": self.metrics.snapshot(),
            "faults": self.fault_log,
            "recovery": self.recovery_log,
            "races": self.race_log,
        }
        blob = json.dumps(payload, sort_keys=True, default=repr)
        return "sha256:" + hashlib.sha256(blob.encode()).hexdigest()

    # -- monitor hooks -------------------------------------------------------

    def monitored_call(self, variant: int, thread: str, name: str,
                       call_class: str, seq: int) -> None:
        """First arrival of one variant's thread at a monitored call."""
        self.metrics.counter("monitor.calls").inc()
        self.metrics.counter(f"monitor.calls.class.{call_class}").inc()
        self.metrics.counter(f"monitor.calls.name.{name}").inc()
        self.tracer.instant(name, variant, thread, cat="call",
                            args={"seq": seq, "class": call_class})

    def rendezvous_arrive(self, rdv_key, variant: int,
                          thread: str) -> None:
        """A variant registered at a lockstep rendezvous."""
        self.metrics.counter("monitor.rendezvous.arrivals").inc()
        now = self.now
        if rdv_key not in self._rdv_first:
            self._rdv_first[rdv_key] = now
        self.tracer.instant("rdv.arrive", variant, thread, cat="rdv",
                            args={"seq": rdv_key[1]})

    def rendezvous_complete(self, rdv_key, variant: int, thread: str,
                            matched: bool) -> None:
        """The last variant arrived; the rendezvous was compared."""
        first = self._rdv_first.pop(rdv_key, self.now)
        latency = self.now - first
        self.metrics.counter("monitor.rendezvous.completed").inc()
        self.metrics.histogram(
            "monitor.rendezvous.latency_cycles").observe(latency)
        self.tracer.complete("rdv.wait", variant, thread, ts=first,
                             dur=latency, cat="rdv",
                             args={"seq": rdv_key[1],
                                   "matched": matched})
        if not matched:
            self.metrics.counter("monitor.rendezvous.mismatches").inc()

    def clock_tick(self, variant: int, thread: str, time: int) -> None:
        """The master stamped the §4.1 syscall-ordering clock."""
        self.metrics.counter("monitor.order.ticks").inc()
        self.tracer.instant("clock.tick", variant, thread, cat="clock",
                            args={"time": time})

    def clock_stall(self, variant: int, thread: str, wait_key) -> None:
        """A §4.1 ordering-clock check parked the thread."""
        kind = wait_key[0] if wait_key else "order"
        self.metrics.counter("monitor.order.stalls").inc()
        self.metrics.counter(f"monitor.order.stalls.{kind}").inc()
        self.tracer.instant("clock.stall", variant, thread, cat="clock",
                            args={"kind": kind})

    def stream_publish(self, variant: int, thread: str,
                       index: int) -> None:
        """The master published a blocking-call stream result."""
        self.metrics.counter("monitor.stream.published").inc()
        self.tracer.instant("stream.publish", variant, thread,
                            cat="stream", args={"index": index})

    def stream_wait(self, variant: int, thread: str, index: int) -> None:
        """A slave stalled waiting for a stream result."""
        self.metrics.counter("monitor.stream.waits").inc()
        self.tracer.instant("stream.wait", variant, thread,
                            cat="stream", args={"index": index})

    # -- machine hooks -------------------------------------------------------

    def thread_created(self, variant: int, thread_global: str,
                       thread: str) -> None:
        """The machine admitted a new guest thread (profiler-only hook:
        per-step bookkeeping is too hot for tracing/metrics)."""
        if self.prof is not None:
            self.prof.thread_created(variant, thread_global, thread)

    def step_committed(self, variant: int, thread_global: str,
                       thread: str, kind: str, duration: float) -> None:
        """The machine committed one executed step (profiler-only)."""
        if self.prof is not None:
            self.prof.step_committed(variant, thread_global, thread,
                                     kind, duration)

    def thread_finished(self, variant: int, thread_global: str,
                        thread: str) -> None:
        """A guest thread ran to completion (profiler-only)."""
        if self.prof is not None:
            self.prof.thread_finished(variant, thread_global, thread)

    def sched_grant(self, variant: int, thread: str) -> None:
        """The scheduler granted a core to a thread."""
        self.metrics.counter("sched.grants").inc()
        self.tracer.instant("sched.grant", variant, thread, cat="sched")
        if self.prof is not None:
            self.prof.sched_grant(variant, thread)

    def park(self, variant: int, thread_global: str, thread: str,
             wait_key) -> None:
        """A thread blocked on a wait key; opens a wait span."""
        kind = wait_key[0] if wait_key else "?"
        self.metrics.counter("machine.parks").inc()
        self.metrics.counter(f"machine.parks.{kind}").inc()
        self.tracer.begin_span(("park", thread_global),
                               f"wait:{kind}", variant, thread,
                               cat="wait")
        if self.prof is not None:
            self.prof.park(variant, thread, wait_key)

    def unpark(self, variant: int, thread_global: str,
               thread: str) -> None:
        """A parked thread became runnable; closes its wait span."""
        dur = self.tracer.end_span(("park", thread_global))
        self.metrics.histogram("machine.park_cycles").observe(dur)
        if self.prof is not None:
            self.prof.unpark(variant, thread)

    def divergence(self, report) -> None:
        """The monitor killed the run."""
        self.divergence_report = report
        kind = getattr(getattr(report, "kind", None), "value", "unknown")
        self.metrics.counter("divergence.total").inc()
        self.metrics.counter(f"divergence.kind.{kind}").inc()
        self.tracer.instant("divergence", 0,
                            getattr(report, "thread", ""),
                            cat="divergence", args={"kind": kind})

    # -- fault / resilience hooks --------------------------------------------

    def fault_injected(self, kind: str, variant: int, thread: str,
                       site: str, detail: str) -> None:
        """The fault injector fired one planned fault."""
        self.fault_log.append({"kind": kind, "variant": variant,
                               "thread": thread, "site": site,
                               "detail": detail, "at_cycles": self.now})
        self.metrics.counter("faults.injected").inc()
        self.metrics.counter(f"faults.injected.{kind}").inc()
        self.tracer.instant(f"fault.{kind}", variant, thread,
                            cat="fault", args={"site": site,
                                               "detail": detail})

    def watchdog_timeout(self, thread: str, seq: int,
                         missing: list) -> None:
        """The lockstep watchdog condemned variants that never arrived."""
        self.recovery_log.append({"action": "watchdog_timeout",
                                  "thread": thread, "seq": seq,
                                  "variants": list(missing),
                                  "at_cycles": self.now})
        self.metrics.counter("resilience.watchdog_timeouts").inc()
        self.tracer.instant("watchdog.timeout", 0, thread,
                            cat="resilience",
                            args={"seq": seq, "missing": list(missing)})

    def variant_quarantined(self, variant: int, kind: str, thread: str,
                            seq: int) -> None:
        """The monitor demoted one variant and kept the rest running."""
        self.recovery_log.append({"action": "quarantine",
                                  "variant": variant, "kind": kind,
                                  "thread": thread, "seq": seq,
                                  "at_cycles": self.now})
        self.metrics.counter("resilience.quarantines").inc()
        self.metrics.counter(f"resilience.quarantines.{kind}").inc()
        self.tracer.instant("quarantine", variant, thread,
                            cat="resilience",
                            args={"kind": kind, "seq": seq})

    def variant_restarted(self, variant: int) -> None:
        """A quarantined variant was rebuilt and re-admitted."""
        self.recovery_log.append({"action": "restart",
                                  "variant": variant,
                                  "at_cycles": self.now})
        self.metrics.counter("resilience.restarts").inc()
        self.tracer.instant("restart", variant, "main",
                            cat="resilience", args={})
        if self.prof is not None:
            self.prof.variant_restarted(variant)

    def variant_caught_up(self, variant: int) -> None:
        """A restarted variant drained the master history and went live."""
        self.recovery_log.append({"action": "caught_up",
                                  "variant": variant,
                                  "at_cycles": self.now})
        self.metrics.counter("resilience.caught_up").inc()
        self.tracer.instant("caught_up", variant, "main",
                            cat="resilience", args={})
        if self.prof is not None:
            self.prof.variant_caught_up(variant)

    # -- replay / checkpoint hooks -------------------------------------------
    # Tracer-only by design: the digest() payload (metrics + logs) must
    # not move when recording or checkpointing is enabled, so a recorded
    # run can prove itself identical to an unrecorded one.

    def checkpoint_taken(self, index: int, at_cycles: float,
                         decisions: int | None) -> None:
        """The checkpointer snapshotted machine state."""
        self.tracer.instant("checkpoint", 0, "main", cat="replay",
                            args={"index": index,
                                  "at_cycles": at_cycles,
                                  "decisions": decisions})

    def replay_diverged(self, step: int, index: int) -> None:
        """A replayed run left its recorded decision stream."""
        self.tracer.instant("replay.diverged", 0, "main", cat="replay",
                            args={"step": step, "index": index})

    # -- race detector hooks -------------------------------------------------

    def race_detected(self, race) -> None:
        """The happens-before detector recorded a new distinct race."""
        record = race.to_dict()
        record["at_cycles"] = self.now
        self.race_log.append(record)
        self.metrics.counter("races.detected").inc()
        self.metrics.counter(f"races.kind.{race.kind}").inc()
        self.tracer.instant("race", race.current.variant,
                            race.current.thread, cat="race",
                            args={"kind": race.kind,
                                  "site": race.current.site,
                                  "prior_site": race.prior.site})

    # -- deadlock detector hooks ---------------------------------------------

    def deadlock_detected(self, record) -> None:
        """The wait-for-graph detector completed a cycle."""
        entry = record.to_dict()
        entry["at_cycles"] = self.now
        self.deadlock_log.append(entry)
        self.metrics.counter("deadlocks.detected").inc()
        self.tracer.instant("deadlock", record.variant,
                            record.threads[0].thread, cat="deadlock",
                            args={"cycle": record.cycle_name(),
                                  "locks": list(record.locks())})

    # -- agent hooks ---------------------------------------------------------

    def sync_record(self, variant: int, thread: str, buffer: str,
                    occupancy: int) -> None:
        """The master logged one sync op; samples buffer occupancy."""
        self.metrics.counter("agent.recorded").inc()
        gauge = self.metrics.gauge(f"agent.buffer.{buffer}.occupancy")
        gauge.set(occupancy)
        self.tracer.counter(f"buf:{buffer}", variant, occupancy,
                            series="occupancy")
        if self.prof is not None:
            self.prof.sync_record(variant, thread, buffer)

    def sync_replay(self, variant: int, thread: str, buffer: str,
                    occupancy: int) -> None:
        """A slave consumed one sync-op record."""
        self.metrics.counter("agent.replayed").inc()
        self.tracer.counter(f"buf:{buffer}", variant, occupancy,
                            series="occupancy")
        if self.prof is not None:
            self.prof.sync_replay(variant, thread, buffer)

    def sync_stall(self, variant: int, thread: str, kind: str,
                   buffer: str) -> None:
        """A sync-op wrapper parked (log/order/backpressure wait)."""
        self.metrics.counter("agent.stalls").inc()
        self.metrics.counter(f"agent.stalls.{kind}").inc()
        self.tracer.instant(f"sync.{kind}", variant, thread, cat="sync",
                            args={"buffer": buffer})

    def clock_lag(self, variant: int, thread: str, clock_id: int,
                  lag: float) -> None:
        """A WoC slave observed its local clock behind the recorded time."""
        self.metrics.histogram("woc.clock_lag",
                               bounds=(1, 2, 4, 8, 16, 32, 64, 128,
                                       256)).observe(lag)
        self.tracer.instant("clock.stall", variant, thread, cat="clock",
                            args={"clock": clock_id, "lag": lag})
        if self.prof is not None:
            self.prof.clock_lag(variant, thread, lag)

    # -- kernel hooks --------------------------------------------------------

    def futex_park(self, thread_global: str, addr: int) -> None:
        """A thread queued on a futex word."""
        variant = _variant_of(thread_global)
        self.metrics.counter("futex.parks").inc()
        self.tracer.instant("futex.park", variant,
                            thread_global.partition(":")[2],
                            cat="futex", args={"addr": addr})
        if self.prof is not None:
            self.prof.futex_park()

    def futex_wake(self, addr: int, woken: list) -> None:
        """A futex wake released queued threads."""
        self.metrics.counter("futex.wakes").inc()
        self.metrics.counter("futex.woken").inc(len(woken))
        if self.prof is not None:
            self.prof.futex_wake(len(woken))
        for thread_global in woken:
            self.tracer.instant("futex.wake", _variant_of(thread_global),
                                thread_global.partition(":")[2],
                                cat="futex", args={"addr": addr})
