"""Divergence forensics: post-mortem bundles for killed variant sets.

When the monitor kills a run it produces a
:class:`~repro.core.divergence.DivergenceReport` that names the thread
and the call sequence number — but by then the interesting evidence (what
each variant was doing in the cycles *leading up to* the kill) is gone
unless someone kept it.  rr's whole debugging model is built on exactly
this kind of trace-centric post-mortem; this module is the MVEE-shaped
version of it.

A :class:`DivergenceBundle` is a self-contained JSON document holding:

* the divergence report (kind, thread, sequence number, per-variant
  observations),
* the last N trace events **per variant** (the tracer's bounded rings),
* each variant's in-flight monitored-call state at kill time (which
  thread was inside which call, at which sequence number),
* a metrics snapshot and the run configuration (seed, agent, variants).

:func:`diff_tails` then finds, per logical thread, the first monitored
call where the variants' event tails disagree — for an injected
divergence that index is exactly the injected call, which the test suite
verifies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Bundle format version (bump on incompatible schema changes).
BUNDLE_VERSION = 1


@dataclass
class DivergenceBundle:
    """Self-contained post-mortem of one killed run."""

    report: dict
    #: variant -> list of event dicts (oldest first, bounded ring).
    tails: dict[int, list[dict]] = field(default_factory=dict)
    #: variant -> thread -> {"seq": int, "name": str} at kill time.
    in_flight: dict[int, dict[str, dict]] = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)
    version: int = BUNDLE_VERSION
    #: Injected-fault records (from the hub's fault log), oldest first.
    faults: list[dict] = field(default_factory=list)
    #: Recovery actions (watchdog fires, quarantines, restarts).
    recovery: list[dict] = field(default_factory=list)
    #: Races an attached detector reported before the kill.
    races: list[dict] = field(default_factory=list)
    #: Wait-for cycles an attached deadlock detector reported (each dict
    #: names the cycle and the held/wanted locks per thread).
    deadlocks: list[dict] = field(default_factory=list)

    # -- (de)serialization --------------------------------------------------

    def to_json_dict(self) -> dict:
        return {
            "version": self.version,
            "report": self.report,
            "tails": {str(v): tail for v, tail in
                      sorted(self.tails.items())},
            "in_flight": {str(v): state for v, state in
                          sorted(self.in_flight.items())},
            "metrics": self.metrics,
            "config": self.config,
            "faults": self.faults,
            "recovery": self.recovery,
            "races": self.races,
            "deadlocks": self.deadlocks,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "DivergenceBundle":
        return cls(
            version=data.get("version", BUNDLE_VERSION),
            report=data.get("report", {}),
            tails={int(v): tail for v, tail in
                   data.get("tails", {}).items()},
            in_flight={int(v): state for v, state in
                       data.get("in_flight", {}).items()},
            metrics=data.get("metrics", {}),
            config=data.get("config", {}),
            faults=data.get("faults", []),
            recovery=data.get("recovery", []),
            races=data.get("races", []),
            deadlocks=data.get("deadlocks", []),
        )

    def save(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json_dict(), handle, sort_keys=True,
                      indent=2)
            handle.write("\n")

    @classmethod
    def load(cls, path) -> "DivergenceBundle":
        """Load a bundle, raising :class:`ObsArtifactError` (a
        :class:`ReproError`) on missing/empty/truncated files so the
        CLI can report one line instead of a traceback."""
        from repro.errors import ObsArtifactError

        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as exc:
            raise ObsArtifactError(
                f"cannot read bundle {path!r}: "
                f"{exc.strerror or exc}") from exc
        if not text.strip():
            raise ObsArtifactError(f"bundle {path!r} is empty")
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ObsArtifactError(
                f"bundle {path!r} is not valid JSON (truncated "
                f"write?): {exc}") from exc
        if not isinstance(data, dict):
            raise ObsArtifactError(
                f"bundle {path!r} does not contain a bundle object "
                f"(got {type(data).__name__})")
        return cls.from_json_dict(data)


def _report_dict(report) -> dict:
    """Serialize a DivergenceReport without importing repro.core."""
    if report is None:
        return {}
    return {
        "kind": report.kind.value,
        "thread": report.thread,
        "syscall_seq": report.syscall_seq,
        "detail": report.detail,
        "observations": {str(v): repr(obs) for v, obs in
                         sorted(report.observations.items())},
    }


def capture_bundle(hub, report, monitor=None,
                   config: dict | None = None) -> DivergenceBundle:
    """Snapshot the hub's rings and the monitor's in-flight state.

    ``monitor`` is duck-typed: any object with a ``_current`` mapping of
    ``(variant, thread) -> info(seq, name)`` contributes in-flight call
    state; monitors without one (the relaxed monitor) just yield empty
    in-flight tables.
    """
    tails = {variant: [event.to_dict()
                       for event in hub.tracer.tail(variant)]
             for variant in hub.tracer.variants()}
    in_flight: dict[int, dict[str, dict]] = {}
    current = getattr(monitor, "_current", None)
    if current:
        for (variant, thread), info in sorted(current.items()):
            in_flight.setdefault(variant, {})[thread] = {
                "seq": info.seq, "name": info.name}
    return DivergenceBundle(
        report=_report_dict(report),
        tails=tails,
        in_flight=in_flight,
        metrics=hub.metrics.snapshot(),
        config=dict(config or {}),
        faults=[dict(event) for event in
                getattr(hub, "fault_log", ())],
        recovery=[dict(event) for event in
                  getattr(hub, "recovery_log", ())],
        races=[dict(event) for event in
               getattr(hub, "race_log", ())],
        deadlocks=[dict(event) for event in
                   getattr(hub, "deadlock_log", ())],
    )


# -- tail diffing ------------------------------------------------------------

def _call_sequences(tail: list[dict]) -> dict[str, list[dict]]:
    """Per-thread ordered monitored-call events from one variant's tail.

    Events are treated as advisory records, not a schema: one written
    by an older bundle format (or hand-edited) that lacks a ``thread``
    is skipped rather than crashing the whole summary.
    """
    sequences: dict[str, list[dict]] = {}
    for event in tail:
        if not isinstance(event, dict) or event.get("cat") != "call":
            continue
        thread = event.get("thread")
        if thread is None:
            continue
        sequences.setdefault(thread, []).append(event)
    return sequences


def diff_tails(bundle: DivergenceBundle) -> dict[str, dict]:
    """Find, per thread, the first monitored call where variants differ.

    Compares the ``cat == "call"`` events (one per monitored call per
    variant, aligned by the per-thread sequence number the monitor
    assigns) across all variants in the bundle.  Returns a mapping::

        thread -> {"seq": first differing sequence number,
                   "calls": {variant: event-name-at-that-seq}}

    Threads whose visible tails agree are omitted.  Because the rings
    are bounded, alignment uses the recorded ``seq`` argument rather
    than list position — a variant that ran further ahead does not shift
    the comparison.
    """
    per_variant = {variant: _call_sequences(tail)
                   for variant, tail in bundle.tails.items()}
    threads = set()
    for sequences in per_variant.values():
        threads.update(sequences)
    result: dict[str, dict] = {}
    for thread in sorted(threads):
        by_seq: dict[int, dict[int, str]] = {}
        for variant, sequences in per_variant.items():
            for event in sequences.get(thread, ()):
                seq = (event.get("args") or {}).get("seq")
                if seq is None:
                    continue
                by_seq.setdefault(seq, {})[variant] = \
                    event.get("name", "?")
        for seq in sorted(by_seq):
            calls = by_seq[seq]
            if len(calls) > 1 and len(set(calls.values())) > 1:
                result[thread] = {"seq": seq, "calls": calls}
                break
    return result


def summarize_bundle(bundle: DivergenceBundle) -> str:
    """Human-oriented rendering of a bundle (the ``repro obs`` CLI)."""
    lines = ["divergence bundle"]
    report = bundle.report
    if report:
        lines.append(f"  kind    : {report.get('kind')}")
        lines.append(f"  thread  : {report.get('thread')}")
        lines.append(f"  call #  : {report.get('syscall_seq')}")
        if report.get("detail"):
            lines.append(f"  detail  : {report['detail']}")
        for variant, obs in sorted(report.get("observations",
                                              {}).items()):
            lines.append(f"  v{variant} saw : {obs}")
    for variant in sorted(bundle.tails):
        tail = bundle.tails[variant]
        lines.append(f"  variant {variant}: {len(tail)} tail events")
        for event in tail[-5:]:
            stamp = f"@{event.get('ts') or 0:.0f}"
            lines.append(f"    {stamp:>12s} [{event.get('cat')}] "
                         f"{event.get('thread')}: {event.get('name')}")
    for variant, state in sorted(bundle.in_flight.items()):
        if not isinstance(state, dict):
            continue
        for thread, info in sorted(state.items()):
            # Bundles written before the in-flight schema settled may
            # carry partial records; render what is there.
            if not isinstance(info, dict):
                continue
            lines.append(f"  in-flight v{variant} {thread}: "
                         f"{info.get('name', '?')} "
                         f"(call #{info.get('seq', '?')})")
    if bundle.faults:
        per_kind: dict[str, int] = {}
        for event in bundle.faults:
            kind = event.get("kind", "?")
            per_kind[kind] = per_kind.get(kind, 0) + 1
        counts = ", ".join(f"{kind}={count}" for kind, count in
                           sorted(per_kind.items()))
        lines.append(f"  faults injected: {len(bundle.faults)} "
                     f"({counts})")
        first = bundle.faults[0]
        lines.append(f"  first fault : {first.get('kind')} in "
                     f"v{first.get('variant')} at "
                     f"{first.get('at_cycles') or 0:.0f} cycles "
                     f"({first.get('site')})")
    if bundle.races:
        sites = sorted({race.get("current", {}).get("site", "?")
                        for race in bundle.races})
        lines.append(f"  races detected: {len(bundle.races)} at "
                     f"{', '.join(sites)}")
    for record in bundle.deadlocks:
        lines.append(f"  deadlock cycle: {record.get('cycle')} "
                     f"(v{record.get('variant')}) at "
                     f"{record.get('at_cycles') or 0:.0f} cycles")
        for thread in record.get("threads", ()):
            holds = ", ".join(str(a) for a in thread.get("holds", ()))
            lines.append(f"    {thread.get('thread')}: holds [{holds}] "
                         f"wants {thread.get('wants')}")
    for event in bundle.recovery:
        action = event.get("action", "?")
        if action == "quarantine":
            lines.append(f"  recovery: quarantined v{event.get('variant')}"
                         f" [{event.get('kind')}] at "
                         f"{event.get('at_cycles') or 0:.0f} cycles")
        elif action == "restart":
            lines.append(f"  recovery: restarted v{event.get('variant')}"
                         f" at {event.get('at_cycles') or 0:.0f} cycles")
        elif action == "watchdog_timeout":
            variants = ",".join(f"v{v}" for v in
                                event.get("variants", ()))
            lines.append(f"  recovery: watchdog timeout on {variants} "
                         f"(call #{event.get('seq')}) at "
                         f"{event.get('at_cycles') or 0:.0f} cycles")
    divergences = diff_tails(bundle)
    if divergences:
        for thread, info in sorted(divergences.items()):
            calls = ", ".join(f"v{v}={name!r}" for v, name in
                              sorted(info["calls"].items()))
            lines.append(f"  first differing call: thread {thread} "
                         f"call #{info['seq']} ({calls})")
    else:
        lines.append("  (no differing monitored calls inside the "
                     "recorded tails)")
    return "\n".join(lines)


def bundle_to_chrome(bundle: DivergenceBundle) -> dict:
    """Convert a bundle's event tails to Chrome ``trace_event`` JSON.

    Lets Perfetto visualize the final moments of a killed run without
    needing the full run trace.
    """
    from repro.obs.tracer import TraceEvent

    events = []
    for variant in sorted(bundle.tails):
        for data in bundle.tails[variant]:
            events.append(TraceEvent(
                name=data.get("name", "?"), cat=data.get("cat", "obs"),
                ph=data.get("ph", "i"), ts=data.get("ts", 0.0),
                dur=data.get("dur", 0.0), variant=variant,
                thread=data.get("thread", ""),
                args=data.get("args")))
    events.sort(key=lambda e: (e.ts, e.variant, e.thread))
    from repro.obs.tracer import Tracer

    tracer = Tracer()
    for event in events:
        tracer._record(event)
    return tracer.to_chrome()
