"""Counters, gauges, and histograms for MVEE-internal telemetry.

The registry aggregates what the tracer records as individual events:
rendezvous latency, slave clock lag, sync-buffer high-water marks,
divergence-kind counts, per-syscall-class monitor traffic.  Everything is
plain Python with deterministic iteration order, so a snapshot of a
seeded run is byte-identical across executions (the property the
determinism tests pin down).

Histograms use fixed bucket bounds declared at creation time — the
observability layer obeys the same "no dynamic per-variable allocation"
discipline (Section 3.3) the agents do: the set of metrics and bucket
arrays is fixed up front; only the counts grow.
"""

from __future__ import annotations

import json
from bisect import bisect_right

#: Default bucket bounds (cycles) for latency/lag histograms: roughly
#: log-spaced from "one cache miss" to "milliseconds of stall".
DEFAULT_CYCLE_BUCKETS = (
    100.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 30_000.0,
    100_000.0, 300_000.0, 1_000_000.0, 10_000_000.0,
)


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """Last-written value, with a tracked maximum (high-water mark)."""

    __slots__ = ("name", "value", "max")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.max = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value

    def snapshot(self):
        return {"value": self.value, "max": self.max}


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summary stats.

    Snapshot edge cases are part of the contract (pinned by tests): an
    empty histogram reports ``min == max == mean == 0.0`` and every
    percentile as ``0.0``; ``percentile(0)`` is the observed minimum and
    ``percentile(100)`` the observed maximum exactly (no bucket
    interpolation at the edges).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "max",
                 "min")

    def __init__(self, name: str, bounds=DEFAULT_CYCLE_BUCKETS):
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        #: counts[i] covers (bounds[i-1], bounds[i]]; the final slot is
        #: the overflow bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.min = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        if not self.count or value < self.min:
            self.min = value
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile from the bucket counts.

        Interior percentiles resolve to the upper bound of the bucket
        containing the p-th observation (clamped to the observed max,
        which also covers the overflow bucket); ``p=0``/``p=100`` return
        the exact observed min/max, and an empty histogram returns 0.0.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        if not self.count:
            return 0.0
        if p == 0.0:
            return self.min
        if p == 100.0:
            return self.max
        rank = p / 100.0 * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if i >= len(self.bounds):
                    return self.max
                return min(self.bounds[i], self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    def snapshot(self):
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max, "mean": self.mean,
                "buckets": {("le_%g" % bound): self.counts[i]
                            for i, bound in enumerate(self.bounds)},
                "overflow": self.counts[-1]}


class MetricsRegistry:
    """Named metrics with get-or-create semantics and stable snapshots."""

    def __init__(self):
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  bounds=DEFAULT_CYCLE_BUCKETS) -> Histogram:
        return self._get(name, Histogram, bounds)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def items(self):
        """(name, metric) pairs in sorted-name order — the stable
        iteration every renderer (JSON, text, Prometheus exposition)
        builds on."""
        return [(name, self._metrics[name])
                for name in sorted(self._metrics)]

    # -- output -------------------------------------------------------------

    def snapshot(self) -> dict:
        """All metric values, keyed by name, in sorted order."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}

    def to_json(self) -> str:
        """Deterministic JSON rendering (byte-identical per seed)."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=2)

    def write_json(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def render_text(self) -> str:
        """Human-oriented flat listing (the CLI's ``--metrics`` output)."""
        lines = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                lines.append(f"{name} = {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"{name} = {metric.value:g} "
                             f"(max {metric.max:g})")
            else:
                lines.append(f"{name}: n={metric.count} "
                             f"mean={metric.mean:.1f} max={metric.max:g}")
        return "\n".join(lines) if lines else "(no metrics recorded)"
