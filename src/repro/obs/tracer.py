"""Structured event tracing for the MVEE simulator.

The tracer records *what happened when* inside a run: monitor rendezvous,
§4.1 ordering-clock stalls, sync-buffer occupancy, futex parking, and
scheduler grants.  Events are keyed by ``(variant, logical thread)`` —
the same identity scheme the monitor uses to pair equivalent threads —
and carry the simulated-cycle timestamp of the machine clock, so a trace
of an MVEE run is as deterministic as the run itself.

Two sinks are supported:

* **Chrome ``trace_event`` JSON** (:meth:`Tracer.write_chrome`): loadable
  in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Each
  variant becomes a process, each logical thread a named thread; wait
  spans render as slices, buffer occupancy as counter tracks.
* **Compact JSONL** (:meth:`Tracer.write_jsonl`): one event object per
  line, for ad-hoc grepping and downstream tooling.

Cost discipline: the tracer is *never* consulted by hot paths unless an
:class:`~repro.obs.ObsHub` was explicitly attached to the run — hook
sites guard on ``obs is not None`` — and :data:`NULL_TRACER` provides a
no-op implementation for code that wants an unconditional tracer-shaped
object.  Recording an event never touches the simulated clock, so an
instrumented run spends the exact same number of simulated cycles as an
uninstrumented one.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass

from repro.kernel.vtime import CYCLES_PER_SECOND

#: Default length of the per-variant event tail kept for forensics.
DEFAULT_RING_SIZE = 256

#: Microseconds per simulated cycle (Chrome traces use microsecond ts).
_US_PER_CYCLE = 1e6 / CYCLES_PER_SECOND


@dataclass
class TraceEvent:
    """One traced occurrence inside a run.

    ``ph`` follows the Chrome ``trace_event`` phase vocabulary we emit:
    ``"i"`` (instant), ``"X"`` (complete span with ``dur``), and ``"C"``
    (counter sample).
    """

    __slots__ = ("name", "cat", "ph", "ts", "dur", "variant", "thread",
                 "args")

    name: str
    cat: str
    ph: str
    ts: float          # simulated cycles
    dur: float         # simulated cycles (spans only)
    variant: int
    thread: str
    args: dict | None

    def to_dict(self) -> dict:
        """Compact JSON-friendly form (cycle timestamps preserved)."""
        out = {"name": self.name, "cat": self.cat, "ph": self.ph,
               "ts": self.ts, "variant": self.variant,
               "thread": self.thread}
        if self.ph == "X":
            out["dur"] = self.dur
        if self.args:
            out["args"] = self.args
        return out

    def to_chrome(self, tid: int) -> dict:
        """Chrome ``trace_event`` form (microsecond timestamps)."""
        out = {"name": self.name, "cat": self.cat, "ph": self.ph,
               "ts": self.ts * _US_PER_CYCLE, "pid": self.variant,
               "tid": tid}
        if self.ph == "X":
            out["dur"] = self.dur * _US_PER_CYCLE
        if self.ph == "i":
            out["s"] = "t"  # instant scope: thread
        if self.args:
            out["args"] = self.args
        return out


class Tracer:
    """Accumulates :class:`TraceEvent` records for one run.

    ``clock`` is a zero-argument callable returning the current simulated
    time in cycles (bound to ``Machine.now`` by the MVEE bootstrap);
    until one is bound, events are stamped at cycle 0.
    """

    enabled = True

    def __init__(self, clock=None, ring_size: int = DEFAULT_RING_SIZE):
        self._clock = clock or (lambda: 0.0)
        self.events: list[TraceEvent] = []
        #: variant -> bounded tail of that variant's events (forensics).
        self._rings: dict[int, deque] = {}
        self._ring_size = ring_size
        #: span key -> (start ts, name, cat, variant, thread, args)
        self._open_spans: dict = {}

    def bind_clock(self, clock) -> None:
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock()

    # -- recording ---------------------------------------------------------

    def _record(self, event: TraceEvent) -> None:
        self.events.append(event)
        ring = self._rings.get(event.variant)
        if ring is None:
            ring = self._rings[event.variant] = deque(
                maxlen=self._ring_size)
        ring.append(event)

    def instant(self, name: str, variant: int, thread: str,
                cat: str = "obs", args: dict | None = None) -> None:
        """Record a point event at the current simulated time."""
        self._record(TraceEvent(name=name, cat=cat, ph="i",
                                ts=self._clock(), dur=0.0,
                                variant=variant, thread=thread, args=args))

    def counter(self, name: str, variant: int, value: float,
                series: str = "value", cat: str = "buffer") -> None:
        """Record a counter sample (occupancy tracks in Perfetto)."""
        self._record(TraceEvent(name=name, cat=cat, ph="C",
                                ts=self._clock(), dur=0.0,
                                variant=variant, thread="",
                                args={series: value}))

    def complete(self, name: str, variant: int, thread: str,
                 ts: float, dur: float, cat: str = "obs",
                 args: dict | None = None) -> None:
        """Record a finished span with explicit start and duration."""
        self._record(TraceEvent(name=name, cat=cat, ph="X", ts=ts,
                                dur=dur, variant=variant, thread=thread,
                                args=args))

    def begin_span(self, key, name: str, variant: int, thread: str,
                   cat: str = "obs", args: dict | None = None) -> None:
        """Open a span; :meth:`end_span` with the same key closes it."""
        self._open_spans[key] = (self._clock(), name, cat, variant,
                                 thread, args)

    def end_span(self, key, extra_args: dict | None = None) -> float:
        """Close the span opened under ``key``; returns its duration."""
        opened = self._open_spans.pop(key, None)
        if opened is None:
            return 0.0
        start, name, cat, variant, thread, args = opened
        if extra_args:
            args = {**(args or {}), **extra_args}
        dur = self._clock() - start
        self.complete(name, variant, thread, ts=start, dur=dur,
                      cat=cat, args=args)
        return dur

    # -- forensics support --------------------------------------------------

    def tail(self, variant: int) -> list[TraceEvent]:
        """The last events recorded for ``variant`` (bounded ring)."""
        return list(self._rings.get(variant, ()))

    def variants(self) -> list[int]:
        return sorted(self._rings)

    # -- export -------------------------------------------------------------

    def to_chrome(self) -> dict:
        """Build the Chrome ``trace_event`` JSON object.

        Thread ids are assigned per variant in first-appearance order
        (deterministic for a deterministic run) and labelled with
        metadata events so Perfetto shows logical thread names.
        """
        trace_events: list[dict] = []
        tids: dict[tuple[int, str], int] = {}
        seen_pids: set[int] = set()
        for event in self.events:
            pid = event.variant
            if pid not in seen_pids:
                seen_pids.add(pid)
                role = "master" if pid == 0 else f"slave {pid}"
                trace_events.append({
                    "name": "process_name", "ph": "M", "pid": pid,
                    "tid": 0, "args": {"name": f"variant {pid} ({role})"}})
            key = (pid, event.thread)
            tid = tids.get(key)
            if tid is None:
                tid = tids[key] = len([k for k in tids if k[0] == pid])
                if event.thread:
                    trace_events.append({
                        "name": "thread_name", "ph": "M", "pid": pid,
                        "tid": tid, "args": {"name": event.thread}})
            trace_events.append(event.to_chrome(tid))
        return {"traceEvents": trace_events, "displayTimeUnit": "ns",
                "otherData": {"source": "repro.obs",
                              "clock": "simulated cycles (1 cycle = 1 ns)"}}

    def write_chrome(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle, sort_keys=True)

    def write_jsonl(self, path) -> None:
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(json.dumps(event.to_dict(), sort_keys=True))
                handle.write("\n")


class NullTracer:
    """A tracer that records nothing; every method is a no-op.

    Installed where callers want an unconditional tracer-shaped object;
    the hook points in the simulator skip even this by testing
    ``obs is not None``.
    """

    enabled = False
    events: tuple = ()

    def bind_clock(self, clock) -> None:
        pass

    @property
    def now(self) -> float:
        return 0.0

    def instant(self, *args, **kwargs) -> None:
        pass

    def counter(self, *args, **kwargs) -> None:
        pass

    def complete(self, *args, **kwargs) -> None:
        pass

    def begin_span(self, *args, **kwargs) -> None:
        pass

    def end_span(self, *args, **kwargs) -> float:
        return 0.0

    def tail(self, variant: int) -> list:
        return []

    def variants(self) -> list:
        return []

    def to_chrome(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ns"}

    def write_chrome(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle, sort_keys=True)

    def write_jsonl(self, path) -> None:
        open(path, "w").close()


#: Shared no-op tracer instance.
NULL_TRACER = NullTracer()
