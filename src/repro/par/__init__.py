"""``repro.par`` — the parallel experiment engine.

The paper's thesis is that an MVEE can *exploit* parallel hardware
instead of serializing it; this package applies the same discipline to
the reproduction's own experiment sweeps.  Sweep cells (fault-matrix
cells, race-sweep rows, Figure 5 grid cells, table rows, benchmark
matrix entries) are sharded across a pool of worker processes with:

* deterministic per-cell seed derivation
  (:func:`repro.par.seeds.derive_cell_seed`),
* pickle-safe task/result envelopes (:class:`CellTask`,
  :class:`CellResult`),
* worker crash isolation (a dead worker fails its cell, not the sweep),
* aggregation ordered by task position, independent of completion order.

``jobs=1`` (the default everywhere) bypasses multiprocessing entirely
and reproduces the historical serial behaviour; the differential suite
under ``tests/par/`` pins ``jobs=N`` output bit-equal to ``jobs=1``.
``repro bench`` (:mod:`repro.par.bench`) measures the resulting
speedup and writes ``BENCH_par.json``.  See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from repro.par.engine import (
    CellResult,
    CellTask,
    ParallelCellError,
    merge_cell_traces,
    raise_failures,
    run_cells,
)
from repro.par.seeds import derive_cell_seed

__all__ = [
    "CellTask",
    "CellResult",
    "ParallelCellError",
    "run_cells",
    "raise_failures",
    "merge_cell_traces",
    "derive_cell_seed",
]
