"""``repro.par`` — the parallel experiment engine.

The paper's thesis is that an MVEE can *exploit* parallel hardware
instead of serializing it; this package applies the same discipline to
the reproduction's own experiment sweeps.  Sweep cells (fault-matrix
cells, race-sweep rows, Figure 5 grid cells, table rows, benchmark
matrix entries) run under a pluggable **execution environment**
(:mod:`repro.par.environment`): serial inline, worker threads, or a
persistent work-stealing pool of forked worker processes — with:

* deterministic per-cell seed derivation
  (:func:`repro.par.seeds.derive_cell_seed`),
* pickle-safe task/result envelopes (:class:`CellTask`,
  :class:`CellResult`),
* worker crash isolation and health-checked respawn (a dead worker
  fails its cell, not the sweep; the pool returns to target size),
* work-stealing scheduling over per-worker deques
  (:class:`repro.par.stealing.StealScheduler`),
* shared-memory transport for large results
  (:mod:`repro.par.transport`),
* aggregation ordered by task position, independent of completion
  order, environment, and steal schedule.

``jobs=1`` (the default everywhere) bypasses parallelism entirely and
reproduces the historical serial behaviour; the differential suites
under ``tests/par/`` pin every environment's output bit-equal to it.
``repro bench`` (:mod:`repro.par.bench`) measures the resulting
speedup and pool amortisation and writes ``BENCH_par.json``.  See
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from repro.par.engine import (
    CellExecutor,
    CellResult,
    CellTask,
    ParallelCellError,
    merge_cell_traces,
    raise_failures,
    run_cells,
)
from repro.par.environment import (
    ENVIRONMENT_NAMES,
    ExecutionEnvironment,
    InlineEnvironment,
    ProcessEnvironment,
    ThreadEnvironment,
    environment_for,
    resolve_environment,
)
from repro.par.pool import WorkerPool, shared_pool, shutdown_shared_pools
from repro.par.seeds import derive_cell_seed
from repro.par.stealing import StealScheduler

__all__ = [
    "CellTask",
    "CellResult",
    "CellExecutor",
    "ParallelCellError",
    "run_cells",
    "raise_failures",
    "merge_cell_traces",
    "derive_cell_seed",
    "ExecutionEnvironment",
    "InlineEnvironment",
    "ThreadEnvironment",
    "ProcessEnvironment",
    "ENVIRONMENT_NAMES",
    "environment_for",
    "resolve_environment",
    "StealScheduler",
    "WorkerPool",
    "shared_pool",
    "shutdown_shared_pools",
]
