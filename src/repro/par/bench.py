"""``repro bench`` — the repo's performance harness.

Runs the benchmark matrix (benchmark x agent x variant count) through
the parallel engine twice — once sharded across ``jobs`` workers, once
inline — and records wall-clock, cell counts, and the measured
speedup-vs-serial into ``BENCH_par.json`` at the repo root.  That file
seeds the repo's performance trajectory: every optimisation claim
("makes a hot path measurably faster") is checked against it.

The harness is also its own conformance check: the serial and parallel
phases run the *same* task list (same derived per-cell seeds), so the
report records whether their structural outputs were identical and the
SHA-256 digest of the canonical aggregate.

Schema of ``BENCH_par.json`` (``format_version`` 2) — see
``docs/PERFORMANCE.md``:

``kind``/``format_version``/``generated_unix``
    Artifact identification.
``host``
    ``cpu_count``, ``platform``, ``python`` of the machine measured.
``jobs``/``quick``
    The requested worker count and matrix size.
``matrix``
    ``benchmarks``, ``agents``, ``variant_counts``, ``scale``, ``seed``,
    and the resulting ``cells`` count.
``serial``/``parallel``
    Per-phase ``wall_s``, ``ok``, ``failed`` (``parallel`` is ``null``
    for ``--jobs 1``); ``serial`` additionally carries ``cell_wall_s``,
    the per-cell host wall-clock in cell order (v2).  For process
    environments ``parallel`` also carries ``warm_wall_s`` — the same
    matrix re-run on the already-forked pool (worker memo caches reset
    first), isolating fork/import amortisation from cache effects.
``environment``/``pool``/``scheduler``
    The execution environment the parallel phase ran in
    (``--env inline|thread|process|process-static``), the persistent
    pool's lifecycle counters (spawned/respawns/tasks/batches), and the
    work-stealing scheduler's steal counts.  Host diagnostics only —
    never part of the digest.
``speedup``
    serial wall / parallel wall (``null`` for ``--jobs 1``);
    ``speedup_warm`` is the same ratio against the warm-pool re-run.
``identical``
    Whether parallel structural output matched serial bit-for-bit.
``digest``
    ``sha256:`` digest of the canonical serial aggregate.  The digest
    covers only simulated quantities — unchanged between v1 and v2, so
    digests compare across format versions.
``profile`` (v2)
    Cycle profile of the matrix's first cell (``repro.prof``): the
    cell's identity plus ``per_category`` and ``total_cycles``, used by
    ``repro bench --compare`` to flag category-share shifts.
``observability_overhead`` (v2)
    Telemetry's self-measured host cost on the first cell
    (``repro.telemetry.overhead``): bare vs traced wall, the overhead
    fraction, and ``digest_identical`` — the zero-perturbation
    contract, self-checked per run.  ``--compare`` warns (never fails)
    on an overhead regression; a broken ``digest_identical`` fails.
``trajectory`` (v2)
    Accumulated history: one compact entry per prior reference this
    report was ``--compare``'d against (oldest first).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time

from repro.par.engine import CellTask, merge_cell_traces, run_cells

#: Default artifact path, at the repo root by convention.
DEFAULT_OUT = "BENCH_par.json"

FORMAT_VERSION = 2

#: The quick matrix: two cheap, shape-diverse cells per agent — enough
#: to exercise the engine, the schema, and CI smoke in seconds.
QUICK_BENCHMARKS = ("fft", "dedup")
QUICK_AGENTS = ("wall_of_clocks",)
QUICK_VARIANTS = (2,)
QUICK_SCALE = 0.05

#: The full matrix mirrors the Figure 5 grid.
FULL_SCALE = 0.1


def _bench_cell(benchmark: str, agent: str, variants: int, scale: float,
                seed: int, obs=None):
    """One benchmark-matrix cell (module-level: pickled by reference)."""
    from repro.experiments.runner import run_one

    return run_one(benchmark, agent, variants, scale=scale, seed=seed,
                   obs=obs)


def build_matrix(quick: bool = False, scale: float | None = None,
                 seed: int = 1) -> dict:
    """Describe the benchmark matrix (the sweep's parameter space)."""
    if quick:
        benchmarks, agents, variant_counts = (
            QUICK_BENCHMARKS, QUICK_AGENTS, QUICK_VARIANTS)
        scale = QUICK_SCALE if scale is None else scale
    else:
        from repro.experiments.runner import AGENTS, VARIANT_COUNTS
        from repro.workloads.spec import ALL_SPECS

        benchmarks = tuple(ALL_SPECS)
        agents = AGENTS
        variant_counts = VARIANT_COUNTS
        scale = FULL_SCALE if scale is None else scale
    return {
        "benchmarks": list(benchmarks),
        "agents": list(agents),
        "variant_counts": list(variant_counts),
        "scale": scale,
        "seed": seed,
        "cells": len(benchmarks) * len(agents) * len(variant_counts),
    }


def bench_tasks(matrix: dict, with_obs: bool = False) -> list[CellTask]:
    """Expand a matrix into the engine's task list.

    Cell order is the canonical (benchmark, agent, variants) nesting and
    each cell's seed derives from its position, so the task list — and
    therefore the aggregate — is a pure function of the matrix.
    """
    tasks = []
    for benchmark in matrix["benchmarks"]:
        for agent in matrix["agents"]:
            for variants in matrix["variant_counts"]:
                tasks.append(CellTask.for_sweep(
                    "bench", len(tasks), _bench_cell,
                    dict(benchmark=benchmark, agent=agent,
                         variants=variants, scale=matrix["scale"]),
                    base_seed=matrix["seed"], seed_key="seed",
                    with_obs=with_obs))
    return tasks


def canonical_cells(results) -> list[dict]:
    """Structural form of a bench aggregate: deterministic fields only,
    in cell order (host wall-clock never appears here)."""
    cells = []
    for result in results:
        if not result.ok:
            cells.append({"index": result.index, "ok": False,
                          "error": result.error})
            continue
        r = result.value
        cells.append({
            "index": result.index,
            "benchmark": r.benchmark, "agent": r.agent,
            "variants": r.variants, "verdict": r.verdict,
            "native_cycles": r.native_cycles,
            "mvee_cycles": r.mvee_cycles,
            "sync_ops": r.sync_ops, "syscalls": r.syscalls,
            "stall_cycles": r.stall_cycles,
        })
    return cells


def digest_of(cells: list[dict]) -> str:
    payload = json.dumps(cells, sort_keys=True).encode()
    return "sha256:" + hashlib.sha256(payload).hexdigest()


def profile_first_cell(matrix: dict) -> dict:
    """Cycle-profile the matrix's first cell (``repro.prof``).

    Runs outside the timed phases; the result feeds the ``--compare``
    category-shift check.  Fields are simulated quantities only.
    """
    from repro.par.seeds import derive_cell_seed
    from repro.prof.runner import profile_cell

    benchmark = matrix["benchmarks"][0]
    agent = matrix["agents"][0]
    variants = matrix["variant_counts"][0]
    result = profile_cell(benchmark, agent, variants,
                          scale=matrix["scale"],
                          seed=derive_cell_seed("bench", 0,
                                                matrix["seed"]))
    profile = result["profile"]
    return {
        "benchmark": benchmark,
        "agent": agent,
        "variants": variants,
        "per_category": profile["per_category"],
        "total_cycles": profile["total_cycles"],
        "machine_cycles": result["machine_cycles"],
    }


def run_bench(jobs: int = 1, quick: bool = False,
              scale: float | None = None, seed: int = 1,
              env: str | None = None,
              out_path: str | None = DEFAULT_OUT,
              trace_dir: str | None = None,
              trajectory: list | None = None) -> dict:
    """Run the harness and return (and optionally write) the report.

    The parallel phase runs *first*: its workers fork from a parent
    whose memo caches are cold, and the caches are reset again before
    the serial phase, so neither phase warms the other.

    ``env`` selects the execution environment for the parallel phase
    (default ``process``).  Process environments run the matrix twice
    on a *private* pool: a cold pass on a freshly created pool (fork
    cost included, like the first sweep of a session) and a warm pass
    on the same already-forked workers — with the workers' memo caches
    reset in between via the pool control plane, so ``warm_wall_s``
    measures fork/import amortisation rather than cache hits.
    """
    from repro.experiments.runner import reset_caches

    matrix = build_matrix(quick=quick, scale=scale, seed=seed)
    parallel_block = None
    speedup = None
    speedup_warm = None
    identical = None
    merged_trace = None
    environment_name = None
    pool_block = None
    scheduler_block = None
    if jobs > 1:
        from repro.par.environment import (
            ProcessEnvironment,
            environment_for,
        )
        from repro.par.pool import WorkerPool

        environment_name = env or "process"
        pool = None
        if environment_name in ("process", "process-static"):
            # Private pool: cold/warm measurement must not ride workers
            # another sweep already forked.
            pool = WorkerPool(jobs)
            environment = ProcessEnvironment(
                stealing=environment_name == "process", pool=pool)
        else:
            environment = environment_for(environment_name)
        runner = environment.make_runner(jobs)
        tasks = bench_tasks(matrix, with_obs=trace_dir is not None)
        reset_caches()
        try:
            start = time.perf_counter()
            par_results = runner.run(tasks, trace_dir)
            par_wall = time.perf_counter() - start
            parallel_block = {
                "wall_s": par_wall,
                "ok": sum(1 for r in par_results if r.ok),
                "failed": sum(1 for r in par_results if not r.ok),
            }
            if trace_dir is not None:
                merged_trace = os.path.join(trace_dir, "merged.jsonl")
                merge_cell_traces(par_results, merged_trace)
            if pool is not None:
                # Warm pass: same workers, cold caches.
                pool.call_all(reset_caches)
                start = time.perf_counter()
                warm_results = runner.run(bench_tasks(matrix), None)
                parallel_block["warm_wall_s"] = (time.perf_counter()
                                                 - start)
                if (canonical_cells(warm_results)
                        != canonical_cells(par_results)):
                    parallel_block["warm_identical"] = False
            runner_stats = runner.stats()
            scheduler_block = runner_stats.get("scheduler")
            pool_block = runner_stats.get("pool")
        finally:
            runner.close()
            if pool is not None:
                pool.shutdown()

    tasks = bench_tasks(matrix)
    reset_caches()
    start = time.perf_counter()
    serial_results = run_cells(tasks, jobs=1)
    serial_wall = time.perf_counter() - start
    serial_cells = canonical_cells(serial_results)

    # Outside the timed phases: telemetry measures its own host cost on
    # the matrix's first cell (see repro.telemetry.overhead).
    from repro.telemetry.overhead import measure_cell_overhead

    overhead_block = measure_cell_overhead(bench_tasks(matrix)[0])

    if parallel_block is not None:
        speedup = (serial_wall / parallel_block["wall_s"]
                   if parallel_block["wall_s"] > 0 else None)
        warm_wall = parallel_block.get("warm_wall_s")
        if warm_wall:
            speedup_warm = serial_wall / warm_wall
        identical = (canonical_cells(par_results) == serial_cells
                     and parallel_block.get("warm_identical", True))

    report = {
        "kind": "repro-bench",
        "format_version": FORMAT_VERSION,
        "generated_unix": int(time.time()),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "jobs": jobs,
        "quick": quick,
        "environment": environment_name,
        "pool": pool_block,
        "scheduler": scheduler_block,
        "matrix": matrix,
        "serial": {
            "wall_s": serial_wall,
            "ok": sum(1 for r in serial_results if r.ok),
            "failed": sum(1 for r in serial_results if not r.ok),
            "cell_wall_s": [round(r.duration_s, 6)
                            for r in serial_results],
        },
        "parallel": parallel_block,
        "speedup": speedup,
        "speedup_warm": speedup_warm,
        "identical": identical,
        "digest": digest_of(serial_cells),
        "profile": profile_first_cell(matrix),
        "observability_overhead": overhead_block,
        "trajectory": list(trajectory or []),
    }
    if merged_trace is not None:
        report["merged_trace"] = merged_trace
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
            handle.write("\n")
    return report


def render_bench(report: dict) -> str:
    """Human-readable summary of a bench report."""
    matrix = report["matrix"]
    lines = [
        "repro bench: benchmark matrix via the parallel engine",
        f"matrix   : {len(matrix['benchmarks'])} benchmark(s) x "
        f"{len(matrix['agents'])} agent(s) x "
        f"{len(matrix['variant_counts'])} variant count(s) = "
        f"{matrix['cells']} cells (scale {matrix['scale']}, "
        f"seed {matrix['seed']})",
        f"host     : {report['host']['cpu_count']} cpu(s), "
        f"python {report['host']['python']}",
        f"serial   : {report['serial']['wall_s']:.2f}s wall, "
        f"{report['serial']['ok']} ok, "
        f"{report['serial']['failed']} failed",
    ]
    if report["parallel"] is not None:
        environment = report.get("environment") or "process"
        lines.append(
            f"parallel : {report['parallel']['wall_s']:.2f}s wall "
            f"({report['jobs']} jobs, {environment} env), "
            f"{report['parallel']['ok']} ok, "
            f"{report['parallel']['failed']} failed")
        warm = report["parallel"].get("warm_wall_s")
        if warm is not None:
            delta = report["parallel"]["wall_s"] - warm
            lines.append(
                f"warm pool: {warm:.2f}s wall on the already-forked "
                f"pool ({delta:+.2f}s vs cold"
                + (f", {report['speedup_warm']:.2f}x vs serial)"
                   if report.get("speedup_warm") else ")"))
        pool = report.get("pool")
        if pool:
            lines.append(
                f"pool     : {pool['size']} worker(s), "
                f"{pool['spawned']} spawned, {pool['respawns']} "
                f"respawn(s), {pool['tasks']} cell(s) over "
                f"{pool['batches']} batch(es)")
        scheduler = report.get("scheduler")
        if scheduler and scheduler.get("stealing"):
            lines.append(
                f"stealing : {scheduler['steals']} steal(s) moved "
                f"{scheduler['cells_stolen']} cell(s)")
        lines.append(
            f"speedup  : {report['speedup']:.2f}x vs serial; "
            "structural output "
            + ("IDENTICAL to serial" if report["identical"]
               else "DIFFERS from serial (bug!)"))
    else:
        lines.append("parallel : skipped (--jobs 1)")
    overhead = report.get("observability_overhead")
    if overhead and overhead.get("overhead_frac") is not None:
        lines.append(
            f"telemetry: {overhead['overhead_frac'] * 100.0:+.1f}% host "
            "overhead per traced cell; outputs "
            + ("identical with telemetry attached"
               if overhead.get("digest_identical")
               else "PERTURBED by telemetry (bug!)"))
    lines.append(f"digest   : {report['digest']}")
    return "\n".join(lines)
