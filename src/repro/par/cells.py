"""Cell envelopes: the pickle-safe task/result currency of the engine.

Every sweep in the repo — the fault matrix, the race sweep, the Figure 5
grid, table rows, the benchmark matrix, serve sessions — is a list of
*cells*: pure functions of their parameters (including an explicit seed)
that return a picklable result.  This module owns the envelopes those
cells travel in and the one true way to execute a cell in the current
process; everything above it (runners, pools, environments) moves the
envelopes around without ever looking inside.

* :class:`CellTask` carries a module-level callable (pickled by
  reference) plus plain-data kwargs and the cell's derived seed.
* :class:`CellResult` carries plain data (value or error string) plus
  host-side diagnostics that never enter any canonical digest.
* :func:`execute_cell` runs one cell inline with per-cell error capture
  and optional obs-trace emission — the single code path shared by the
  inline runner, thread workers, and pool worker processes, which is
  what makes every execution environment produce the same failure shape.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.par.seeds import derive_cell_seed

__all__ = [
    "CellTask",
    "CellResult",
    "ParallelCellError",
    "execute_cell",
    "raise_failures",
    "merge_cell_traces",
    "trace_path_for",
]


@dataclass
class CellTask:
    """One sweep cell: a picklable (function, kwargs) envelope.

    ``fn`` must be an importable module-level callable (pickled by
    reference); ``kwargs`` must contain only picklable values.  ``seed``
    records the cell's derived seed for provenance — the sweep builder
    is responsible for threading it into ``kwargs`` when the cell
    function takes one.
    """

    sweep_id: str
    index: int
    fn: object
    kwargs: dict = field(default_factory=dict)
    seed: int | None = None
    #: Inject a fresh ObsHub as ``kwargs["obs"]`` and capture its trace.
    with_obs: bool = False
    #: Host trace-context wire dict (``repro.telemetry``); rides the
    #: pickle into whatever process runs the cell so a worker's host
    #: spans join the submitter's trace.  ``None`` (the default) keeps
    #: pre-telemetry task envelopes byte-identical.
    trace: dict | None = None

    @classmethod
    def for_sweep(cls, sweep_id: str, index: int, fn, kwargs: dict,
                  base_seed: int = 0, seed_key: str | None = None,
                  with_obs: bool = False) -> "CellTask":
        """Build a task with its derived seed, optionally threading the
        seed into ``kwargs[seed_key]``."""
        seed = derive_cell_seed(sweep_id, index, base_seed)
        kwargs = dict(kwargs)
        if seed_key is not None:
            kwargs[seed_key] = seed
        return cls(sweep_id=sweep_id, index=index, fn=fn, kwargs=kwargs,
                   seed=seed, with_obs=with_obs)


@dataclass
class CellResult:
    """Outcome envelope for one cell, in task-list order."""

    index: int
    ok: bool
    value: object = None
    error: str | None = None
    #: Host wall-clock spent inside the cell function (diagnostics only;
    #: never part of structural output).
    duration_s: float = 0.0
    #: Pid of the worker that ran the cell (parent pid when inline).
    worker_pid: int = 0
    #: JSONL trace written by the cell's ObsHub, when ``with_obs``.
    trace_path: str | None = None


class ParallelCellError(RuntimeError):
    """One or more cells of a sweep failed."""

    def __init__(self, failures: list[CellResult]):
        self.failures = failures
        lines = [f"{len(failures)} sweep cell(s) failed:"]
        lines += [f"  cell {r.index}: {r.error}" for r in failures]
        super().__init__("\n".join(lines))


def raise_failures(results: list[CellResult]) -> list[CellResult]:
    """Raise :class:`ParallelCellError` if any cell failed; else pass
    results through (a convenience for sweeps that want fail-fast
    semantics on aggregation)."""
    failures = [r for r in results if not r.ok]
    if failures:
        raise ParallelCellError(failures)
    return results


def trace_path_for(trace_dir: str, task: CellTask) -> str:
    return os.path.join(trace_dir, f"cell-{task.index:04d}.jsonl")


def _host_span(task: CellTask):
    """Host-telemetry span around a traced cell, or a no-op.

    Only engaged when the task carries a trace context *and* the
    process has a telemetry directory (pool workers inherit the
    daemon's via fork/env) — the untraced path stays import-free.
    """
    from contextlib import nullcontext

    if task.trace is None:
        return nullcontext()
    try:
        from repro.telemetry.context import TraceContext
        from repro.telemetry.spans import enabled, span
    except Exception:  # pragma: no cover - telemetry must never fail a cell
        return nullcontext()
    if not enabled():
        return nullcontext()
    parent = TraceContext.from_dict(task.trace)
    ctx = parent.child() if parent is not None else None
    return span("cell", ctx=ctx, service="worker",
                track=f"worker {os.getpid()}",
                sweep=task.sweep_id, index=task.index)


def execute_cell(task: CellTask, trace_dir: str | None) -> CellResult:
    """Run one cell in the current process/thread (any environment)."""
    kwargs = dict(task.kwargs)
    hub = None
    trace_path = None
    if task.with_obs:
        from repro.obs import ObsHub

        hub = ObsHub()
        kwargs["obs"] = hub
    start = time.perf_counter()
    try:
        with _host_span(task):
            value = task.fn(**kwargs)
    except Exception as exc:
        return CellResult(index=task.index, ok=False,
                          error=f"{type(exc).__name__}: {exc}",
                          duration_s=time.perf_counter() - start,
                          worker_pid=os.getpid())
    duration = time.perf_counter() - start
    if hub is not None and trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
        trace_path = trace_path_for(trace_dir, task)
        hub.tracer.write_jsonl(trace_path)
    return CellResult(index=task.index, ok=True, value=value,
                      duration_s=duration, worker_pid=os.getpid(),
                      trace_path=trace_path)


def merge_cell_traces(results: list[CellResult], out_path: str) -> int:
    """Merge per-worker JSONL traces into one stream, in cell order.

    Returns the number of events written.  Cells without a trace (failed
    cells, ``with_obs=False`` tasks) are skipped.  Each merged line
    gains a ``"cell"`` key naming the cell it came from, so a single
    file remains attributable after the per-worker files are deleted.
    """
    import json

    written = 0
    with open(out_path, "w") as out:
        for result in results:
            if not result.trace_path:
                continue
            with open(result.trace_path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    event = json.loads(line)
                    event["cell"] = result.index
                    out.write(json.dumps(event, sort_keys=True))
                    out.write("\n")
                    written += 1
    return written
