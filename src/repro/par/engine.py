"""The parallel experiment engine: run sweep cells in any environment.

Every sweep in the repo — the fault matrix, the race sweep, the Figure 5
grid, table rows, the benchmark matrix — is a list of *cells*: pure
functions of their parameters (including an explicit seed) that return a
picklable result.  :func:`run_cells` executes such a list under a
pluggable :mod:`execution environment <repro.par.environment>` —
serial inline, worker threads, or a persistent work-stealing pool of
forked processes — with three guarantees that hold in *every*
environment:

* **determinism** — cell results are a function of the task list alone.
  Aggregated output is ordered by task position, never by completion
  order, and per-cell seeds come from
  :func:`repro.par.seeds.derive_cell_seed`, so worker count, scheduling
  and environment choice cannot leak into results.
* **crash isolation** (process environments) — a worker that dies
  (``os._exit``, segfault, OOM kill) fails *its* cell with a diagnostic
  :class:`CellResult` and leaves every sibling cell untouched; the pool
  respawns the worker back to target size.  The inline path mirrors
  this by catching per-cell exceptions, so every environment agrees on
  failure shape.
* **pickle-safe envelopes** — tasks carry a module-level callable plus
  plain-data kwargs; results carry plain data (value or error string).
  Anything unpicklable is converted to a failed cell, not a hung pool.

Observability composes: a task created with ``with_obs=True`` gets a
fresh :class:`repro.obs.ObsHub` injected as its ``obs`` kwarg, and the
worker writes the hub's trace as JSONL next to its siblings; the parent
merges the per-worker files into one stream with
:func:`merge_cell_traces` (ordered by cell index, like every other
aggregate).

:class:`CellExecutor` is the ticket-based face of the same machinery
for daemons (``repro serve``): cells arrive one at a time from many
client connections and share one persistent pool.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from collections import deque
from multiprocessing import connection

# Re-exported envelope API (the historical public surface of this
# module; sweeps and tests import these names from here).
from repro.par.cells import (
    CellResult,
    CellTask,
    ParallelCellError,
    execute_cell,
    merge_cell_traces,
    raise_failures,
    trace_path_for,
)
from repro.par.environment import (
    ExecutionEnvironment,
    resolve_environment,
)
from repro.par.pool import WorkerPool
from repro.par import transport

__all__ = [
    "CellTask",
    "CellResult",
    "CellExecutor",
    "ParallelCellError",
    "run_cells",
    "raise_failures",
    "merge_cell_traces",
]

# Backwards-compatible private aliases (pre-environment engine layout).
_execute_cell = execute_cell
_trace_path_for = trace_path_for


def _mp_context():
    """Fork when the platform offers it (cheap, inherits warm imports);
    otherwise the platform default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def run_cells(tasks, jobs: int = 1, trace_dir: str | None = None,
              env: str | ExecutionEnvironment | None = None,
              stall_timeout_s: float | None = None) -> list[CellResult]:
    """Run every task and return results **in task-list order**.

    ``env`` selects the execution environment by name (``inline``,
    ``thread``, ``process``, ``process-static``) or instance; ``None``
    keeps the historical behaviour — inline for ``jobs<=1``, the
    persistent process pool otherwise.  Single-cell batches always run
    inline (there is nothing to parallelise).  ``stall_timeout_s`` arms
    the process environments' wedged-worker harvester.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        return [execute_cell(task, trace_dir) for task in tasks]
    environment = resolve_environment(env, jobs)
    runner = environment.make_runner(jobs, stall_timeout_s=stall_timeout_s)
    try:
        return runner.run(tasks, trace_dir)
    finally:
        runner.close()


class CellExecutor:
    """A long-lived worker pool: submit cells over time, share the slots.

    :func:`run_cells` is a synchronous batch — fine for sweeps, useless
    for a daemon whose cells (serve sessions) arrive one at a time from
    many client connections.  The executor keeps the engine's guarantees
    (crash isolation, pickle-safe envelopes, explicit per-cell seeds —
    determinism never depends on completion order) while letting N
    independent submitters share at most ``jobs`` *persistent* workers:
    the pool forks once and serves every subsequent session warm, and a
    worker that dies is respawned without disturbing its siblings.

    ``jobs == 0`` (or ``env="inline"``) runs every cell inline in the
    submitting thread — no fork at all, used by tests and fork-less
    platforms; results are identical because cells are pure functions of
    their task.  ``env="thread"`` uses worker threads instead of forked
    processes (shared caches, no crash isolation).

    Single-consumer per ticket: :meth:`wait` (or a :meth:`poll` that
    finds the cell done) hands the result over exactly once.
    """

    def __init__(self, jobs: int = 2, trace_dir: str | None = None,
                 env: str | None = None,
                 stall_timeout_s: float | None = None):
        self.jobs = max(0, jobs)
        self.trace_dir = trace_dir
        self.stall_timeout_s = stall_timeout_s
        if self.jobs == 0:
            self.env = "inline"
        elif env is None:
            self.env = "process"
        else:
            self.env = getattr(env, "name", env)
        self._lock = threading.Lock()
        self._pending: deque = deque()
        self._done: dict[int, CellResult] = {}
        self._events: dict[int, threading.Event] = {}
        self._next_ticket = 0
        self._closed = False
        self.submitted = 0
        self.completed = 0
        self._pool: WorkerPool | None = None
        if self.env in ("process", "process-static"):
            # Private pool: the executor's lifecycle (daemon start/stop)
            # owns these workers, independent of any shared sweep pool.
            self._pool = WorkerPool(self.jobs)
            self._wake_r, self._wake_w = os.pipe()
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="cell-executor",
                daemon=True)
            self._thread.start()
        elif self.env == "thread":
            self._queue: queue.Queue = queue.Queue()
            self._threads = [
                threading.Thread(target=self._thread_worker,
                                 name=f"cell-executor-{i}", daemon=True)
                for i in range(self.jobs)]
            for thread in self._threads:
                thread.start()
        elif self.env != "inline":
            raise ValueError(
                f"unknown executor environment {self.env!r}")

    # -- submit side -------------------------------------------------------

    def submit(self, task: CellTask) -> int:
        """Queue one cell; returns a ticket for :meth:`wait`/:meth:`poll`."""
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is shut down")
            ticket = self._next_ticket
            self._next_ticket += 1
            self._events[ticket] = threading.Event()
            self.submitted += 1
            if self.env == "inline":
                # Inline mode: run right here, same envelope semantics.
                result = execute_cell(task, self.trace_dir)
                self._done[ticket] = result
                self.completed += 1
                self._events[ticket].set()
                return ticket
            self._pending.append((ticket, task))
        if self.env == "thread":
            self._queue.put(ticket)
        else:
            self._wake()
        return ticket

    def poll(self, ticket: int) -> CellResult | None:
        """The cell's result if it finished, else ``None`` (never blocks).
        A returned result is handed over: the ticket is retired."""
        with self._lock:
            result = self._done.pop(ticket, None)
            if result is not None:
                self._events.pop(ticket, None)
            return result

    def wait(self, ticket: int,
             timeout: float | None = None) -> CellResult | None:
        """Block until the cell finishes; ``None`` only on timeout."""
        event = self._events.get(ticket)
        if event is not None and not event.wait(timeout):
            return None
        return self.poll(ticket)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self.submitted - self.completed

    @property
    def queued(self) -> int:
        """Cells accepted but not yet dispatched to a worker (the
        queue-depth gauge ``serve status`` and the metrics op report)."""
        with self._lock:
            return len(self._pending)

    def pool_stats(self) -> dict | None:
        """Persistent-pool diagnostics (``None`` outside process envs)."""
        if self._pool is None:
            return None
        return self._pool.stats()

    def shutdown(self) -> None:
        """Stop the pool: running workers are terminated, queued cells
        fail with a diagnostic result (nothing hangs)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self.env in ("process", "process-static"):
            self._wake()
            self._thread.join(timeout=30.0)
            os.close(self._wake_r)
            os.close(self._wake_w)
        elif self.env == "thread":
            for _ in self._threads:
                self._queue.put(None)
            for thread in self._threads:
                thread.join(timeout=30.0)
            self._fail_pending("executor shut down")

    def _fail_pending(self, message: str) -> None:
        with self._lock:
            pending = list(self._pending)
            self._pending.clear()
        for ticket, task in pending:
            self._deliver(ticket, CellResult(
                index=task.index, ok=False, error=message))

    # -- delivery ----------------------------------------------------------

    def _deliver(self, ticket: int, result: CellResult) -> None:
        with self._lock:
            self._done[ticket] = result
            self.completed += 1
            event = self._events.get(ticket)
        if event is not None:
            event.set()

    # -- thread environment ------------------------------------------------

    def _thread_worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            with self._lock:
                entry = None
                for position, (ticket, task) in enumerate(self._pending):
                    if ticket == item:
                        entry = (ticket, task)
                        del self._pending[position]
                        break
                closed = self._closed
            if entry is None:
                continue
            ticket, task = entry
            if closed:
                self._deliver(ticket, CellResult(
                    index=task.index, ok=False,
                    error="executor shut down"))
                continue
            self._deliver(ticket, execute_cell(task, self.trace_dir))

    # -- process environment dispatcher ------------------------------------

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:  # pragma: no cover - closed during shutdown
            pass

    def _dispatch_loop(self) -> None:
        pool = self._pool
        idle = set(range(pool.size))
        # slot -> (ticket, task, the PoolWorker it went to)
        in_flight: dict[int, tuple[int, CellTask, object]] = {}
        while True:
            with self._lock:
                closed = self._closed
                starts = []
                while not closed and self._pending and idle:
                    slot = idle.pop()
                    starts.append((slot, *self._pending.popleft()))
            for slot, ticket, task in starts:
                try:
                    worker = pool.dispatch(slot, task, self.trace_dir,
                                           tag=ticket)
                except (BrokenPipeError, OSError):
                    pool.respawn(slot)
                    worker = pool.dispatch(slot, task, self.trace_dir,
                                           tag=ticket)
                in_flight[slot] = (ticket, task, worker)
            if closed:
                break
            waitables = [self._wake_r]
            for _, _, worker in in_flight.values():
                waitables.append(worker.conn)
                waitables.append(worker.proc.sentinel)
            ready = connection.wait(
                waitables, timeout=self._stall_budget(in_flight))
            ready = set(ready or ())
            if self._wake_r in ready:
                os.read(self._wake_r, 4096)
            now = time.monotonic()
            for slot in list(in_flight):
                ticket, task, worker = in_flight[slot]
                if worker.conn in ready or worker.proc.sentinel in ready:
                    result = self._harvest(task, worker, slot)
                elif (self.stall_timeout_s is not None
                      and now - worker.dispatched_at
                      > self.stall_timeout_s):
                    pool.kill(slot, reason="stalled")
                    pool.respawn(slot)
                    result = CellResult(
                        index=task.index, ok=False,
                        error=(f"worker stalled: no result within "
                               f"{self.stall_timeout_s:g}s; killed and "
                               f"respawned"),
                        worker_pid=worker.pid)
                else:
                    continue
                del in_flight[slot]
                idle.add(slot)
                self._deliver(ticket, result)
        # Shutdown: kill the survivors, fail the queue — never hang.
        for slot, (ticket, task, worker) in in_flight.items():
            if worker.proc.is_alive():
                worker.proc.terminate()
            worker.proc.join(timeout=5.0)
            self._deliver(ticket, CellResult(
                index=task.index, ok=False,
                error="executor shut down", worker_pid=worker.pid))
        pool.shutdown()
        self._fail_pending("executor shut down")

    def _harvest(self, task: CellTask, worker, slot: int) -> CellResult:
        pool = self._pool
        result = None
        if worker.conn.poll():
            try:
                result = transport.recv_result(worker.conn.recv())
            except (EOFError, OSError):
                result = None
        if result is not None:
            pool.mark_idle(worker)
            return result
        worker.proc.join(timeout=5.0)
        result = CellResult(
            index=task.index, ok=False,
            error=(f"worker died before reporting "
                   f"(exit code {worker.proc.exitcode})"),
            worker_pid=worker.pid)
        pool.respawn(slot)
        return result

    def _stall_budget(self, in_flight: dict) -> float | None:
        if self.stall_timeout_s is None or not in_flight:
            return None
        now = time.monotonic()
        deadline = min(worker.dispatched_at + self.stall_timeout_s
                       for _, _, worker in in_flight.values())
        return max(deadline - now, 0.05)
