"""The parallel experiment engine: shard sweep cells across processes.

Every sweep in the repo — the fault matrix, the race sweep, the Figure 5
grid, table rows, the benchmark matrix — is a list of *cells*: pure
functions of their parameters (including an explicit seed) that return a
picklable result.  The engine runs such a list either inline
(``jobs=1``, the historical behaviour) or sharded across a pool of
worker processes (``jobs>1``), with three guarantees:

* **determinism** — cell results are a function of the task list alone.
  Aggregated output is ordered by task position, never by completion
  order, and per-cell seeds come from
  :func:`repro.par.seeds.derive_cell_seed`, so worker count and
  scheduling cannot leak into results.
* **crash isolation** — each cell runs in its own forked process; a
  worker that dies (``os._exit``, segfault, OOM kill) fails *its* cell
  with a diagnostic :class:`CellResult` and leaves every sibling cell
  untouched.  The inline path mirrors this by catching per-cell
  exceptions, so ``jobs=1`` and ``jobs=N`` agree on failure shape too.
* **pickle-safe envelopes** — tasks carry a module-level callable plus
  plain-data kwargs; results carry plain data (value or error string).
  Anything unpicklable is converted to a failed cell, not a hung pool.

Observability composes: a task created with ``with_obs=True`` gets a
fresh :class:`repro.obs.ObsHub` injected as its ``obs`` kwarg, and the
worker writes the hub's trace as JSONL next to its siblings; the parent
merges the per-worker files into one stream with
:func:`merge_cell_traces` (ordered by cell index, like every other
aggregate).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection

from repro.par.seeds import derive_cell_seed

__all__ = [
    "CellTask",
    "CellResult",
    "CellExecutor",
    "ParallelCellError",
    "run_cells",
    "raise_failures",
    "merge_cell_traces",
]


@dataclass
class CellTask:
    """One sweep cell: a picklable (function, kwargs) envelope.

    ``fn`` must be an importable module-level callable (pickled by
    reference); ``kwargs`` must contain only picklable values.  ``seed``
    records the cell's derived seed for provenance — the sweep builder
    is responsible for threading it into ``kwargs`` when the cell
    function takes one.
    """

    sweep_id: str
    index: int
    fn: object
    kwargs: dict = field(default_factory=dict)
    seed: int | None = None
    #: Inject a fresh ObsHub as ``kwargs["obs"]`` and capture its trace.
    with_obs: bool = False

    @classmethod
    def for_sweep(cls, sweep_id: str, index: int, fn, kwargs: dict,
                  base_seed: int = 0, seed_key: str | None = None,
                  with_obs: bool = False) -> "CellTask":
        """Build a task with its derived seed, optionally threading the
        seed into ``kwargs[seed_key]``."""
        seed = derive_cell_seed(sweep_id, index, base_seed)
        kwargs = dict(kwargs)
        if seed_key is not None:
            kwargs[seed_key] = seed
        return cls(sweep_id=sweep_id, index=index, fn=fn, kwargs=kwargs,
                   seed=seed, with_obs=with_obs)


@dataclass
class CellResult:
    """Outcome envelope for one cell, in task-list order."""

    index: int
    ok: bool
    value: object = None
    error: str | None = None
    #: Host wall-clock spent inside the cell function (diagnostics only;
    #: never part of structural output).
    duration_s: float = 0.0
    #: Pid of the worker that ran the cell (parent pid when inline).
    worker_pid: int = 0
    #: JSONL trace written by the cell's ObsHub, when ``with_obs``.
    trace_path: str | None = None


class ParallelCellError(RuntimeError):
    """One or more cells of a sweep failed."""

    def __init__(self, failures: list[CellResult]):
        self.failures = failures
        lines = [f"{len(failures)} sweep cell(s) failed:"]
        lines += [f"  cell {r.index}: {r.error}" for r in failures]
        super().__init__("\n".join(lines))


def raise_failures(results: list[CellResult]) -> list[CellResult]:
    """Raise :class:`ParallelCellError` if any cell failed; else pass
    results through (a convenience for sweeps that want fail-fast
    semantics on aggregation)."""
    failures = [r for r in results if not r.ok]
    if failures:
        raise ParallelCellError(failures)
    return results


def _trace_path_for(trace_dir: str, task: CellTask) -> str:
    return os.path.join(trace_dir, f"cell-{task.index:04d}.jsonl")


def _execute_cell(task: CellTask, trace_dir: str | None) -> CellResult:
    """Run one cell in the current process (worker or inline)."""
    kwargs = dict(task.kwargs)
    hub = None
    trace_path = None
    if task.with_obs:
        from repro.obs import ObsHub

        hub = ObsHub()
        kwargs["obs"] = hub
    start = time.perf_counter()
    try:
        value = task.fn(**kwargs)
    except Exception as exc:
        return CellResult(index=task.index, ok=False,
                          error=f"{type(exc).__name__}: {exc}",
                          duration_s=time.perf_counter() - start,
                          worker_pid=os.getpid())
    duration = time.perf_counter() - start
    if hub is not None and trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
        trace_path = _trace_path_for(trace_dir, task)
        hub.tracer.write_jsonl(trace_path)
    return CellResult(index=task.index, ok=True, value=value,
                      duration_s=duration, worker_pid=os.getpid(),
                      trace_path=trace_path)


def _worker_main(conn, task: CellTask, trace_dir: str | None) -> None:
    """Worker-process entry: run the cell, ship the result envelope."""
    try:
        result = _execute_cell(task, trace_dir)
    except BaseException as exc:  # never let a worker die silently
        result = CellResult(index=task.index, ok=False,
                            error=f"{type(exc).__name__}: {exc}",
                            worker_pid=os.getpid())
    try:
        conn.send(result)
    except Exception as exc:
        # The cell value would not pickle: fail the cell, keep the pool.
        try:
            conn.send(CellResult(
                index=task.index, ok=False,
                error=f"result not picklable: {exc}",
                worker_pid=os.getpid()))
        except Exception:
            pass
    finally:
        conn.close()


def _mp_context():
    """Fork when the platform offers it (cheap, inherits warm imports);
    otherwise the platform default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def run_cells(tasks, jobs: int = 1,
              trace_dir: str | None = None) -> list[CellResult]:
    """Run every task and return results **in task-list order**.

    ``jobs<=1`` runs inline in the calling process (no multiprocessing
    at all — today's serial behaviour, plus per-cell error capture).
    ``jobs>1`` runs each cell in its own forked worker, at most ``jobs``
    alive at once.  A worker that exits without reporting fails only its
    own cell.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        return [_execute_cell(task, trace_dir) for task in tasks]

    ctx = _mp_context()
    slots: dict[int, CellResult] = {}
    pending = deque(enumerate(tasks))
    running: list[tuple[int, CellTask, object, object]] = []

    def _finish(position: int, task: CellTask, proc, conn) -> None:
        result = None
        if conn.poll():
            try:
                result = conn.recv()
            except EOFError:
                result = None
        conn.close()
        proc.join()
        if result is None:
            result = CellResult(
                index=task.index, ok=False,
                error=(f"worker died before reporting "
                       f"(exit code {proc.exitcode})"),
                worker_pid=proc.pid or 0)
        slots[position] = result

    try:
        while pending or running:
            while pending and len(running) < jobs:
                position, task = pending.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(target=_worker_main,
                                   args=(child_conn, task, trace_dir),
                                   daemon=True)
                proc.start()
                child_conn.close()
                running.append((position, task, proc, parent_conn))
            # Wait on both pipes and process sentinels: a pipe firing
            # first avoids deadlocking on results larger than the pipe
            # buffer; a sentinel firing first catches crashed workers.
            waitables = [entry[3] for entry in running]
            waitables += [entry[2].sentinel for entry in running]
            ready = connection.wait(waitables)
            still_running = []
            for position, task, proc, conn in running:
                if conn in ready or proc.sentinel in ready:
                    _finish(position, task, proc, conn)
                else:
                    still_running.append((position, task, proc, conn))
            running = still_running
    finally:
        for _, _, proc, conn in running:
            proc.terminate()
            proc.join()
            conn.close()
    return [slots[position] for position in range(len(tasks))]


class CellExecutor:
    """A long-lived worker pool: submit cells over time, share the slots.

    :func:`run_cells` is a synchronous batch — fine for sweeps, useless
    for a daemon whose cells (serve sessions) arrive one at a time from
    many client connections.  The executor keeps the engine's guarantees
    (crash isolation, pickle-safe envelopes, explicit per-cell seeds —
    determinism never depends on completion order) while letting N
    independent submitters share at most ``jobs`` forked workers.

    ``jobs == 0`` runs every cell inline in the submitting thread — no
    fork at all, used by tests and fork-less platforms; results are
    identical because cells are pure functions of their task.

    Single-consumer per ticket: :meth:`wait` (or a :meth:`poll` that
    finds the cell done) hands the result over exactly once.
    """

    def __init__(self, jobs: int = 2, trace_dir: str | None = None):
        self.jobs = max(0, jobs)
        self.trace_dir = trace_dir
        self._lock = threading.Lock()
        self._pending: deque = deque()
        self._running: list = []
        self._done: dict[int, CellResult] = {}
        self._events: dict[int, threading.Event] = {}
        self._next_ticket = 0
        self._closed = False
        self.submitted = 0
        self.completed = 0
        if self.jobs > 0:
            self._ctx = _mp_context()
            self._wake_r, self._wake_w = os.pipe()
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="cell-executor",
                daemon=True)
            self._thread.start()

    # -- submit side -------------------------------------------------------

    def submit(self, task: CellTask) -> int:
        """Queue one cell; returns a ticket for :meth:`wait`/:meth:`poll`."""
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is shut down")
            ticket = self._next_ticket
            self._next_ticket += 1
            self._events[ticket] = threading.Event()
            self.submitted += 1
            if self.jobs == 0:
                # Inline mode: run right here, same envelope semantics.
                result = _execute_cell(task, self.trace_dir)
                self._done[ticket] = result
                self.completed += 1
                self._events[ticket].set()
                return ticket
            self._pending.append((ticket, task))
        self._wake()
        return ticket

    def poll(self, ticket: int) -> CellResult | None:
        """The cell's result if it finished, else ``None`` (never blocks).
        A returned result is handed over: the ticket is retired."""
        with self._lock:
            result = self._done.pop(ticket, None)
            if result is not None:
                self._events.pop(ticket, None)
            return result

    def wait(self, ticket: int,
             timeout: float | None = None) -> CellResult | None:
        """Block until the cell finishes; ``None`` only on timeout."""
        event = self._events.get(ticket)
        if event is not None and not event.wait(timeout):
            return None
        return self.poll(ticket)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self.submitted - self.completed

    def shutdown(self) -> None:
        """Stop the pool: running workers are terminated, queued cells
        fail with a diagnostic result (nothing hangs)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self.jobs > 0:
            self._wake()
            self._thread.join(timeout=30.0)
            os.close(self._wake_r)
            os.close(self._wake_w)

    # -- dispatcher --------------------------------------------------------

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:  # pragma: no cover - closed during shutdown
            pass

    def _deliver(self, ticket: int, result: CellResult) -> None:
        with self._lock:
            self._done[ticket] = result
            self.completed += 1
            event = self._events.get(ticket)
        if event is not None:
            event.set()

    def _start_one(self, ticket: int, task: CellTask) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(target=_worker_main,
                                 args=(child_conn, task, self.trace_dir),
                                 daemon=True)
        proc.start()
        child_conn.close()
        self._running.append((ticket, task, proc, parent_conn))

    def _finish_one(self, ticket: int, task: CellTask, proc, conn) -> None:
        result = None
        if conn.poll():
            try:
                result = conn.recv()
            except EOFError:
                result = None
        conn.close()
        proc.join()
        if result is None:
            result = CellResult(
                index=task.index, ok=False,
                error=(f"worker died before reporting "
                       f"(exit code {proc.exitcode})"),
                worker_pid=proc.pid or 0)
        self._deliver(ticket, result)

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                closed = self._closed
                while (not closed and self._pending
                       and len(self._running) < self.jobs):
                    ticket, task = self._pending.popleft()
                    self._start_one(ticket, task)
            if closed:
                break
            waitables = [self._wake_r]
            waitables += [entry[3] for entry in self._running]
            waitables += [entry[2].sentinel for entry in self._running]
            ready = connection.wait(waitables)
            if self._wake_r in ready:
                os.read(self._wake_r, 4096)
            still = []
            for ticket, task, proc, conn in self._running:
                if conn in ready or proc.sentinel in ready:
                    self._finish_one(ticket, task, proc, conn)
                else:
                    still.append((ticket, task, proc, conn))
            self._running = still
        # Shutdown: kill the survivors, fail the queue — never hang.
        for ticket, task, proc, conn in self._running:
            proc.terminate()
            proc.join()
            conn.close()
            self._deliver(ticket, CellResult(
                index=task.index, ok=False,
                error="executor shut down", worker_pid=proc.pid or 0))
        self._running = []
        with self._lock:
            pending = list(self._pending)
            self._pending.clear()
        for ticket, task in pending:
            self._deliver(ticket, CellResult(
                index=task.index, ok=False, error="executor shut down"))


def merge_cell_traces(results: list[CellResult], out_path: str) -> int:
    """Merge per-worker JSONL traces into one stream, in cell order.

    Returns the number of events written.  Cells without a trace (failed
    cells, ``with_obs=False`` tasks) are skipped.  Each merged line
    gains a ``"cell"`` key naming the cell it came from, so a single
    file remains attributable after the per-worker files are deleted.
    """
    import json

    written = 0
    with open(out_path, "w") as out:
        for result in results:
            if not result.trace_path:
                continue
            with open(result.trace_path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    event = json.loads(line)
                    event["cell"] = result.index
                    out.write(json.dumps(event, sort_keys=True))
                    out.write("\n")
                    written += 1
    return written
