"""Execution environments: pluggable strategies for running sweeps.

Following the environment/runner/buffer split (one object decides *how*
cells execute, builds the matching runner and result-buffer types, and
is selected by name), every driver in the repo — ``run_cells``, the
serve daemon's :class:`~repro.par.engine.CellExecutor`, the fault
matrix, the race and deadlock sweeps, ``table2``, the Figure 5 grid,
``repro bench`` and ``repro profile`` — picks its environment with a
single ``--env`` flag:

========================  ==============================================
``inline``                calling thread, serial; the determinism oracle
``thread``                worker threads + work stealing; shares caches,
                          no crash isolation
``process``               persistent forked worker pool + work stealing;
                          crash isolation, shared-memory results
                          (the default for ``jobs>1``)
``process-static``        the same pool with stealing disabled — the
                          static ``i % jobs`` partition, kept as a
                          comparison point and differential witness
========================  ==============================================

The cycle-identity contract: **every environment produces the same
canonical digest as serial execution.**  Environments choose where and
when a cell runs; the cell's output is a pure function of its task
(seeds derive from the cell index, aggregation is slotted by task
position), so the choice can never leak into results.
``tests/par/test_env_equivalence.py`` pins this for every sweep family
in the repo.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.par.pool import WorkerPool, shared_pool
from repro.par.runners.base import Runner
from repro.par.runners.inline import InlineRunner
from repro.par.runners.process import ProcessRunner
from repro.par.runners.thread import ThreadRunner
from repro.par.transport import ListBuffer, LockedBuffer

__all__ = [
    "ExecutionEnvironment",
    "InlineEnvironment",
    "ThreadEnvironment",
    "ProcessEnvironment",
    "ENVIRONMENT_NAMES",
    "environment_for",
    "resolve_environment",
]


class ExecutionEnvironment(ABC):
    """How a batch of cells executes: runner + matching buffer types."""

    #: Registry name (what ``--env`` selects).
    name: str = "?"

    @abstractmethod
    def make_runner(self, jobs: int,
                    stall_timeout_s: float | None = None) -> Runner:
        """Build a runner for ``jobs``-wide execution."""

    def make_buffer(self, size: int) -> ListBuffer:
        """Result buffer matching this environment's delivery pattern."""
        return ListBuffer(size)


class InlineEnvironment(ExecutionEnvironment):
    """Serial execution in the calling thread (the oracle)."""

    name = "inline"

    def make_runner(self, jobs: int = 1,
                    stall_timeout_s: float | None = None) -> Runner:
        return InlineRunner(self)


class ThreadEnvironment(ExecutionEnvironment):
    """Worker threads sharing the parent interpreter."""

    name = "thread"

    def make_runner(self, jobs: int,
                    stall_timeout_s: float | None = None) -> Runner:
        return ThreadRunner(self, max(1, jobs))

    def make_buffer(self, size: int) -> ListBuffer:
        # Worker threads deliver concurrently: lock the slots.
        return LockedBuffer(size)


class ProcessEnvironment(ExecutionEnvironment):
    """Persistent forked worker pool (work stealing on by default).

    By default runners borrow the process-wide :func:`shared_pool` for
    their worker count — that is what makes consecutive sweeps reuse
    warm workers.  Pass ``pool=`` for a private pool (the benchmark
    does, to measure cold vs warm honestly), or ``stealing=False`` for
    the static-partition variant registered as ``process-static``.
    """

    name = "process"

    def __init__(self, stealing: bool = True,
                 pool: WorkerPool | None = None):
        self.stealing = stealing
        self._pool = pool
        if not stealing:
            self.name = "process-static"

    def make_runner(self, jobs: int,
                    stall_timeout_s: float | None = None) -> Runner:
        pool = self._pool if self._pool is not None \
            else shared_pool(max(1, jobs))
        runner = ProcessRunner(self, pool, stealing=self.stealing,
                               stall_timeout_s=stall_timeout_s,
                               owns_pool=False)
        runner.env_name = self.name
        return runner


_REGISTRY = {
    "inline": InlineEnvironment,
    "thread": ThreadEnvironment,
    "process": lambda: ProcessEnvironment(stealing=True),
    "process-static": lambda: ProcessEnvironment(stealing=False),
}

#: Valid ``--env`` values, in documentation order.
ENVIRONMENT_NAMES = tuple(_REGISTRY)


def environment_for(name: str) -> ExecutionEnvironment:
    """The environment registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown execution environment {name!r}; choose from "
            f"{', '.join(ENVIRONMENT_NAMES)}") from None
    return factory()


def resolve_environment(env, jobs: int) -> ExecutionEnvironment:
    """Normalise an ``env`` argument (name, instance, or ``None``).

    ``None`` keeps the historical behaviour: serial for ``jobs<=1``,
    the process pool otherwise.
    """
    if env is None:
        return environment_for("inline" if jobs <= 1 else "process")
    if isinstance(env, ExecutionEnvironment):
        return env
    return environment_for(env)
