"""Persistent warm worker pools: fork once, sweep many times.

The first-generation engine forked a fresh process *per cell* and a
fresh pool *per sweep*: on the 225-cell bench matrix that is 225 forks
plus 225 import-warm-up penalties per run, and the serve daemon paid
the same tax for every batch session.  :class:`WorkerPool` replaces
that with a small set of long-lived worker processes:

* **lazy spawn** — workers fork on first dispatch, inheriting the
  parent's warm imports (fork start method where available);
* **reuse across sweeps** — :func:`shared_pool` hands every
  ``run_cells`` caller in the process the same pool for a given size,
  so consecutive sweeps (and consecutive ``repro serve`` batches) share
  warm workers; per-pool counters record the amortisation for the
  BENCH report;
* **health-checked respawn** — a worker that dies (SIGKILL, OOM,
  ``os._exit``) fails only the cell it was running; the pool detects
  the death via the process sentinel, replaces the worker, and the next
  dispatch proceeds on a fresh process;
* **stall harvesting** — a dispatch loop may declare a busy worker
  wedged (no result within its stall budget) and have the pool kill and
  replace it, converting a hung sweep into one failed cell;
* **idle reaping** — workers idle longer than ``idle_timeout_s`` are
  stopped on the next pool interaction, so a daemon that served a burst
  does not hold its peak worker count forever.

Determinism is unaffected by any of this: cells are pure functions of
their :class:`~repro.par.cells.CellTask` (seeds derive from the cell
index), results are slotted by task position, and a respawned worker
re-executes nothing — the failed cell stays failed, exactly as a
crashed one-shot worker did.  ``tests/par/test_pool_faults.py`` pins
kill/respawn/digest-identity; the differential suite pins pool output
against inline execution.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import time

from repro.par import transport
from repro.par.cells import CellResult, CellTask, execute_cell

__all__ = ["PoolWorker", "WorkerPool", "shared_pool",
           "shutdown_shared_pools"]

#: How long ``shutdown`` waits for a worker to honour "stop" before
#: escalating to terminate().
_STOP_GRACE_S = 5.0


def _mp_context():
    """Fork when the platform offers it (cheap, inherits warm imports);
    otherwise the platform default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def _pool_worker_main(conn) -> None:
    """Worker-process entry: serve cells until told to stop.

    The loop shape is the whole crash-isolation story: one recv, one
    cell, one send.  A cell that raises becomes a failed envelope; a
    value that will not ship becomes a failed envelope (inside
    :func:`~repro.par.transport.send_result`); only process death can
    end the loop without a report, and the parent's sentinel watch
    turns that into a failed cell too.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        if op == "stop":
            break
        if op == "call":
            # Control plane: run a module-level callable (e.g. a cache
            # reset between bench phases) and acknowledge.
            try:
                message[1]()
                conn.send(("ctl", True, None))
            except Exception as exc:
                conn.send(("ctl", False, f"{type(exc).__name__}: {exc}"))
            continue
        task, trace_dir = message[1], message[2]
        try:
            result = execute_cell(task, trace_dir)
        except BaseException as exc:  # never let a worker die silently
            result = CellResult(index=task.index, ok=False,
                                error=f"{type(exc).__name__}: {exc}",
                                worker_pid=os.getpid())
        try:
            transport.send_result(conn, result)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


class PoolWorker:
    """One persistent worker process and its parent-side bookkeeping."""

    __slots__ = ("index", "proc", "conn", "busy", "dispatched_at",
                 "last_used", "tasks_run")

    def __init__(self, index: int, proc, conn):
        self.index = index
        self.proc = proc
        self.conn = conn
        #: Opaque tag set by the dispatch loop while a cell is in
        #: flight (task position or executor ticket); None when idle.
        self.busy = None
        self.dispatched_at = 0.0
        self.last_used = time.monotonic()
        self.tasks_run = 0

    @property
    def pid(self) -> int:
        return self.proc.pid or 0

    def alive(self) -> bool:
        return self.proc.is_alive()


class WorkerPool:
    """``size`` persistent workers with respawn, reaping, and stats."""

    def __init__(self, size: int, idle_timeout_s: float | None = None):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        self.idle_timeout_s = idle_timeout_s
        self._ctx = _mp_context()
        self._slots: list[PoolWorker | None] = [None] * size
        self._closed = False
        #: Serialises whole batches / dispatch loops on this pool (the
        #: shared pool may be reached from several sweeps in one
        #: process; their batches run back to back, not interleaved).
        self.lock = threading.RLock()
        # -- amortisation / resilience counters (host diagnostics) ----
        self.spawned = 0
        self.respawns = 0
        self.stall_kills = 0
        self.reaped = 0
        self.tasks_dispatched = 0
        self.batches = 0

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self, index: int) -> PoolWorker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(target=_pool_worker_main,
                                 args=(child_conn,),
                                 name=f"repro-pool-{index}",
                                 daemon=True)
        proc.start()
        child_conn.close()
        self.spawned += 1
        worker = PoolWorker(index, proc, parent_conn)
        self._slots[index] = worker
        return worker

    def worker(self, index: int) -> PoolWorker:
        """The live worker for a slot, spawning/respawning as needed."""
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        worker = self._slots[index]
        if worker is None:
            return self._spawn(index)
        if not worker.alive():
            self._discard(worker)
            self.respawns += 1
            return self._spawn(index)
        return worker

    def _discard(self, worker: PoolWorker) -> None:
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        worker.proc.join(timeout=_STOP_GRACE_S)
        self._slots[worker.index] = None

    def respawn(self, index: int) -> PoolWorker:
        """Replace a dead/condemned worker with a fresh process."""
        worker = self._slots[index]
        if worker is not None:
            if worker.alive():
                worker.proc.terminate()
            self._discard(worker)
        self.respawns += 1
        return self._spawn(index)

    def kill(self, index: int, reason: str = "stalled") -> None:
        """Forcibly end a wedged worker (the respawn happens on next
        :meth:`worker`/:meth:`respawn` call)."""
        worker = self._slots[index]
        if worker is None:
            return
        if reason == "stalled":
            self.stall_kills += 1
        if worker.alive():
            worker.proc.kill()
        worker.proc.join(timeout=_STOP_GRACE_S)

    def reap_idle(self, now: float | None = None) -> int:
        """Stop workers idle beyond ``idle_timeout_s``; returns count."""
        if self.idle_timeout_s is None:
            return 0
        now = time.monotonic() if now is None else now
        reaped = 0
        for worker in list(self._slots):
            if worker is None or worker.busy is not None:
                continue
            if now - worker.last_used < self.idle_timeout_s:
                continue
            self._stop_worker(worker)
            self._slots[worker.index] = None
            reaped += 1
        self.reaped += reaped
        return reaped

    def _stop_worker(self, worker: PoolWorker) -> None:
        try:
            worker.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        worker.proc.join(timeout=_STOP_GRACE_S)
        if worker.proc.is_alive():  # pragma: no cover - stop suffices
            worker.proc.terminate()
            worker.proc.join(timeout=_STOP_GRACE_S)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    def shutdown(self) -> None:
        """Stop every worker (idempotent)."""
        with self.lock:
            if self._closed:
                return
            self._closed = True
            for worker in self._slots:
                if worker is not None:
                    self._stop_worker(worker)
            self._slots = [None] * self.size

    @property
    def closed(self) -> bool:
        return self._closed

    # -- dispatch helpers --------------------------------------------------

    def dispatch(self, index: int, task: CellTask,
                 trace_dir: str | None, tag=None) -> PoolWorker:
        """Send one cell to slot ``index``'s worker and mark it busy."""
        worker = self.worker(index)
        worker.busy = task.index if tag is None else tag
        worker.dispatched_at = time.monotonic()
        worker.conn.send(("task", task, trace_dir))
        self.tasks_dispatched += 1
        return worker

    def mark_idle(self, worker: PoolWorker) -> None:
        worker.busy = None
        worker.tasks_run += 1
        worker.last_used = time.monotonic()

    def call_all(self, fn, timeout_s: float = 30.0) -> int:
        """Run a module-level callable in every *live, idle* worker
        (control plane — e.g. resetting memo caches between bench
        phases).  Returns the number of workers reached."""
        with self.lock:
            reached = 0
            for worker in self._slots:
                if worker is None or not worker.alive() or worker.busy:
                    continue
                worker.conn.send(("call", fn))
                if worker.conn.poll(timeout_s):
                    worker.conn.recv()
                    reached += 1
            return reached

    def live_workers(self) -> list[PoolWorker]:
        return [w for w in self._slots if w is not None and w.alive()]

    def stats(self) -> dict:
        """Plain-data pool diagnostics for reports and ``serve status``.

        The pool's own counters are the single source of truth for
        host observability: every read also publishes them into the
        process-wide host metrics registry, so ``serve status`` and the
        daemon's ``metrics`` exposition can never disagree.
        """
        from repro.telemetry import hostmetrics

        stats = {
            "size": self.size,
            "alive": len(self.live_workers()),
            "spawned": self.spawned,
            "respawns": self.respawns,
            "stall_kills": self.stall_kills,
            "reaped": self.reaped,
            "tasks": self.tasks_dispatched,
            "batches": self.batches,
        }
        hostmetrics.publish_pool_stats(stats)
        return stats


# -- the process-wide shared pools ----------------------------------------

_shared_pools: dict[int, WorkerPool] = {}
_shared_lock = threading.Lock()


def shared_pool(jobs: int,
                idle_timeout_s: float | None = None) -> WorkerPool:
    """The process-wide persistent pool for ``jobs`` workers.

    Every sweep that asks for the same worker count gets the same pool,
    which is what lets consecutive sweeps amortise fork + import cost;
    the pool is created on first use and torn down at interpreter exit.
    """
    with _shared_lock:
        pool = _shared_pools.get(jobs)
        if pool is None or pool.closed:
            pool = WorkerPool(jobs, idle_timeout_s=idle_timeout_s)
            _shared_pools[jobs] = pool
        return pool


def shutdown_shared_pools() -> None:
    """Stop every shared pool (atexit hook; also used by tests)."""
    with _shared_lock:
        for pool in _shared_pools.values():
            pool.shutdown()
        _shared_pools.clear()


atexit.register(shutdown_shared_pools)
