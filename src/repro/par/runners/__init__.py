"""Runners: per-environment strategies for executing a batch of cells.

Each runner implements one way to move :class:`~repro.par.cells.CellTask`
envelopes through :func:`~repro.par.cells.execute_cell` and slot the
results back in task-list order:

* :class:`InlineRunner` — the calling thread, one cell at a time (the
  historical serial path and the determinism oracle).
* :class:`ThreadRunner` — worker threads over a shared work-stealing
  scheduler; cheap, shares the parent's memo caches, but offers no
  crash isolation.
* :class:`ProcessRunner` — a persistent :class:`~repro.par.pool.WorkerPool`
  of forked workers fed by the same scheduler, with crash isolation,
  stall harvesting, and shared-memory result transport.

Runners are built by :mod:`repro.par.environment`; sweeps never touch
them directly.
"""

from repro.par.runners.base import Runner
from repro.par.runners.inline import InlineRunner
from repro.par.runners.process import ProcessRunner
from repro.par.runners.thread import ThreadRunner

__all__ = ["Runner", "InlineRunner", "ThreadRunner", "ProcessRunner"]
