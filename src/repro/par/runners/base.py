"""The runner protocol shared by every execution environment."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.par.cells import CellResult, CellTask


class Runner(ABC):
    """Execute a batch of cells; results come back in task-list order.

    The contract every environment's runner honours:

    * **order** — ``run`` returns one :class:`CellResult` per task, in
      task-list position order, regardless of completion order;
    * **failure shape** — a cell that raises, crashes its worker, or
      stalls yields a failed result in its slot; sibling cells are
      untouched and ``run`` itself raises only for infrastructure bugs;
    * **purity** — runners never mutate tasks; a cell's output depends
      on its task alone, which is what makes environments digest-
      interchangeable.

    ``close`` releases only resources the runner *owns* (a private
    pool, worker threads); shared pools outlive their runners.
    """

    #: Environment name this runner was built for (diagnostics).
    env_name: str = "?"

    @abstractmethod
    def run(self, tasks: list[CellTask],
            trace_dir: str | None = None) -> list[CellResult]:
        """Execute every task; return results in task-list order."""

    def close(self) -> None:
        """Release owned resources (idempotent; default: nothing)."""

    def stats(self) -> dict:
        """Plain-data diagnostics from the most recent ``run``."""
        return {"environment": self.env_name}
