"""Inline runner: the calling thread, one cell at a time."""

from __future__ import annotations

from repro.par.cells import CellResult, CellTask, execute_cell
from repro.par.runners.base import Runner


class InlineRunner(Runner):
    """The serial oracle: no pool, no threads, no scheduler.

    Every other environment is tested for digest-equality against this
    one; it is also what ``jobs<=1`` resolves to everywhere, preserving
    the historical serial behaviour (including memo-cache hits, which
    live in the calling process).
    """

    env_name = "inline"

    def __init__(self, environment):
        self._environment = environment
        self._cells_run = 0

    def run(self, tasks: list[CellTask],
            trace_dir: str | None = None) -> list[CellResult]:
        buffer = self._environment.make_buffer(len(tasks))
        for position, task in enumerate(tasks):
            buffer.put(position, execute_cell(task, trace_dir))
            self._cells_run += 1
        return buffer.collect()

    def stats(self) -> dict:
        return {"environment": self.env_name, "cells": self._cells_run}
