"""Process runner: a persistent worker pool fed by the steal scheduler.

This is the default environment for ``jobs>1`` and the direct
descendant of the original fork-per-cell engine, restructured around
three upgrades:

* **warm workers** — cells are dispatched to a persistent
  :class:`~repro.par.pool.WorkerPool` instead of a fresh fork each, so
  consecutive sweeps amortise fork + import cost;
* **work stealing** — each worker slot owns a deque of cell positions
  (``i % jobs``), and an idle slot steals half the busiest sibling's
  backlog, so one expensive shard cannot strand the rest of the pool
  (``stealing=False`` reproduces the static partition for comparison);
* **shared-memory results** — large result payloads cross via
  ``multiprocessing.shared_memory`` instead of the pipe
  (:mod:`repro.par.transport`).

The dispatch loop preserves the first-generation crash-isolation
contract verbatim: it waits on worker pipes *and* process sentinels, so
a worker that dies without reporting (SIGKILL, ``os._exit``, OOM) fails
only its cell — same diagnostic string as before — and the pool
respawns the slot back to target size before the next dispatch.  An
optional stall budget additionally converts a wedged worker (alive but
silent) into a failed cell plus a respawn instead of a hung sweep.
"""

from __future__ import annotations

import time
from multiprocessing import connection

from repro.par import transport
from repro.par.cells import CellResult, CellTask
from repro.par.pool import PoolWorker, WorkerPool
from repro.par.runners.base import Runner
from repro.par.stealing import StealScheduler

#: Floor for the connection.wait timeout while a stall budget is armed,
#: so a budget that just expired still polls promptly without spinning.
_MIN_WAIT_S = 0.05


class ProcessRunner(Runner):
    """Run cells on a (usually shared) pool of persistent workers."""

    env_name = "process"

    def __init__(self, environment, pool: WorkerPool,
                 stealing: bool = True,
                 stall_timeout_s: float | None = None,
                 owns_pool: bool = False):
        self._environment = environment
        self.pool = pool
        self.stealing = stealing
        self.stall_timeout_s = stall_timeout_s
        self._owns_pool = owns_pool
        self._last_scheduler: StealScheduler | None = None

    def run(self, tasks: list[CellTask],
            trace_dir: str | None = None) -> list[CellResult]:
        tasks = list(tasks)
        buffer = self._environment.make_buffer(len(tasks))
        scheduler = StealScheduler(len(tasks), self.pool.size,
                                   stealing=self.stealing)
        self._last_scheduler = scheduler
        # slot -> (task position, task, the PoolWorker it went to)
        in_flight: dict[int, tuple[int, CellTask, PoolWorker]] = {}
        with self.pool.lock:
            self.pool.batches += 1
            for slot in range(self.pool.size):
                self._feed(slot, scheduler, tasks, trace_dir, in_flight)
            while in_flight:
                ready = connection.wait(
                    [waitable
                     for _, _, worker in in_flight.values()
                     for waitable in (worker.conn, worker.proc.sentinel)],
                    timeout=self._stall_budget(in_flight))
                ready = set(ready or ())
                now = time.monotonic()
                for slot in list(in_flight):
                    position, task, worker = in_flight[slot]
                    if worker.conn in ready or worker.proc.sentinel in ready:
                        result = self._harvest(task, worker, slot)
                    elif self._stalled(worker, now):
                        result = self._kill_stalled(task, worker, slot)
                    else:
                        continue
                    buffer.put(position, result)
                    del in_flight[slot]
                    self._feed(slot, scheduler, tasks, trace_dir,
                               in_flight)
        return buffer.collect()

    # -- dispatch ----------------------------------------------------------

    def _feed(self, slot: int, scheduler: StealScheduler, tasks,
              trace_dir: str | None, in_flight: dict) -> None:
        """Hand slot ``slot`` its next cell, if the scheduler has one."""
        while True:
            position = scheduler.next_for(slot)
            if position is None:
                return
            task = tasks[position]
            try:
                worker = self.pool.dispatch(slot, task, trace_dir,
                                            tag=position)
            except (BrokenPipeError, OSError):
                # The worker died between health check and send; replace
                # it and retry once — a second failure fails the cell.
                self.pool.respawn(slot)
                try:
                    worker = self.pool.dispatch(slot, task, trace_dir,
                                                tag=position)
                except (BrokenPipeError, OSError) as exc:
                    in_flight.pop(slot, None)
                    # Slot is cursed: fail this cell, move to the next.
                    self._buffer_orphan(position, task, exc)
                    continue
            in_flight[slot] = (position, task, worker)
            return

    def _buffer_orphan(self, position: int, task: CellTask, exc) -> None:
        # Stored via the scheduler path's buffer by the caller; kept as
        # a hook so run() stays the only writer.  In practice dispatch
        # failing twice in a row means fork itself is failing, so
        # surface it loudly instead of mis-filing the result.
        raise RuntimeError(
            f"cannot dispatch cell {task.index}: worker pipe failed "
            f"twice ({exc})")

    # -- harvest -----------------------------------------------------------

    def _harvest(self, task: CellTask, worker: PoolWorker,
                 slot: int) -> CellResult:
        """Collect one result (or synthesise a death notice)."""
        result = None
        if worker.conn.poll():
            try:
                result = transport.recv_result(worker.conn.recv())
            except (EOFError, OSError):
                result = None
        if result is not None:
            self.pool.mark_idle(worker)
            return result
        # Sentinel fired with nothing in the pipe: the worker died
        # mid-cell.  Same failure shape as the fork-per-cell engine.
        worker.proc.join(timeout=5.0)
        result = CellResult(
            index=task.index, ok=False,
            error=(f"worker died before reporting "
                   f"(exit code {worker.proc.exitcode})"),
            worker_pid=worker.pid)
        self.pool.respawn(slot)
        return result

    # -- stalls ------------------------------------------------------------

    def _stalled(self, worker: PoolWorker, now: float) -> bool:
        return (self.stall_timeout_s is not None
                and now - worker.dispatched_at > self.stall_timeout_s)

    def _kill_stalled(self, task: CellTask, worker: PoolWorker,
                      slot: int) -> CellResult:
        self.pool.kill(slot, reason="stalled")
        self.pool.respawn(slot)
        return CellResult(
            index=task.index, ok=False,
            error=(f"worker stalled: no result within "
                   f"{self.stall_timeout_s:g}s; killed and respawned"),
            worker_pid=worker.pid)

    def _stall_budget(self, in_flight: dict) -> float | None:
        """connection.wait timeout: time until the first stall fires."""
        if self.stall_timeout_s is None:
            return None
        now = time.monotonic()
        deadline = min(worker.dispatched_at + self.stall_timeout_s
                       for _, _, worker in in_flight.values())
        return max(deadline - now, _MIN_WAIT_S)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._owns_pool:
            self.pool.shutdown()

    def stats(self) -> dict:
        stats = {"environment": self.env_name,
                 "jobs": self.pool.size,
                 "pool": self.pool.stats()}
        if self._last_scheduler is not None:
            stats["scheduler"] = self._last_scheduler.stats()
        return stats
