"""Thread runner: worker threads over a shared work-stealing scheduler.

Threads share the parent's interpreter, so this environment is the
cheap one: no fork, no pickling, and the parent's memo caches
(:func:`repro.experiments.runner.run_one`'s table) are visible to every
worker.  The cost is no crash isolation — a cell that takes down the
interpreter takes down the sweep — which is why the process environment
stays the default for ``jobs>1``.

Determinism is untouched by threading: the scheduler decides *which
thread* runs a cell, never *what the cell computes* (seeds derive from
the cell index), and results land in a :class:`LockedBuffer` slotted by
task position.  The GIL serialises the pure-Python simulation work, so
on CPython this environment is about observing scheduler behaviour and
cache sharing, not wall-clock speedups.
"""

from __future__ import annotations

import threading

from repro.par.cells import CellResult, CellTask, execute_cell
from repro.par.runners.base import Runner
from repro.par.stealing import StealScheduler


class ThreadRunner(Runner):
    """``jobs`` worker threads pulling cells from per-worker deques."""

    env_name = "thread"

    def __init__(self, environment, jobs: int, stealing: bool = True):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self._environment = environment
        self.jobs = jobs
        self.stealing = stealing
        self._last_scheduler: StealScheduler | None = None

    def run(self, tasks: list[CellTask],
            trace_dir: str | None = None) -> list[CellResult]:
        tasks = list(tasks)
        buffer = self._environment.make_buffer(len(tasks))
        scheduler = StealScheduler(len(tasks), self.jobs,
                                   stealing=self.stealing)
        self._last_scheduler = scheduler
        # The scheduler is single-consumer by design; worker threads
        # serialise their next_for/steal calls through this lock while
        # cell execution itself runs unlocked.
        sched_lock = threading.Lock()
        errors: list[BaseException] = []

        def worker(worker_index: int) -> None:
            try:
                while True:
                    with sched_lock:
                        position = scheduler.next_for(worker_index)
                    if position is None:
                        return
                    task = tasks[position]
                    buffer.put(position, execute_cell(task, trace_dir))
            except BaseException as exc:  # infrastructure bug, surface it
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,),
                                    name=f"repro-cell-{i}", daemon=True)
                   for i in range(min(self.jobs, len(tasks)) or 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return buffer.collect()

    def stats(self) -> dict:
        stats = {"environment": self.env_name, "jobs": self.jobs}
        if self._last_scheduler is not None:
            stats["scheduler"] = self._last_scheduler.stats()
        return stats
