"""Deterministic per-cell seed derivation for parallel sweeps.

A sweep that runs N cells on one worker and the same N cells on eight
workers must produce bit-identical results.  That only holds if each
cell's randomness is a pure function of *which cell it is* — never of
which worker picked it up, in what order, or how many siblings ran
before it.  :func:`derive_cell_seed` provides that function: a SHA-256
hash of ``(sweep_id, cell_index, base_seed)`` folded to a positive
63-bit integer.

Properties the test suite pins down
(``tests/property/test_seed_partition.py``):

* **injective in practice** — distinct ``(sweep_id, cell_index)`` pairs
  get distinct seeds (collisions would need a SHA-256 collision in the
  low 63 bits);
* **stable under reordering** — the derivation reads nothing but its
  arguments, so shuffling the task list or resubmitting a single cell
  reproduces the same seed;
* **base-seed separated** — the same sweep replayed under a different
  ``base_seed`` gets a fresh, unrelated seed for every cell.
"""

from __future__ import annotations

import hashlib

#: Seeds are folded into the positive signed-64-bit range so they are
#: safe for every consumer (``random.Random``, numpy, JSON, C callers).
_SEED_BITS = 63


def derive_cell_seed(sweep_id: str, cell_index: int,
                     base_seed: int = 0) -> int:
    """Derive the seed for one sweep cell.

    ``sweep_id`` names the sweep (``"fault-matrix"``, ``"bench"``, ...),
    ``cell_index`` is the cell's position in the *task list* (not the
    completion order), and ``base_seed`` is the user-visible seed of the
    whole sweep.  The result depends on nothing else.
    """
    if cell_index < 0:
        raise ValueError(f"cell_index must be >= 0, got {cell_index}")
    material = f"{sweep_id}\x1f{cell_index}\x1f{base_seed}".encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - _SEED_BITS)
