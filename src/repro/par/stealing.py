"""Work-stealing deque scheduler over sweep cells.

Static partitioning strands workers: the committed BENCH_par.json shows
per-cell walls spanning 0.003s–0.3s (a 100x spread), so a worker whose
shard happens to hold the cheap cells goes idle while a sibling grinds
through the expensive ones.  :class:`StealScheduler` fixes that with the
classic per-worker-deque shape:

* cell ``i`` starts on worker ``i % workers`` — the *initial partition*
  is a pure function of the cell index, so which worker *first owns* a
  cell never depends on timing;
* a worker takes its next cell from the **head** of its own deque (the
  order a static partition would have run them);
* a worker whose deque is empty **steals half** (rounded up) from the
  **tail** of the busiest victim's deque — the victim keeps the cells it
  was about to run, the thief takes the far end;
* the victim is chosen deterministically: most remaining cells, ties
  broken by lowest worker index.  Given the same sequence of
  "worker X asks for work" events, the schedule is reproducible.

Scheduling can therefore affect *when and where* a cell runs but never
*what it computes*: cell seeds derive from the cell index alone
(:mod:`repro.par.seeds`) and results are slotted by task position, so
any interleaving of :meth:`next_for` calls yields the same sweep output.
``tests/property/test_work_stealing.py`` drives random interleavings
with Hypothesis to pin exactly that: every cell scheduled exactly once,
no losses, no duplicates, aggregation order independent of victim
choice.

The scheduler is deliberately not thread-safe: each runner drives it
from a single dispatch thread (the parent process for the process pool,
the submitting thread for the thread runner under its lock).
"""

from __future__ import annotations

from collections import deque

__all__ = ["StealScheduler"]


class StealScheduler:
    """Deal ``items`` cell positions across ``workers`` local deques."""

    def __init__(self, items: int, workers: int, stealing: bool = True):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if items < 0:
            raise ValueError(f"items must be >= 0, got {items}")
        self.workers = workers
        self.stealing = stealing
        self._deques: list[deque[int]] = [deque()
                                          for _ in range(workers)]
        for position in range(items):
            self._deques[position % workers].append(position)
        self._remaining = items
        #: Diagnostics: (thief, victim, cells moved) per steal event.
        self.steals: list[tuple[int, int, int]] = []

    @property
    def remaining(self) -> int:
        """Cells not yet handed out (in-flight cells are not counted)."""
        return self._remaining

    def done(self) -> bool:
        return self._remaining == 0

    def pending_of(self, worker: int) -> int:
        return len(self._deques[worker])

    def next_for(self, worker: int) -> int | None:
        """The next cell position worker ``worker`` should run.

        Pops the head of the worker's own deque; if it is empty and
        stealing is enabled, steals half of the busiest victim's deque
        first.  Returns ``None`` when no cell is available anywhere
        (the sweep is fully handed out).
        """
        own = self._deques[worker]
        if not own and self.stealing:
            self._steal_into(worker)
        if not own:
            # Static mode (or nothing left to steal): this worker is done.
            return None
        self._remaining -= 1
        return own.popleft()

    def _steal_into(self, thief: int) -> None:
        victim = self._pick_victim(thief)
        if victim is None:
            return
        source = self._deques[victim]
        count = (len(source) + 1) // 2
        # Take from the tail: the victim keeps the cells it was about to
        # run, the thief takes the far end in original cell order.
        stolen = [source.pop() for _ in range(count)]
        self._deques[thief].extend(reversed(stolen))
        self.steals.append((thief, victim, count))

    def _pick_victim(self, thief: int) -> int | None:
        """Busiest worker with >= 1 pending cell; ties break toward the
        lowest worker index — a pure function of deque state."""
        victim = None
        best = 0
        for index, pending in enumerate(self._deques):
            if index == thief:
                continue
            if len(pending) > best:
                best = len(pending)
                victim = index
        return victim

    def stats(self) -> dict:
        """Plain-data scheduling diagnostics (never part of digests).

        Like :meth:`WorkerPool.stats`, reading also publishes the steal
        counters into the host metrics registry — the scheduler's own
        ``steals`` list stays the single source of truth.
        """
        from repro.telemetry import hostmetrics

        stats = {
            "workers": self.workers,
            "stealing": self.stealing,
            "steals": len(self.steals),
            "cells_stolen": sum(count for _, _, count in self.steals),
        }
        hostmetrics.publish_pool_stats({"scheduler": stats})
        return stats
