"""Buffers and transports: how cell results travel between runners.

Following the puma ``environment``/``runner``/``buffer`` split, each
execution environment pairs its runner with a matching result buffer:

* :class:`ListBuffer` — plain slots, no locking; matches the inline
  runner (one thread, no concurrency).
* :class:`LockedBuffer` — the same slots under a lock; matches the
  thread runner (worker threads deliver concurrently).
* The process runner harvests on a single dispatch thread, so it also
  uses :class:`ListBuffer` parent-side; what it needs instead is a
  *wire transport* for the worker→parent hop, provided by
  :func:`send_result` / :func:`recv_result`.

The wire transport ships small results inline through the pipe (one
pickled message, the historical behaviour) but diverts payloads larger
than :data:`SHM_THRESHOLD_BYTES` through ``multiprocessing``
POSIX shared memory: the worker copies the pickled bytes into a fresh
segment and sends only ``(name, size)``; the parent maps the segment,
unpickles, and unlinks it.  Large trace/profile artifacts therefore
cross in one copy instead of being squeezed through a 64KiB pipe buffer
in chunks while the parent's dispatch loop is blocked on other workers.

Shared memory is an optimisation, never a requirement: platforms
without ``multiprocessing.shared_memory`` (or with ``/dev/shm``
unavailable) silently fall back to the inline pipe path, and a payload
that fails to pickle is converted into a failed-cell envelope — the
engine's "anything unpicklable is a failed cell, not a hung pool" rule
lives here.
"""

from __future__ import annotations

import pickle
import threading

from repro.par.cells import CellResult

__all__ = [
    "ListBuffer",
    "LockedBuffer",
    "SHM_THRESHOLD_BYTES",
    "send_result",
    "recv_result",
    "shm_available",
]

#: Pickled results at or above this size take the shared-memory path.
#: A Linux pipe buffer is 64KiB; one page below that keeps every
#: inline message a single atomic write.
SHM_THRESHOLD_BYTES = 60 * 1024

try:  # gated: some platforms build Python without _posixshmem
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - stdlib always has it on linux
    _shm = None


def shm_available() -> bool:
    return _shm is not None


class ListBuffer:
    """Position-slotted result buffer for single-threaded delivery."""

    def __init__(self, size: int):
        self._slots: list[CellResult | None] = [None] * size

    def put(self, position: int, result: CellResult) -> None:
        self._slots[position] = result

    def collect(self) -> list[CellResult]:
        """Results in task-list order; every slot must be filled."""
        missing = [i for i, slot in enumerate(self._slots)
                   if slot is None]
        if missing:
            raise RuntimeError(
                f"result buffer incomplete: slots {missing} never "
                "received a result")
        return list(self._slots)


class LockedBuffer(ListBuffer):
    """The same slots, safe for concurrent worker-thread delivery."""

    def __init__(self, size: int):
        super().__init__(size)
        self._lock = threading.Lock()

    def put(self, position: int, result: CellResult) -> None:
        with self._lock:
            super().put(position, result)

    def collect(self) -> list[CellResult]:
        with self._lock:
            return super().collect()


def _unregister_from_tracker(name: str) -> None:
    """Detach a segment from this process's resource tracker.

    The creating worker hands ownership to the parent (which unlinks
    after reading); without this, the worker's tracker would try to
    unlink the long-gone segment at interpreter exit and log leaks.
    """
    try:  # pragma: no cover - tracker layout is an implementation detail
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name.lstrip('/')}",
                                    "shared_memory")
    except Exception:
        pass


def send_result(conn, result: CellResult,
                threshold: int = SHM_THRESHOLD_BYTES) -> None:
    """Worker side: ship one result envelope to the parent.

    Never raises for payload problems — an unpicklable or otherwise
    unshippable value is downgraded to a failed :class:`CellResult`
    (carrying the diagnostic) so the pool never wedges on a bad cell.
    """
    import os

    try:
        payload = pickle.dumps(result,
                               protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        conn.send(("inline", CellResult(
            index=result.index, ok=False,
            error=f"result not picklable: {exc}",
            duration_s=result.duration_s, worker_pid=os.getpid())))
        return
    if _shm is None or len(payload) < threshold:
        conn.send(("inline", result))
        return
    try:
        segment = _shm.SharedMemory(create=True, size=len(payload))
    except Exception:
        # /dev/shm missing or full: the pipe still works, just slower.
        conn.send(("inline", result))
        return
    try:
        segment.buf[:len(payload)] = payload
        name = segment.name
        segment.close()
        _unregister_from_tracker(name)
        conn.send(("shm", name, len(payload), result.index))
    except Exception as exc:  # pragma: no cover - copy failures are rare
        try:
            segment.close()
            segment.unlink()
        except Exception:
            pass
        conn.send(("inline", CellResult(
            index=result.index, ok=False,
            error=f"shared-memory transport failed: {exc}",
            worker_pid=os.getpid())))


def recv_result(message) -> CellResult:
    """Parent side: decode one envelope produced by :func:`send_result`.

    The caller is responsible for ``conn.recv()``; this function only
    interprets the message, so the dispatch loop can keep multiplexing
    connections however it likes.
    """
    from repro.telemetry import hostmetrics

    kind = message[0]
    if kind == "inline":
        hostmetrics.inc("host.transport.inline_results")
        return message[1]
    if kind != "shm":  # pragma: no cover - protocol is two-armed
        raise RuntimeError(f"unknown result transport kind {kind!r}")
    hostmetrics.inc("host.transport.shm_results")
    _, name, size, index = message
    segment = _shm.SharedMemory(name=name)
    try:
        return pickle.loads(bytes(segment.buf[:size]))
    except Exception as exc:
        return CellResult(index=index, ok=False,
                          error=f"shared-memory payload corrupt: {exc}")
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
