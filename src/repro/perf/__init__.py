"""Performance model: cycle costs, contention, and report formatting."""

from repro.perf.costs import CostModel
from repro.perf.contention import ContentionTracker, SharedLineModel
from repro.perf.report import SlowdownReport, format_table

__all__ = [
    "CostModel",
    "ContentionTracker",
    "SharedLineModel",
    "SlowdownReport",
    "format_table",
]
