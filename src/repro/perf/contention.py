"""Cache-line contention accounting.

The paper attributes the TO/PO agents' poor scalability to read-write
sharing on buffer cursor variables, and the WoC agent's efficiency to
having only single-producer buffers plus clocks that are shared *only when
the application's own locks were already contended* (Section 4.5).

:class:`SharedLineModel` turns that observation into cycles: each access to
a logically shared line records the accessing thread; the penalty for an
access grows with the number of *distinct other threads* seen within the
recent access window.  This makes contention an emergent property of the
workload's actual sharing pattern rather than a per-benchmark fudge factor.
"""

from __future__ import annotations

from collections import deque


class SharedLineModel:
    """Tracks recent accessors of one logically shared cache line."""

    __slots__ = ("window", "_recent", "_recent_set")

    def __init__(self, window: int = 16):
        self.window = window
        self._recent: deque[str] = deque(maxlen=window)
        self._recent_set: dict[str, int] = {}

    def access(self, thread_id: str) -> int:
        """Record an access; return the number of distinct *other* recent
        accessors (the coherence-miss multiplier)."""
        if len(self._recent) == self._recent.maxlen:
            oldest = self._recent[0]
            count = self._recent_set.get(oldest, 0)
            if count <= 1:
                self._recent_set.pop(oldest, None)
            else:
                self._recent_set[oldest] = count - 1
        self._recent.append(thread_id)
        self._recent_set[thread_id] = self._recent_set.get(thread_id, 0) + 1
        sharers = len(self._recent_set)
        return max(0, sharers - 1)


def coherence_cycles(costs, sharers: int) -> float:
    """Saturating cost of one access to a line with ``sharers`` other
    recent accessors: one full transfer plus sub-linear queuing."""
    if sharers <= 0:
        return 0.0
    penalty = costs.coherence_penalty
    return (penalty + 0.3 * penalty * (sharers - 1)) * costs.numa_factor


class ContentionTracker:
    """A keyed collection of shared lines (one per cursor / clock / lock)."""

    def __init__(self, window: int = 16):
        self.window = window
        self._lines: dict[object, SharedLineModel] = {}

    def access(self, key: object, thread_id: str) -> int:
        """Record an access to line ``key``; returns distinct other sharers."""
        line = self._lines.get(key)
        if line is None:
            line = SharedLineModel(self.window)
            self._lines[key] = line
        return line.access(thread_id)

    def line_count(self) -> int:
        return len(self._lines)
