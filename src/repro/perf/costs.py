"""The simulation's cycle-cost model.

All performance behaviour of the reproduction derives from the named
constants below.  They are calibrated so that the *shape* of the paper's
evaluation holds (Table 1, Figure 5): which agent wins, by roughly what
factor, and where the pathologies appear.  Absolute values are in simulated
cycles at 1 GHz (:mod:`repro.kernel.vtime`), chosen to be plausible for the
paper's dual-socket Xeon E5-2660 testbed:

* A ptrace-based monitor costs tens of microseconds per intercepted
  syscall (four context switches plus argument comparison) — this is why
  syscall-heavy benchmarks like dedup stay slow even under the best agent
  (Section 5.1: "Each of the system calls invokes the MVEE monitor, which
  constitutes a performance bottleneck").
* Sync-op wrappers cost tens of cycles, but *shared-line contention* costs
  grow with the number of threads simultaneously hitting the same cache
  line.  The TO/PO agents pay this on their shared buffer cursors
  (Section 4.5: "this inevitably leads to read-write sharing on the
  variable that stores the next free position"); the WoC agent pays it only
  on genuinely contended clocks.

Calibration notes for every constant live in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass
class CostModel:
    """Cycle costs charged by the simulator and the MVEE components."""

    # -- machine ---------------------------------------------------------
    #: Relative jitter applied to each step duration; models timer phase,
    #: microarchitectural variance, and background load.  This is what
    #: desynchronizes identical variants from one another.
    compute_jitter: float = 0.35
    #: Preemption quantum in cycles (randomized ±50% per grant).
    preempt_quantum: float = 80_000.0

    # -- plain syscall costs ------------------------------------------------
    #: User/kernel transition plus kernel work for an unmonitored call.
    syscall_base: float = 400.0
    #: Thread creation (clone) on top of syscall_base.
    clone_cost: float = 4_000.0

    # -- monitor costs ---------------------------------------------------------
    #: Per monitored syscall per variant: ptrace stops + context switches.
    monitor_syscall_overhead: float = 5_000.0
    #: Re-check after a rendezvous / ordering wake.
    rendezvous_recheck: float = 350.0
    #: Copying a replicated result into a slave.
    replication_copy: float = 500.0
    #: Lamport-clock bookkeeping for an ordered call.
    ordering_bookkeeping: float = 350.0

    # -- sync op / agent costs ---------------------------------------------------
    #: The bare atomic instruction.
    sync_op_exec: float = 25.0
    #: Calling the before/after wrapper pair (Listing 3).
    agent_wrapper: float = 25.0
    #: Writing one entry into a sync buffer (uncontended).
    buffer_log: float = 30.0
    #: Consuming one entry from a sync buffer (uncontended).
    buffer_consume: float = 30.0
    #: PO agent: scanning one not-yet-replayed window entry for lookahead.
    po_scan_per_entry: float = 7.0
    #: Re-check cost when a stalled sync op wakes and re-tests its order.
    ordering_wait_recheck: float = 60.0
    #: Extra cycles per additional thread concurrently sharing a written
    #: cache line (the cursor variables of TO/PO, contended WoC clocks).
    coherence_penalty: float = 150.0
    #: Multiplier on cursor-line coherence for the TO/PO agents: their
    #: consumption cursors are written on every replayed op *and* spun on
    #: by every stalled thread — read-write ping-pong, the hottest lines
    #: in the system (Section 4.5's scalability complaint).
    cursor_contention_factor: float = 6.0
    #: Multiplier on WoC clock-line coherence: slaves mostly *read* their
    #: local wall (shared state until the single tick per op invalidates),
    #: roughly halving the traffic of a read-write cursor.
    woc_clock_factor: float = 0.5
    #: Multiplier on coherence penalties when threads span both sockets.
    numa_factor: float = 1.0

    def scaled(self, **overrides) -> "CostModel":
        """Return a copy with the given fields replaced (for ablations)."""
        return replace(self, **overrides)


#: Default model used across tests and benches.
DEFAULT_COSTS = CostModel()
