"""Result aggregation and paper-style table formatting."""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.vtime import cycles_to_seconds


@dataclass
class SlowdownReport:
    """Relative run time of one MVEE configuration vs. native."""

    benchmark: str
    agent: str
    variants: int
    native_cycles: float
    mvee_cycles: float

    @property
    def slowdown(self) -> float:
        """MVEE time over native time (1.0 = no overhead)."""
        if self.native_cycles <= 0:
            return float("inf")
        return self.mvee_cycles / self.native_cycles

    @property
    def native_seconds(self) -> float:
        return cycles_to_seconds(self.native_cycles)

    @property
    def mvee_seconds(self) -> float:
        return cycles_to_seconds(self.mvee_cycles)


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (the conventional aggregate for slowdown ratios).

    Raises :class:`ValueError` on non-positive inputs: a zero or negative
    slowdown is always an upstream bug (a broken native baseline, an
    uninitialized cycle count), and silently folding it into the product
    would produce a bogus — possibly complex-valued — aggregate.
    """
    if not values:
        return float("nan")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError(
                f"geometric mean requires positive values; got {value!r}")
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values: list[float]) -> float:
    if not values:
        return float("nan")
    return sum(values) / len(values)


def format_table(headers: list[str], rows: list[list[str]],
                 title: str | None = None) -> str:
    """Render a simple aligned text table (paper-style output)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_bars(series: dict[str, float], width: int = 50,
                unit: str = "x", ceiling: float | None = None) -> str:
    """Render a horizontal ASCII bar chart (the Figure 5 look).

    ``series`` maps labels to values; bars are scaled to the maximum (or
    ``ceiling``).  Values beyond the ceiling are clipped and marked.
    """
    if not series:
        return "(no data)"
    top = ceiling if ceiling is not None else max(series.values())
    top = max(top, 1e-9)
    label_width = max(len(label) for label in series)
    lines = []
    for label, value in series.items():
        filled = int(round(min(value, top) / top * width))
        bar = "#" * filled
        clipped = "+" if value > top else ""
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}"
                     f"{clipped} {value:.2f}{unit}")
    return "\n".join(lines)


def aggregate_slowdowns(reports: list[SlowdownReport],
                        mean: str = "arithmetic") -> dict[tuple, float]:
    """Aggregate slowdowns per (agent, variants) like the paper's Table 1.

    The paper reports "aggregated average slowdowns"; we default to the
    arithmetic mean to match, and expose the geometric mean for the
    methodology-minded (EXPERIMENTS.md reports both).
    """
    mean_fn = arithmetic_mean if mean == "arithmetic" else geometric_mean
    grouped: dict[tuple, list[float]] = {}
    for report in reports:
        grouped.setdefault((report.agent, report.variants),
                           []).append(report.slowdown)
    return {key: mean_fn(values) for key, values in grouped.items()}
