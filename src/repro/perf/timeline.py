"""ASCII timelines of sync-op replay — the Figure 4 visualization.

The paper's Figure 4 shows per-thread lanes with critical-section
enter/leave events and a red stall bar where the TO agent suspends a
slave thread.  :func:`render_timeline` reproduces that view from a
variant's recorded sync trace: one lane per thread, one column per time
bucket, ``#`` where the thread committed sync ops and ``.`` where it was
idle/stalled between its first and last op.

Use with ``MVEE(..., record_sync_trace=True)``:

    outcome = MVEE(program, record_sync_trace=True, ...).run()
    print(render_timeline(outcome.vms[1].sync_trace))
"""

from __future__ import annotations

from repro.sched.vm import TraceEntry


def render_timeline(trace: list[TraceEntry], width: int = 72,
                    label: str = "") -> str:
    """Render one variant's sync trace as per-thread activity lanes."""
    if not trace:
        return "(no sync ops recorded)"
    start = min(entry.time for entry in trace)
    end = max(entry.time for entry in trace)
    span = max(end - start, 1.0)
    bucket = span / width

    lanes: dict[str, list[str]] = {}
    first_seen: dict[str, int] = {}
    last_seen: dict[str, int] = {}
    for entry in trace:
        column = min(int((entry.time - start) / bucket), width - 1)
        lane = lanes.setdefault(entry.thread, [" "] * width)
        lane[column] = "#"
        first_seen.setdefault(entry.thread, column)
        first_seen[entry.thread] = min(first_seen[entry.thread], column)
        last_seen[entry.thread] = max(
            last_seen.get(entry.thread, column), column)

    # Inside a thread's active span, blank columns are waiting time
    # (stalls or compute) — the figure's horizontal extent.
    for thread, lane in lanes.items():
        for column in range(first_seen[thread], last_seen[thread]):
            if lane[column] == " ":
                lane[column] = "."

    label_width = max(len(t) for t in lanes)
    lines = []
    if label:
        lines.append(label)
    lines.append(f"{'':{label_width}}  t={start:.0f} "
                 f"... {end:.0f} cycles "
                 f"({bucket:.0f} cycles/col)")
    for thread in sorted(lanes):
        lines.append(f"{thread.ljust(label_width)} |"
                     + "".join(lanes[thread]) + "|")
    lines.append(f"{'':{label_width}}  # = sync op committed, "
                 ". = waiting/computing")
    return "\n".join(lines)


def summarize_trace(trace: list[TraceEntry]) -> dict[str, dict]:
    """Per-thread summary: op count, active span, mean inter-op gap."""
    stats: dict[str, dict] = {}
    by_thread: dict[str, list[float]] = {}
    for entry in trace:
        by_thread.setdefault(entry.thread, []).append(entry.time)
    for thread, times in by_thread.items():
        times.sort()
        gaps = [b - a for a, b in zip(times, times[1:], strict=False)]
        stats[thread] = {
            "ops": len(times),
            "span_cycles": (times[-1] - times[0]) if len(times) > 1
            else 0.0,
            "mean_gap": (sum(gaps) / len(gaps)) if gaps else 0.0,
        }
    return stats
