"""``repro.prof`` — cycle-accounting profiler, lag analytics, perf gate.

Three layers (see ``docs/PROFILING.md``):

* :mod:`repro.prof.accounting` — :class:`CycleProfiler` attributes every
  simulated cycle a variant thread spends to a category (guest compute,
  syscall service, agent waits, monitor ordering, futex sleeps, core
  queueing, fault recovery) via the ObsHub hook stream; snapshots are
  deterministic :class:`CycleProfile` objects.
* :mod:`repro.prof.analytics` — cross-variant lag series (the quantity
  wall-of-clocks exists to shrink), collapsed-stack flamegraph output,
  and markdown comparison reports.
* :mod:`repro.prof.regress` — the ``repro bench --compare`` regression
  gate: digest identity, wall-clock deltas, profile category shifts,
  and bench-trajectory accumulation.

Attach a profiler with ``ObsHub(profile=True)``; it obeys the same
zero-cost contract as the rest of ``repro.obs`` — no simulated cycles
charged, no randomness consumed, timeline byte-identical when detached.
"""

from repro.prof.accounting import (
    CATEGORIES,
    CycleProfile,
    CycleProfiler,
    classify_wait_key,
)
from repro.prof.analytics import (
    LagTracker,
    collapsed_lines,
    render_report,
    write_flamegraph,
    write_lag_series,
)
from repro.prof.regress import (
    Finding,
    compare_reports,
    exit_code,
    load_report,
    render_findings,
    trajectory_entry,
)
from repro.prof.runner import PROFILE_AGENTS, profile_cell, run_profiles

__all__ = [
    "CATEGORIES",
    "CycleProfile",
    "CycleProfiler",
    "classify_wait_key",
    "LagTracker",
    "collapsed_lines",
    "render_report",
    "write_flamegraph",
    "write_lag_series",
    "Finding",
    "compare_reports",
    "exit_code",
    "load_report",
    "render_findings",
    "trajectory_entry",
    "PROFILE_AGENTS",
    "profile_cell",
    "run_profiles",
]
