"""Cycle accounting: attribute every simulated cycle to a category.

The simulator already knows, at every instant, what each variant thread
is doing — running a committed step, sitting in the core queue, or
parked on a wait key whose *kind* names the subsystem responsible
(``rdv``/``order_clock`` → the monitor, ``woc_buf``/``to_log`` → the
agent, ``futex`` → the kernel, ``fault_stall`` → an injected fault).
The :class:`CycleProfiler` listens to the machine's existing ObsHub
hooks plus three new ones (``thread_created``, ``step_committed``,
``thread_finished``) and tiles each thread's lifetime into contiguous
spans, one category per span:

* a committed step charges its duration to ``guest-compute`` (compute,
  sync ops, annotations), ``syscall-service`` (syscalls, spawn, join),
  or — for a mid-event resume — the category of the wait that parked it
  (the recheck belongs to whatever caused the wait);
* a park→unpark interval charges the wait key's category
  (:func:`classify_wait_key`);
* time between becoming runnable and the next core grant charges
  ``core-queue``.

Because spans are contiguous and never overlap, per-thread category
totals sum to the thread's accounted lifetime, and the profile-wide
total is the exact sum of its categories — the invariant the report and
the tests lean on.  The profiler is a pure observer: it never charges a
simulated cycle, never consumes scheduler randomness, and detaching it
leaves the timeline byte-identical (pinned in ``test_determinism.py``).

Known attribution caveat: monitor/agent overhead delivered through
``GuestThread.carry_cost`` lands inside the *next* committed step and is
therefore charged to that step's category, not to the monitor — the
dominant monitor/agent costs (the waits) are exact, the inline wrapper
costs ride the guest categories.  See ``docs/PROFILING.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.prof.analytics import LagTracker

#: Accounting categories, in canonical (report) order.
CATEGORIES = (
    "guest-compute",    # committed compute/sync-op/annotate steps
    "syscall-service",  # committed syscall/spawn/join steps
    "agent-wait",       # parked on a sync agent (replay order, buffers)
    "monitor-ordering", # parked on the monitor (rendezvous, §4.1 clock)
    "futex-sleep",      # parked on a futex word
    "guest-wait",       # parked on guest/kernel waits (join, pipe, net)
    "core-queue",       # runnable, waiting for a core
    "fault-recovery",   # injected-fault stalls + restart-resync service
)

#: Wait-key kind -> category.  Anything unknown is a guest-level wait.
_WAIT_CATEGORY = {
    # lockstep + §4.1 ordering: the monitor made the thread wait
    "rdv": "monitor-ordering",
    "result": "monitor-ordering",
    "stream": "monitor-ordering",
    "order_clock": "monitor-ordering",
    "order_cs": "monitor-ordering",
    "order_log": "monitor-ordering",
    # sync agents: replay order and buffer backpressure
    "woc_buf": "agent-wait",
    "woc_clock": "agent-wait",
    "woc_full": "agent-wait",
    "to_full": "agent-wait",
    "to_log": "agent-wait",
    "to_next": "agent-wait",
    "po_consume": "agent-wait",
    "po_full": "agent-wait",
    "po_log": "agent-wait",
    "dmt_turn": "agent-wait",
    "recplay": "agent-wait",
    "varan_log": "agent-wait",
    "varan_res": "agent-wait",
    # kernel futex queue
    "futex": "futex-sleep",
    # injected stalls (the watchdog's raison d'être)
    "fault_stall": "fault-recovery",
}

#: Committed-step kind -> category ("resume" is resolved dynamically).
_STEP_CATEGORY = {
    "compute": "guest-compute",
    "syncop": "guest-compute",
    "annotate": "guest-compute",
    "syscall": "syscall-service",
    "spawn": "syscall-service",
    "join": "syscall-service",
}


def classify_wait_key(wait_key) -> str:
    """Category charged while parked on ``wait_key``."""
    kind = wait_key[0] if wait_key else None
    return _WAIT_CATEGORY.get(kind, "guest-wait")


class _ThreadAccount:
    """Accumulating span state for one thread incarnation."""

    __slots__ = ("variant", "thread", "start", "end", "mode", "since",
                 "wait_category", "categories")

    def __init__(self, variant: int, thread: str, now: float):
        self.variant = variant
        self.thread = thread
        self.start = now
        self.end: float | None = None
        #: "queue" | "run" | "blocked"
        self.mode = "queue"
        self.since = now
        #: Category of the current/most recent wait (resume attribution).
        self.wait_category = "syscall-service"
        self.categories: dict[str, float] = {}

    def charge(self, category: str, cycles: float) -> None:
        if cycles:
            self.categories[category] = (
                self.categories.get(category, 0.0) + cycles)


@dataclass
class CycleProfile:
    """Deterministic snapshot of one run's cycle accounting.

    ``threads`` is sorted by (variant, thread); every float in it is a
    pure function of the simulated run, so two snapshots of the same
    seeded run are equal (and ``to_dict`` output is byte-stable through
    ``json.dumps(..., sort_keys=True)``).
    """

    threads: list[dict] = field(default_factory=list)
    machine_cycles: float = 0.0
    #: Lag-series snapshot (see :class:`repro.prof.analytics.LagTracker`).
    lag: dict = field(default_factory=dict)
    #: Futex traffic observed (cross-check for the futex-sleep bucket).
    futex_parks: int = 0
    futex_wakes: int = 0

    def per_category(self) -> dict[str, float]:
        """Category -> total cycles across all variants and threads."""
        totals = {category: 0.0 for category in CATEGORIES}
        for entry in self.threads:
            for category, cycles in entry["categories"].items():
                totals[category] = totals.get(category, 0.0) + cycles
        return totals

    def per_variant(self) -> dict[int, dict[str, float]]:
        """Variant -> category -> cycles."""
        out: dict[int, dict[str, float]] = {}
        for entry in self.threads:
            bucket = out.setdefault(entry["variant"],
                                    {c: 0.0 for c in CATEGORIES})
            for category, cycles in entry["categories"].items():
                bucket[category] = bucket.get(category, 0.0) + cycles
        return out

    @property
    def total_cycles(self) -> float:
        """Total accounted cycles == exact sum of the category totals."""
        return sum(self.per_category().values())

    def to_dict(self) -> dict:
        per_category = self.per_category()
        return {
            "kind": "repro-cycle-profile",
            "machine_cycles": self.machine_cycles,
            "total_cycles": sum(per_category.values()),
            "per_category": per_category,
            "per_variant": {str(variant): categories for variant, categories
                            in sorted(self.per_variant().items())},
            "threads": self.threads,
            "lag": self.lag,
            "futex": {"parks": self.futex_parks,
                      "wakes": self.futex_wakes},
        }


class CycleProfiler:
    """Hook sink building a :class:`CycleProfile` from an ObsHub stream.

    Attach via ``ObsHub(profile=True)`` (or ``hub.attach_profiler``);
    the hub forwards scheduling, park/unpark, step-commit, and agent
    record/replay hooks here.  All methods are cheap dictionary work on
    host time only.
    """

    def __init__(self, lag_sample_every: int = 1):
        self._clock = lambda: 0.0
        #: (variant, thread) -> live account.
        self._accounts: dict[tuple[int, str], _ThreadAccount] = {}
        #: Closed accounts (finished threads, replaced incarnations).
        self._retired: list[_ThreadAccount] = []
        self.lag = LagTracker(sample_every=lag_sample_every)
        self.futex_parks = 0
        self.futex_wakes = 0
        self._finalized_at: float | None = None
        #: Variants resyncing after a restart.  Their *syscall-service*
        #: charges — the committed steps carrying the monitor's
        #: history-replay costs — are recategorized to ``fault-recovery``
        #: until they catch up; re-executed guest compute and wait time
        #: keep their natural categories.  The bucket thus isolates the
        #: monitor overhead of resync, which checkpoint-mode resync
        #: provably shrinks (see ``docs/REPLAY.md``).
        self._recovering: set[int] = set()

    def bind_clock(self, clock) -> None:
        self._clock = clock

    def _category_for(self, variant: int, category: str) -> str:
        if category == "syscall-service" and variant in self._recovering:
            return "fault-recovery"
        return category

    # -- resilience hooks --------------------------------------------------

    def variant_restarted(self, variant: int) -> None:
        self._recovering.add(variant)

    def variant_caught_up(self, variant: int) -> None:
        self._recovering.discard(variant)

    # -- lifecycle hooks ---------------------------------------------------

    def thread_created(self, variant: int, thread_global: str,
                       thread: str) -> None:
        now = self._clock()
        key = (variant, thread)
        old = self._accounts.get(key)
        if old is not None:
            # A restarted variant reuses logical ids: retire the old
            # incarnation at its last accounted point.
            self._close(old, now)
        self._accounts[key] = _ThreadAccount(variant, thread, now)

    def thread_finished(self, variant: int, thread_global: str,
                        thread: str) -> None:
        account = self._accounts.pop((variant, thread), None)
        if account is None:
            return
        self._close(account, self._clock())

    # -- scheduling hooks --------------------------------------------------

    def sched_grant(self, variant: int, thread: str) -> None:
        account = self._accounts.get((variant, thread))
        if account is None:
            return
        now = self._clock()
        # Whatever elapsed since the last accounted point — creation,
        # unpark, or the committed step after which the thread yielded
        # its core — was spent runnable in the queue.
        account.charge(self._category_for(variant, "core-queue"),
                       now - account.since)
        account.mode = "run"
        account.since = now

    def step_committed(self, variant: int, thread_global: str,
                       thread: str, kind: str, duration: float) -> None:
        account = self._accounts.get((variant, thread))
        if account is None:
            return
        if kind == "resume":
            category = account.wait_category
        else:
            category = _STEP_CATEGORY.get(kind, "guest-compute")
        account.charge(self._category_for(variant, category), duration)
        account.since = self._clock()

    def park(self, variant: int, thread: str, wait_key) -> None:
        account = self._accounts.get((variant, thread))
        if account is None:
            return
        account.mode = "blocked"
        account.wait_category = classify_wait_key(wait_key)
        account.since = self._clock()

    def unpark(self, variant: int, thread: str) -> None:
        account = self._accounts.get((variant, thread))
        if account is None:
            return
        now = self._clock()
        account.charge(self._category_for(variant,
                                          account.wait_category),
                       now - account.since)
        account.mode = "queue"
        account.since = now

    # -- agent / kernel hooks ----------------------------------------------

    def sync_record(self, variant: int, thread: str,
                    buffer: str) -> None:
        self.lag.record(self._clock())

    def sync_replay(self, variant: int, thread: str,
                    buffer: str) -> None:
        self.lag.replay(self._clock(), variant)

    def clock_lag(self, variant: int, thread: str, lag: float) -> None:
        self.lag.clock_sample(variant, lag)

    def futex_park(self) -> None:
        self.futex_parks += 1

    def futex_wake(self, woken: int) -> None:
        self.futex_wakes += woken

    # -- snapshot ----------------------------------------------------------

    def _close(self, account: _ThreadAccount, now: float) -> None:
        if account.mode == "blocked":
            account.charge(self._category_for(account.variant,
                                              account.wait_category),
                           now - account.since)
            account.end = now
        elif account.mode == "queue":
            account.charge(self._category_for(account.variant,
                                              "core-queue"),
                           now - account.since)
            account.end = now
        else:
            # Mid-step at close time: the in-flight step was never
            # committed (mirrors busy_cycles accounting), so the
            # account ends at its last committed point.
            account.end = account.since
        self._retired.append(account)

    def finalize(self, now: float | None = None) -> None:
        """Close every still-open account (killed threads, exit_group).

        Idempotent; call once after the run with ``machine.now``.
        """
        now = self._clock() if now is None else now
        self._finalized_at = now
        for key in sorted(self._accounts):
            self._close(self._accounts.pop(key), now)

    def snapshot(self) -> CycleProfile:
        """Deterministic profile over all (live + retired) accounts.

        Accounts of the same (variant, thread) key — e.g. a restarted
        variant's incarnations — are merged by summing categories.
        """
        now = (self._finalized_at if self._finalized_at is not None
               else self._clock())
        merged: dict[tuple[int, str], dict] = {}
        open_accounts = []
        for key in sorted(self._accounts):
            account = self._accounts[key]
            snap = _ThreadAccount(account.variant, account.thread,
                                  account.start)
            snap.categories = dict(account.categories)
            snap.mode = account.mode
            snap.since = account.since
            snap.wait_category = account.wait_category
            self_closed = snap
            self._close_view(self_closed, now)
            open_accounts.append(self_closed)
        for account in list(self._retired) + open_accounts:
            key = (account.variant, account.thread)
            entry = merged.get(key)
            if entry is None:
                merged[key] = {
                    "variant": account.variant,
                    "thread": account.thread,
                    "start": account.start,
                    "end": account.end,
                    "categories": dict(account.categories),
                }
                continue
            entry["start"] = min(entry["start"], account.start)
            entry["end"] = max(entry["end"], account.end)
            for category, cycles in account.categories.items():
                entry["categories"][category] = (
                    entry["categories"].get(category, 0.0) + cycles)
        threads = [merged[key] for key in sorted(merged)]
        for entry in threads:
            entry["categories"] = {
                category: entry["categories"][category]
                for category in CATEGORIES
                if category in entry["categories"]}
        return CycleProfile(
            threads=threads,
            machine_cycles=now,
            lag=self.lag.to_dict(),
            futex_parks=self.futex_parks,
            futex_wakes=self.futex_wakes,
        )

    @staticmethod
    def _close_view(account: _ThreadAccount, now: float) -> None:
        """Close a copied account for snapshotting without mutating the
        live one (lets snapshots be taken mid-run)."""
        if account.mode == "blocked":
            account.charge(account.wait_category, now - account.since)
            account.end = now
        elif account.mode == "queue":
            account.charge("core-queue", now - account.since)
            account.end = now
        else:
            account.end = account.since
