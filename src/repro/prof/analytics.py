"""Profile analytics: cross-variant lag, flamegraphs, markdown reports.

*Lag* is the quantity wall-of-clocks exists to shrink (the paper's §4.5):
how far each follower trails the master's recorded sync-op stream.  The
:class:`LagTracker` counts master ``sync_record`` events and per-variant
``sync_replay`` events and samples ``recorded - replayed`` at every
replay — a lag series in *operations*, stamped with simulated cycles.
Wall-of-clocks additionally reports its per-clock cycle lag through the
``clock_lag`` hook; the tracker folds those into a per-variant summary.

The flamegraph output is the standard collapsed-stack format — one
``frame;frame;frame count`` line per stack — consumable by
``flamegraph.pl``, speedscope, or ``inferno-flamegraph``.  Stacks are
``agent;v<variant>;<thread>;<category>`` with integer cycle counts.

Everything here is a pure function of profile dictionaries, so parallel
profile cells merge deterministically: the parent renders files from
cell results in cell order, and ``--jobs 1`` output is byte-identical to
``--jobs N``.
"""

from __future__ import annotations

import json

from repro.kernel.vtime import cycles_to_seconds


class LagTracker:
    """Follower lag behind the master's sync-op stream.

    ``sample_every`` bounds the series: only every k-th replay appends a
    sample (summaries still see every event).
    """

    def __init__(self, sample_every: int = 1):
        self.sample_every = max(1, sample_every)
        self.recorded = 0
        #: variant -> replayed-op count.
        self.replayed: dict[int, int] = {}
        #: (ts, variant, lag_ops) samples, in replay order.
        self.samples: list[tuple[float, int, int]] = []
        #: variant -> {count, max, sum} over replay-time lags.
        self._stats: dict[int, dict] = {}
        #: variant -> {count, max, sum} over WoC clock-lag cycles.
        self._clock_stats: dict[int, dict] = {}
        self._seen = 0

    def record(self, ts: float) -> None:
        self.recorded += 1

    def replay(self, ts: float, variant: int) -> None:
        count = self.replayed.get(variant, 0) + 1
        self.replayed[variant] = count
        lag = self.recorded - count
        stats = self._stats.setdefault(
            variant, {"count": 0, "max": 0, "sum": 0})
        stats["count"] += 1
        stats["sum"] += lag
        if lag > stats["max"]:
            stats["max"] = lag
        self._seen += 1
        if self._seen % self.sample_every == 0:
            self.samples.append((ts, variant, lag))

    def clock_sample(self, variant: int, lag: float) -> None:
        stats = self._clock_stats.setdefault(
            variant, {"count": 0, "max": 0.0, "sum": 0.0})
        stats["count"] += 1
        stats["sum"] += lag
        if lag > stats["max"]:
            stats["max"] = lag

    def to_dict(self) -> dict:
        def summary(stats: dict) -> dict:
            out = {variant: {
                "count": s["count"],
                "max": s["max"],
                "mean": (s["sum"] / s["count"]) if s["count"] else 0.0,
            } for variant, s in stats.items()}
            return {str(v): out[v] for v in sorted(out)}

        return {
            "recorded": self.recorded,
            "replayed": {str(v): self.replayed[v]
                         for v in sorted(self.replayed)},
            "samples": [[ts, variant, lag]
                        for ts, variant, lag in self.samples],
            "summary": summary(self._stats),
            "clock_lag": summary(self._clock_stats),
        }


# -- flamegraph --------------------------------------------------------------

def collapsed_lines(result: dict) -> list[str]:
    """Collapsed-stack lines for one profile-cell result dict.

    ``agent;v<variant>;<thread>;<category> <cycles>`` — the root frame
    is the agent, so multi-agent files diff and fold side by side.
    """
    agent = result["agent"]
    lines = []
    for entry in result["profile"]["threads"]:
        for category, cycles in entry["categories"].items():
            count = int(round(cycles))
            if count <= 0:
                continue
            lines.append(f"{agent};v{entry['variant']};"
                         f"{entry['thread']};{category} {count}")
    return lines


def write_flamegraph(results: list[dict], path: str) -> int:
    """Write collapsed stacks for all cells, in cell order.

    Returns the number of lines written.  Deterministic in the worker
    count: the input list is already in cell order.
    """
    lines = []
    for result in results:
        lines.extend(collapsed_lines(result))
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
    return len(lines)


def write_lag_series(results: list[dict], path: str) -> int:
    """Write the lag series as JSONL, one sample per line, cell order.

    Each line: ``{"agent", "variant", "ts", "lag"}`` — ``ts`` in
    simulated cycles, ``lag`` in sync operations behind the master.
    """
    written = 0
    with open(path, "w") as handle:
        for result in results:
            agent = result["agent"]
            for ts, variant, lag in result["lag"]["samples"]:
                handle.write(json.dumps(
                    {"agent": agent, "variant": variant, "ts": ts,
                     "lag": lag}, sort_keys=True))
                handle.write("\n")
                written += 1
    return written


# -- markdown report ---------------------------------------------------------

def _fmt_cycles(cycles: float) -> str:
    return f"{cycles:,.0f}"


def _category_table(per_category: dict, total: float) -> list[str]:
    lines = ["| category | cycles | share |",
             "|---|---:|---:|"]
    for category, cycles in per_category.items():
        share = (cycles / total * 100.0) if total else 0.0
        lines.append(f"| {category} | {_fmt_cycles(cycles)} "
                     f"| {share:.1f}% |")
    lines.append(f"| **total** | **{_fmt_cycles(total)}** | 100.0% |")
    return lines


def _lag_section(lag: dict) -> list[str]:
    lines = [f"Master recorded {lag['recorded']} sync op(s); "
             "follower lag at replay (operations behind the master):",
             ""]
    summary = lag.get("summary", {})
    if not summary:
        return lines + ["(no replay activity observed)"]
    lines += ["| variant | replays | max lag | mean lag |",
              "|---|---:|---:|---:|"]
    for variant, stats in summary.items():
        lines.append(f"| v{variant} | {stats['count']} "
                     f"| {stats['max']} | {stats['mean']:.2f} |")
    clock = lag.get("clock_lag", {})
    if clock:
        lines += ["", "Wall-of-clocks per-clock cycle lag:",
                  "", "| variant | samples | max (cycles) | mean |",
                  "|---|---:|---:|---:|"]
        for variant, stats in clock.items():
            lines.append(f"| v{variant} | {stats['count']} "
                         f"| {stats['max']:.0f} "
                         f"| {stats['mean']:.1f} |")
    return lines


def render_report(results: list[dict], title: str | None = None) -> str:
    """Markdown report over one or more profile-cell results.

    One section per agent; a cross-agent comparison table when more
    than one agent was profiled.  Per-category totals in each section
    sum exactly to that section's total accounted cycles (both come
    from the same profile snapshot).
    """
    first = results[0]
    lines = [f"# {title or 'repro profile: ' + first['benchmark']}",
             "",
             f"- workload: `{first['benchmark']}` "
             f"(scale {first['scale']}, seed {first['seed']}, "
             f"{first['variants']} variants)",
             f"- agents: {', '.join(r['agent'] for r in results)}",
             ""]
    if len(results) > 1:
        lines += ["## Agent comparison", "",
                  "| agent | verdict | machine cycles | accounted "
                  "| slowdown | max lag (ops) |",
                  "|---|---|---:|---:|---:|---:|"]
        for result in results:
            profile = result["profile"]
            slowdown = (f"{result['slowdown']:.2f}x"
                        if result.get("slowdown") else "-")
            summary = result["lag"].get("summary", {})
            max_lag = max((s["max"] for s in summary.values()),
                          default=0)
            lines.append(
                f"| {result['agent']} | {result['verdict']} "
                f"| {_fmt_cycles(result['machine_cycles'])} "
                f"| {_fmt_cycles(profile['total_cycles'])} "
                f"| {slowdown} | {max_lag} |")
        lines += ["", "Category shares per agent:", "",
                  "| category | " +
                  " | ".join(r["agent"] for r in results) + " |",
                  "|---|" + "---:|" * len(results)]
        categories = list(first["profile"]["per_category"])
        for category in categories:
            row = [f"| {category} "]
            for result in results:
                profile = result["profile"]
                total = profile["total_cycles"]
                cycles = profile["per_category"].get(category, 0.0)
                share = (cycles / total * 100.0) if total else 0.0
                row.append(f"| {share:.1f}% ")
            lines.append("".join(row) + "|")
        lines.append("")
    for result in results:
        profile = result["profile"]
        total = profile["total_cycles"]
        lines += [f"## {result['agent']}", "",
                  f"- verdict: {result['verdict']}",
                  f"- machine wall: "
                  f"{_fmt_cycles(result['machine_cycles'])} cycles "
                  f"({cycles_to_seconds(result['machine_cycles']) * 1e3:.2f} "
                  "simulated ms)",
                  f"- accounted thread cycles: {_fmt_cycles(total)} "
                  "(category totals sum to this exactly)"]
        if result.get("slowdown"):
            lines.append(f"- slowdown vs native: "
                         f"{result['slowdown']:.2f}x")
        futex = profile.get("futex", {})
        if futex.get("parks"):
            lines.append(f"- futex traffic: {futex['parks']} park(s), "
                         f"{futex['wakes']} woken")
        lines += [""] + _category_table(profile["per_category"], total)
        lines += ["", "### Cross-variant lag", ""]
        lines += _lag_section(result["lag"])
        lines.append("")
    return "\n".join(lines)
