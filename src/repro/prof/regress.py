"""The perf-regression gate: canonically compare two bench reports.

``repro bench --compare REF`` (and ``repro bench diff OLD NEW``) turn
the committed ``BENCH_par.json`` into a machine-checked contract, the
way the gem5 reproducibility effort keeps a growing simulator honest:

* **digest identity** (hard): the sha256 over canonical cells covers
  only simulated quantities, so two runs of the same matrix on *any*
  host must agree — a mismatch means somebody moved a simulated cycle;
* **cycle-profile category shifts** (hard): the reference's profiled
  cell is re-profiled and its per-category shares compared — catches
  accounting regressions that leave end-to-end cycle totals intact;
* **wall-clock deltas** (soft by default): serial wall and per-cell
  walls beyond ``wall_tolerance`` raise warnings (``fail_on_wall=True``
  promotes them) — host measurements are honest but machine-dependent,
  so CI treats them as advisories.

Reports comparing different matrices (benchmarks, agents, variant
counts, scale, or seed) fail outright: their digests measure different
things, and a "pass" would be vacuous.

Comparisons also feed the *trajectory*: ``--compare`` appends a compact
entry for the reference into the new report's ``trajectory`` list, so a
BENCH file regenerated against its predecessor accumulates the repo's
performance history.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ReproError

#: Matrix fields that must match for two reports to be comparable.
MATRIX_IDENTITY = ("benchmarks", "agents", "variant_counts", "scale",
                   "seed")

#: Default relative wall-clock tolerance (25% — forked CI runners jitter).
DEFAULT_WALL_TOLERANCE = 0.25

#: Max absolute drift allowed in a profile category's share of total.
DEFAULT_PROFILE_TOLERANCE = 0.001

#: Per-cell wall deltas below this floor (seconds) are never flagged.
CELL_WALL_FLOOR_S = 0.05

#: Max absolute growth (fraction of cell wall) tolerated in telemetry's
#: self-measured overhead before the warn-only finding fires.  On quick
#: matrices the measured cell is tiny and the overhead fraction itself
#: is large and jittery, so the effective threshold also scales with
#: the reference: ``max(0.05, 0.25 * ref_frac)``.
DEFAULT_OVERHEAD_TOLERANCE = 0.05


@dataclass
class Finding:
    """One comparison verdict line."""

    level: str   # "fail" | "warn" | "info"
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.level.upper():4s}] {self.code}: {self.message}"


def load_report(path: str, expected_kind: str = "repro-bench") -> dict:
    """Load a bench report, raising :class:`ReproError` on anything a
    user can plausibly hand us: missing, empty, truncated, wrong kind."""
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise ReproError(f"cannot read bench report {path!r}: "
                         f"{exc.strerror or exc}") from exc
    if not text.strip():
        raise ReproError(f"bench report {path!r} is empty")
    try:
        report = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"bench report {path!r} is not valid JSON "
                         f"(truncated?): {exc}") from exc
    if not isinstance(report, dict) or report.get("kind") != expected_kind:
        raise ReproError(f"{path!r} is not a {expected_kind} report "
                         f"(missing kind == {expected_kind!r})")
    return report


def compare_reports(new: dict, ref: dict,
                    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
                    profile_tolerance: float = DEFAULT_PROFILE_TOLERANCE,
                    fail_on_wall: bool = False) -> list[Finding]:
    """Compare a fresh report against a reference; findings in order."""
    findings: list[Finding] = []
    new_matrix = new.get("matrix", {})
    ref_matrix = ref.get("matrix", {})
    mismatched = [key for key in MATRIX_IDENTITY
                  if new_matrix.get(key) != ref_matrix.get(key)]
    if mismatched:
        findings.append(Finding(
            "fail", "matrix-mismatch",
            "reports sweep different matrices "
            f"({', '.join(mismatched)} differ) — digests are not "
            "comparable"))
        return findings

    if new.get("digest") != ref.get("digest"):
        findings.append(Finding(
            "fail", "digest-divergence",
            f"canonical digest changed: {ref.get('digest')} -> "
            f"{new.get('digest')} (a simulated cycle moved)"))
    else:
        findings.append(Finding(
            "info", "digest",
            f"canonical digest identical ({new.get('digest')})"))

    failed = (new.get("serial", {}).get("failed", 0) or 0)
    parallel = new.get("parallel")
    if parallel:
        failed += parallel.get("failed", 0) or 0
    if failed:
        findings.append(Finding(
            "fail", "failed-cells",
            f"{failed} cell(s) failed in the new run"))
    if new.get("identical") is False:
        findings.append(Finding(
            "fail", "parallel-divergence",
            "parallel output differed from serial in the new run"))

    wall_level = "fail" if fail_on_wall else "warn"
    new_wall = new.get("serial", {}).get("wall_s")
    ref_wall = ref.get("serial", {}).get("wall_s")
    if new_wall is not None and ref_wall:
        delta = (new_wall - ref_wall) / ref_wall
        if delta > wall_tolerance:
            findings.append(Finding(
                wall_level, "serial-wall",
                f"serial wall-clock regressed {delta * 100.0:+.1f}% "
                f"({ref_wall:.2f}s -> {new_wall:.2f}s, tolerance "
                f"{wall_tolerance * 100.0:.0f}%)"))
        else:
            findings.append(Finding(
                "info", "serial-wall",
                f"serial wall-clock {delta * 100.0:+.1f}% "
                f"({ref_wall:.2f}s -> {new_wall:.2f}s)"))

    new_cells = new.get("serial", {}).get("cell_wall_s")
    ref_cells = ref.get("serial", {}).get("cell_wall_s")
    if new_cells and ref_cells and len(new_cells) == len(ref_cells):
        offenders = []
        for index, (new_s, ref_s) in enumerate(zip(new_cells,
                                                   ref_cells,
                                                   strict=True)):
            if ref_s <= 0 or (new_s - ref_s) < CELL_WALL_FLOOR_S:
                continue
            delta = (new_s - ref_s) / ref_s
            if delta > wall_tolerance:
                offenders.append((delta, index, ref_s, new_s))
        if offenders:
            offenders.sort(reverse=True)
            worst = ", ".join(
                f"cell {index} {delta * 100.0:+.0f}% "
                f"({ref_s:.2f}s->{new_s:.2f}s)"
                for delta, index, ref_s, new_s in offenders[:3])
            findings.append(Finding(
                wall_level, "cell-wall",
                f"{len(offenders)} cell(s) beyond tolerance: {worst}"))

    new_profile = new.get("profile")
    ref_profile = ref.get("profile")
    if new_profile and ref_profile:
        findings.extend(_compare_profiles(new_profile, ref_profile,
                                          profile_tolerance))
    elif new_profile and not ref_profile:
        findings.append(Finding(
            "info", "profile",
            "reference has no cycle profile (pre-v2 report); "
            "category-shift check skipped"))
    findings.extend(_compare_overhead(new.get("observability_overhead"),
                                      ref.get("observability_overhead")))
    return findings


def _compare_overhead(new_oh: dict | None,
                      ref_oh: dict | None) -> list[Finding]:
    """Telemetry's self-measured host cost: warn-only on regression.

    Host wall jitters across runners, so overhead growth never fails a
    comparison — but a run whose outputs moved *with telemetry
    attached* broke the zero-perturbation contract, and that fails.
    """
    findings: list[Finding] = []
    if not new_oh:
        return findings
    if new_oh.get("digest_identical") is False:
        findings.append(Finding(
            "fail", "telemetry-perturbation",
            "cell output changed with telemetry attached — the "
            "zero-perturbation contract is broken"))
    new_frac = new_oh.get("overhead_frac")
    ref_frac = (ref_oh or {}).get("overhead_frac")
    if new_frac is None:
        return findings
    if ref_frac is None:
        findings.append(Finding(
            "info", "observability-overhead",
            f"telemetry overhead {new_frac * 100.0:+.1f}% of cell wall "
            "(reference has no observability_overhead block)"))
        return findings
    drift = new_frac - ref_frac
    tolerance = max(DEFAULT_OVERHEAD_TOLERANCE, 0.25 * abs(ref_frac))
    if drift > tolerance:
        findings.append(Finding(
            "warn", "observability-overhead",
            f"telemetry overhead grew {drift * 100.0:+.1f}pp "
            f"({ref_frac * 100.0:+.1f}% -> {new_frac * 100.0:+.1f}% "
            "of cell wall)"))
    else:
        findings.append(Finding(
            "info", "observability-overhead",
            f"telemetry overhead {new_frac * 100.0:+.1f}% of cell wall "
            f"({drift * 100.0:+.1f}pp vs reference)"))
    return findings


def _compare_profiles(new_profile: dict, ref_profile: dict,
                      tolerance: float) -> list[Finding]:
    new_total = new_profile.get("total_cycles") or 0.0
    ref_total = ref_profile.get("total_cycles") or 0.0
    if not new_total or not ref_total:
        return []
    shifts = []
    categories = sorted(set(new_profile.get("per_category", {}))
                        | set(ref_profile.get("per_category", {})))
    for category in categories:
        new_share = (new_profile["per_category"].get(category, 0.0)
                     / new_total)
        ref_share = (ref_profile["per_category"].get(category, 0.0)
                     / ref_total)
        drift = new_share - ref_share
        if abs(drift) > tolerance:
            shifts.append((abs(drift), category, ref_share, new_share))
    if not shifts:
        return [Finding("info", "profile",
                        "cycle-profile category shares unchanged")]
    shifts.sort(reverse=True)
    detail = ", ".join(
        f"{category} {ref_share * 100.0:.2f}%->{new_share * 100.0:.2f}%"
        for _, category, ref_share, new_share in shifts[:4])
    return [Finding(
        "fail", "profile-shift",
        f"cycle-profile category share(s) moved beyond "
        f"{tolerance * 100.0:.2f}pp: {detail}")]


def exit_code(findings: list[Finding]) -> int:
    return 1 if any(f.level == "fail" for f in findings) else 0


def render_findings(findings: list[Finding]) -> str:
    lines = ["bench comparison:"]
    lines += [f"  {finding}" for finding in findings]
    fails = sum(1 for f in findings if f.level == "fail")
    warns = sum(1 for f in findings if f.level == "warn")
    lines.append(f"  -- {fails} failure(s), {warns} warning(s): "
                 + ("REGRESSION" if fails else "ok"))
    return "\n".join(lines)


def trajectory_entry(report: dict) -> dict:
    """Compact history record for one reference report.

    Environment-era fields (``environment``, ``warm_wall_s``) are
    included only when the report carries them, so entries from pre-v2
    references keep their historical shape.
    """
    serial = report.get("serial", {})
    entry = {
        "generated_unix": report.get("generated_unix"),
        "format_version": report.get("format_version"),
        "digest": report.get("digest"),
        "cells": report.get("matrix", {}).get("cells"),
        "jobs": report.get("jobs"),
        "serial_wall_s": (round(serial["wall_s"], 3)
                          if serial.get("wall_s") is not None else None),
        "identical": report.get("identical"),
    }
    if report.get("environment") is not None:
        entry["environment"] = report["environment"]
    parallel = report.get("parallel") or {}
    if parallel.get("warm_wall_s") is not None:
        entry["warm_wall_s"] = round(parallel["warm_wall_s"], 3)
    return entry
