"""Profile runs: one MVEE execution per agent, through the parallel engine.

A *profile cell* is a pure function of ``(benchmark, agent, variants,
scale, seed)`` returning a plain dict — every field is a simulated
quantity (no host wall-clock), so cells are picklable, cacheable, and
byte-identical whether they ran inline or in a forked worker.  The
``repro profile`` CLI fans the requested agents out via
:func:`repro.par.engine.run_cells` and renders flamegraph/lag/report
artifacts from the results *in cell order*, which makes the artifacts
deterministic in ``--jobs``.

``nginx`` is special-cased: it is the §5.5 server workload (network +
traffic driver), not a synthetic twin, so it has no native baseline and
runs through :func:`repro.experiments.runner.run_nginx_condition` with
the full instrumentation condition.
"""

from __future__ import annotations

from repro.par.engine import CellTask, raise_failures, run_cells

#: Agents `repro profile` compares (the paper's three main mechanisms).
PROFILE_AGENTS = ("total_order", "partial_order", "wall_of_clocks")


def profile_cell(benchmark: str, agent: str, variants: int,
                 scale: float, seed: int,
                 lag_sample_every: int = 1) -> dict:
    """Run one profiled MVEE execution (module-level: pickled by
    reference into engine workers) and return a plain-data result."""
    from repro.core.mvee import run_mvee
    from repro.experiments.runner import (
        PAPER_CORES,
        native_cycles,
        run_nginx_condition,
    )
    from repro.obs import ObsHub
    from repro.workloads.spec import spec_by_name
    from repro.workloads.synthetic import SyntheticWorkload

    hub = ObsHub(trace=False, profile=True,
                 lag_sample_every=lag_sample_every)
    if benchmark == "nginx":
        native = None
        outcome = run_nginx_condition(True, seed=seed,
                                      variants=variants, agent=agent,
                                      obs=hub)
    else:
        native = native_cycles(benchmark, scale, seed, PAPER_CORES)
        program = SyntheticWorkload(spec_by_name(benchmark), scale=scale)
        outcome = run_mvee(program, variants=variants, agent=agent,
                           seed=seed, cores=PAPER_CORES,
                           max_cycles=native * 400, obs=hub)
    hub.prof.finalize(outcome.machine.now)
    profile = hub.prof.snapshot()
    return {
        "benchmark": benchmark,
        "agent": agent,
        "variants": variants,
        "scale": scale,
        "seed": seed,
        "verdict": outcome.verdict,
        "machine_cycles": outcome.cycles,
        "native_cycles": native,
        "slowdown": (outcome.cycles / native) if native else None,
        "profile": profile.to_dict(),
        "lag": profile.lag,
    }


def run_profiles(benchmark: str, agents, variants: int = 2,
                 scale: float = 0.25, seed: int = 1, jobs: int = 1,
                 env: str | None = None,
                 lag_sample_every: int = 1) -> list[dict]:
    """Profile ``benchmark`` under each agent; results in agent order.

    Each cell gets the user's seed unchanged (cells differ by agent, so
    derivation is unnecessary and identical seeds keep runs comparable);
    ``jobs`` shards cells across workers in the ``env`` execution
    environment without changing the output.
    """
    tasks = [CellTask(sweep_id="profile", index=index, fn=profile_cell,
                      kwargs=dict(benchmark=benchmark, agent=agent,
                                  variants=variants, scale=scale,
                                  seed=seed,
                                  lag_sample_every=lag_sample_every))
             for index, agent in enumerate(agents)]
    results = raise_failures(run_cells(tasks, jobs=jobs, env=env))
    return [result.value for result in results]
