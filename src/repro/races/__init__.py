"""repro.races — two-sided race detection for the sync-op pipeline.

Static side (:mod:`repro.races.lockset`): an Eraser-style lockset lint
over the analysis mini-IR, reusing the Steensgaard/Andersen points-to
results to find shared globals with no consistently-held lock.

Dynamic side (:mod:`repro.races.detector`): a FastTrack-style
vector-clock happens-before detector attached to the machine behind the
zero-cost ``races is not None`` hook pattern, reporting unordered
conflicting accesses at un-identified sites.

Cross-checker (:mod:`repro.races.coverage`): diffs dynamic race reports
against the statically identified site set — each gap *is* the
Listing-2 false negative, named and paired with a remediation.

Deadlock side (:mod:`repro.races.deadlock`): per-variant held-sets and a
runtime wait-for-graph behind the same ``deadlocks is not None`` hook
pattern, detecting guest lock-order deadlocks at cycle formation — the
dynamic mirror of :mod:`repro.analysis.lockorder`.
"""

from repro.races.coverage import (
    REFACTOR,
    TREAT_VOLATILE,
    CoverageGap,
    CoverageReport,
    corroborate,
    cross_check,
    primitive_of,
)
from repro.races.deadlock import (
    DeadlockDetector,
    DeadlockRecord,
    DeadlockReport,
    DeadlockThread,
)
from repro.races.detector import (
    AccessRecord,
    RaceDetector,
    RaceRecord,
    RaceReport,
    granule_of,
)
from repro.races.lockset import (
    LintAccess,
    RaceCandidate,
    RaceLint,
    lint_corpus,
    lint_module,
)
from repro.races.vc import Epoch, VectorClock, join

__all__ = [
    "REFACTOR",
    "TREAT_VOLATILE",
    "AccessRecord",
    "CoverageGap",
    "CoverageReport",
    "DeadlockDetector",
    "DeadlockRecord",
    "DeadlockReport",
    "DeadlockThread",
    "Epoch",
    "LintAccess",
    "RaceCandidate",
    "RaceDetector",
    "RaceLint",
    "RaceRecord",
    "RaceReport",
    "VectorClock",
    "corroborate",
    "cross_check",
    "granule_of",
    "join",
    "lint_corpus",
    "lint_module",
    "primitive_of",
]
