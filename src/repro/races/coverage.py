"""The cross-checker: dynamic races × static identification = coverage gaps.

This is the headline question the subsystem answers.  The static
pipeline (§4.3–4.4) hands the MVEE a set of identified sync-op sites;
the dynamic detector, run with that same set as its happens-before
vocabulary, reports races at the sites the set does *not* cover.  Each
such race is not merely a bug report — it is direct evidence that a
synchronization primitive escaped identification, i.e. the Listing-2
false negative made observable:

* the races involve only plain loads/stores → a volatile-flag style
  primitive with no LOCK/XCHG root; remediation:
  ``treat_volatile_as_sync`` (re-run identification with the paper's
  over-approximating extension);
* the races involve RMWs (cas/xchg/fetch_add) at un-identified sites →
  the primitive has lock-free roots the scan never saw (intrinsics the
  build lowered differently, hand-written asm); remediation:
  ``refactor_to_fixpoint`` (the paper's §5.5 workflow: refactor the
  primitive until re-running the analysis reaches a fixpoint covering
  every site).

The nginx workload is the acceptance test: un-instrumented custom
primitives must yield gaps naming ``nginx.spinlock``/``nginx.queue``;
with the full site set instrumented the report must be empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.races.detector import RaceRecord, RaceReport

#: Remediation tags (the two knobs the analysis pipeline offers).
TREAT_VOLATILE = "treat_volatile_as_sync"
REFACTOR = "refactor_to_fixpoint"

#: Ops that write without a read-modify-write root.
_PLAIN_OPS = frozenset({"load", "store"})


def primitive_of(site: str) -> str:
    """The primitive a site label belongs to.

    Site labels follow ``library.primitive.operation.insn`` (e.g.
    ``nginx.spinlock.lock.cmpxchg``); the primitive is everything up to
    the last two components.  Short labels degrade gracefully.
    """
    parts = site.split(".")
    if len(parts) <= 2:
        return parts[0]
    return ".".join(parts[:-2])


@dataclass(frozen=True)
class CoverageGap:
    """One primitive the static pipeline missed, proven racy at runtime."""

    primitive: str
    sites: frozenset[str]
    ops: frozenset[str]
    races: tuple[RaceRecord, ...]
    remediation: str
    #: Whether the static lockset lint independently flagged any of
    #: these sites (set by :func:`corroborate`; None = not checked).
    lint_agrees: bool | None = None

    @property
    def occurrences(self) -> int:
        return len(self.races)

    def to_dict(self) -> dict:
        return {"primitive": self.primitive,
                "sites": sorted(self.sites),
                "ops": sorted(self.ops),
                "races": len(self.races),
                "remediation": self.remediation,
                "lint_agrees": self.lint_agrees}

    def __str__(self) -> str:
        sites = ", ".join(sorted(self.sites))
        return (f"{self.primitive}: {len(self.races)} race(s) at "
                f"un-identified site(s) [{sites}] — suggest "
                f"{self.remediation}")


@dataclass
class CoverageReport:
    """Result of one cross-check run."""

    workload: str
    identified_sites: frozenset[str]
    gaps: list[CoverageGap] = field(default_factory=list)
    #: Dynamic races at *identified* sites — should be empty (an
    #: identified site produces HB edges, not plain accesses); non-empty
    #: means the sync-site predicate and the detector disagree.
    covered_races: int = 0

    @property
    def clean(self) -> bool:
        return not self.gaps

    def gap_for(self, primitive: str) -> CoverageGap | None:
        for gap in self.gaps:
            if gap.primitive == primitive:
                return gap
        return None

    def missed_sites(self) -> frozenset[str]:
        sites: set[str] = set()
        for gap in self.gaps:
            sites |= gap.sites
        return frozenset(sites)

    def to_dict(self) -> dict:
        return {"workload": self.workload,
                "identified_sites": len(self.identified_sites),
                "gaps": [gap.to_dict() for gap in self.gaps],
                "covered_races": self.covered_races}

    def summary(self) -> str:
        if self.clean:
            return (f"{self.workload}: no coverage gaps "
                    f"({len(self.identified_sites)} identified sites "
                    f"confirmed sufficient)")
        return (f"{self.workload}: {len(self.gaps)} coverage gap(s) — "
                f"{len(self.missed_sites())} site(s) escaped "
                f"identification")


def _suggest(ops: frozenset[str]) -> str:
    """Pick the remediation from the shape of the racing accesses."""
    if ops <= _PLAIN_OPS:
        return TREAT_VOLATILE
    return REFACTOR


def cross_check(report: RaceReport, identified_sites: Iterable[str],
                workload: str = "unknown") -> CoverageReport:
    """Diff a dynamic race report against the identified site set."""
    identified = frozenset(identified_sites)
    result = CoverageReport(workload=workload,
                            identified_sites=identified)
    by_primitive: dict[str, list[RaceRecord]] = {}
    for race in report.races:
        missed = race.sites() - identified
        if not missed:
            result.covered_races += 1
            continue
        # Attribute the race to every missed primitive it touches
        # (cross-primitive races name both).
        for primitive in sorted({primitive_of(s) for s in missed}):
            by_primitive.setdefault(primitive, []).append(race)
    for primitive in sorted(by_primitive):
        races = tuple(by_primitive[primitive])
        sites: set[str] = set()
        ops: set[str] = set()
        for race in races:
            sites |= {s for s in race.sites()
                      if s not in identified
                      and primitive_of(s) == primitive}
            ops |= {race.prior.op, race.current.op}
        result.gaps.append(CoverageGap(
            primitive=primitive, sites=frozenset(sites),
            ops=frozenset(ops), races=races,
            remediation=_suggest(frozenset(ops))))
    return result


def corroborate(coverage: CoverageReport, lint) -> CoverageReport:
    """Annotate each gap with whether the lockset lint agrees.

    ``lint`` is a :class:`repro.races.lockset.RaceLint` (or a list of
    them) from the *same* code base; a gap whose sites intersect the
    lint's candidate sites is independently confirmed by static
    analysis — double evidence that the primitive must be fed back into
    identification.
    """
    lints = lint if isinstance(lint, (list, tuple)) else [lint]
    flagged: set[str] = set()
    for item in lints:
        flagged |= item.candidate_sites()
    coverage.gaps = [
        CoverageGap(primitive=gap.primitive, sites=gap.sites,
                    ops=gap.ops, races=gap.races,
                    remediation=gap.remediation,
                    lint_agrees=bool(gap.sites & flagged))
        for gap in coverage.gaps]
    return coverage
