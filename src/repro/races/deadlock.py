"""The dynamic side: per-variant held-sets and a runtime wait-for-graph.

Attached to a :class:`~repro.sched.machine.Machine` as
``machine.deadlocks`` (the same zero-cost ``is not None`` hook contract
as ``obs`` / ``faults`` / ``races`` / ``replay``), the detector watches
two event streams:

* **committed SyncOps** (:meth:`DeadlockDetector.on_sync_op`), from
  which lock ownership is reconstructed *structurally* — no site
  knowledge needed: a successful ``cas(0 -> nonzero)`` or an ``xchg``
  of a nonzero value returning 0 acquires the word; a store of 0, a
  ``cas`` to 0, or an ``xchg(0)`` by the owner releases it.  This
  covers the guest SpinLock and Mutex exactly and is inert for ticket
  locks, semaphores, barriers and condvars (their words never gain an
  owner, so they can never contribute a wait-for edge).
* **futex parking** (:meth:`DeadlockDetector.on_futex_wait`, hooked in
  :class:`~repro.kernel.futex.FutexTable`): a thread blocking on a word
  somebody owns adds a wait-for edge.  Each thread has at most one
  outgoing edge, so the cycle check at edge-insertion time is a linear
  chain walk — a guest deadlock is detected *at cycle formation*, in
  bounded time, instead of burning the watchdog budget.

On a cycle the detector flags the machine
(:meth:`~repro.sched.machine.Machine.flag_guest_deadlock`), which ends
the run with a ``deadlock`` verdict naming the cycle and the held /
wanted locks.  Like the race detector, it never charges simulated
cycles, never consumes scheduler randomness, and never parks threads:
clean runs with the detector attached are cycle-identical to detached
runs (pinned in ``tests/test_determinism.py``).

The static mirror is :mod:`repro.analysis.lockorder`;
:func:`repro.analysis.lockorder.cross_check` consumes this module's
:class:`DeadlockReport` to classify each static candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Substring marking an acquisition site as a non-blocking attempt
#: (kept in sync with :data:`repro.analysis.lockorder.TRYLOCK_MARKER`).
TRYLOCK_MARKER = ".trylock"


def _logical(tid: str) -> str:
    """``v0:main`` -> ``main`` (global ids are ``v<variant>:<logical>``)."""
    return tid.split(":", 1)[1] if ":" in tid else tid


@dataclass(frozen=True)
class DeadlockThread:
    """One thread on a wait-for cycle."""

    thread: str                      # logical id, stable across variants
    holds: tuple[int, ...]           # lock words owned
    hold_sites: tuple[str, ...]      # acquisition site of each held word
    wants: int                       # the word this thread is parked on
    wants_site: str | None           # site of the failed acquire, if seen

    def to_dict(self) -> dict:
        return {"thread": self.thread, "holds": list(self.holds),
                "hold_sites": list(self.hold_sites), "wants": self.wants,
                "wants_site": self.wants_site}

    def __str__(self) -> str:
        held = ", ".join(f"{a:#x}" for a in self.holds) or "-"
        return f"{self.thread} holds [{held}] wants {self.wants:#x}"


@dataclass(frozen=True)
class DeadlockRecord:
    """One detected wait-for cycle (the ``deadlock`` verdict payload)."""

    variant: int
    at_cycles: float
    threads: tuple[DeadlockThread, ...]

    def cycle_name(self) -> str:
        names = [t.thread for t in self.threads]
        return " -> ".join(names + names[:1])

    def locks(self) -> tuple[int, ...]:
        """The lock words forming the cycle."""
        return tuple(t.wants for t in self.threads)

    def sites(self) -> frozenset[str]:
        """Every site label involved: hold sites + failed-acquire sites."""
        sites: set[str] = set()
        for thread in self.threads:
            sites.update(thread.hold_sites)
            if thread.wants_site is not None:
                sites.add(thread.wants_site)
        return frozenset(sites)

    def to_dict(self) -> dict:
        return {"variant": self.variant, "at_cycles": self.at_cycles,
                "cycle": self.cycle_name(),
                "threads": [t.to_dict() for t in self.threads]}

    def __str__(self) -> str:
        return (f"deadlock in v{self.variant} at "
                f"{self.at_cycles:.0f} cycles: {self.cycle_name()}")


@dataclass
class DeadlockReport:
    """Everything one detector session saw."""

    records: list[DeadlockRecord] = field(default_factory=list)
    acquires_seen: int = 0
    releases_seen: int = 0
    waits_seen: int = 0
    #: Every site label that reached the detector (exercised code).
    observed_sites: set[str] = field(default_factory=set)
    #: Trylock-marked sites seen at least once.
    guard_sites: set[str] = field(default_factory=set)
    #: Failed trylock attempts — the guard doing its job.
    guard_refusals: int = 0

    @property
    def deadlocked(self) -> bool:
        return bool(self.records)

    def summary(self) -> str:
        if not self.records:
            guard = (f", {self.guard_refusals} trylock refusal(s)"
                     if self.guard_refusals else "")
            return (f"no deadlock ({self.acquires_seen} acquire(s), "
                    f"{self.releases_seen} release(s), "
                    f"{self.waits_seen} futex wait(s){guard})")
        first = self.records[0]
        return (f"{len(self.records)} deadlock cycle(s); first: "
                f"{first.cycle_name()} in v{first.variant}")


class DeadlockDetector:
    """Held-set tracker + wait-for graph for one machine run."""

    def __init__(self):
        self.report = DeadlockReport()
        self.obs = None
        self._clock = lambda: 0.0
        self._machine = None
        #: (variant, addr) -> owning thread global id.
        self._holders: dict[tuple[int, int], str] = {}
        #: (variant, addr) -> site label of the owning acquisition.
        self._hold_sites: dict[tuple[int, int], str | None] = {}
        #: thread global id -> set of owned addrs.
        self._held: dict[str, set[int]] = {}
        #: thread global id -> (variant, addr) it is parked on.
        self._waiting: dict[str, tuple[int, int]] = {}
        #: thread global id -> (addr, site) of its last failed acquire.
        self._last_attempt: dict[str, tuple[int, str | None]] = {}
        self._seen_cycles: set[tuple] = set()

    # -- wiring ----------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Attach the machine's simulated clock (``lambda: machine.now``)."""
        self._clock = clock

    def bind_obs(self, hub) -> None:
        """Mirror each detected cycle into an ObsHub's deadlock log."""
        self.obs = hub

    def bind_machine(self, machine) -> None:
        """Let a detected cycle end the run via the machine's sticky
        deadlock flag (unit tests may leave this unbound)."""
        self._machine = machine

    def reset_variant(self, variant: int) -> None:
        """Forget one variant's state (quarantine-restart support).

        A restarted variant has fresh memory; stale ownership would
        manufacture false wait-for edges against the new incarnation.
        """
        prefix = f"v{variant}:"
        for mapping in (self._held, self._waiting, self._last_attempt):
            for tid in [t for t in mapping if t.startswith(prefix)]:
                del mapping[tid]
        for mapping in (self._holders, self._hold_sites):
            for key in [k for k in mapping if k[0] == variant]:
                del mapping[key]

    # -- machine hooks ---------------------------------------------------

    def on_sync_op(self, vm, thread, event, value) -> None:
        """Classify one committed SyncOp structurally as acquire /
        release / attempt; everything else is inert."""
        site = event.site
        if site is not None:
            self.report.observed_sites.add(site)
        op = event.op
        tid = thread.global_id
        addr = event.addr
        if op == "cas":
            expected, new = event.args
            if expected == 0 and new != 0:
                trylock = site is not None and TRYLOCK_MARKER in site
                if trylock:
                    self.report.guard_sites.add(site)
                if value == expected:
                    self._acquire(vm.index, addr, tid, site)
                else:
                    if trylock:
                        self.report.guard_refusals += 1
                    self._last_attempt[tid] = (addr, site)
            elif new == 0 and value == expected:
                self._release(vm.index, addr, tid)
        elif op == "xchg":
            (new,) = event.args
            if new == 0:
                self._release(vm.index, addr, tid)
            elif value == 0:
                self._acquire(vm.index, addr, tid, site)
            else:
                self._last_attempt[tid] = (addr, site)
        elif op == "store":
            if event.args and event.args[0] == 0:
                self._release(vm.index, addr, tid)
        # load / fetch_add never transfer ownership.

    # -- futex hooks (FutexTable) ----------------------------------------

    def on_futex_wait(self, variant: int, tid: str, addr: int) -> None:
        """A thread parked on a futex word: add its wait-for edge and
        check for a cycle (linear: each thread has <= 1 outgoing edge)."""
        self.report.waits_seen += 1
        self._waiting[tid] = (variant, addr)
        cycle = self._find_cycle(tid)
        if cycle is not None:
            self._emit(variant, cycle)

    def on_futex_unwait(self, tid: str) -> None:
        self._waiting.pop(tid, None)

    def on_futex_wake(self, woken) -> None:
        for tid in woken:
            self._waiting.pop(tid, None)

    # -- ownership -------------------------------------------------------

    def _acquire(self, variant: int, addr: int, tid: str,
                 site: str | None) -> None:
        self.report.acquires_seen += 1
        self._holders[(variant, addr)] = tid
        self._hold_sites[(variant, addr)] = site
        self._held.setdefault(tid, set()).add(addr)
        self._last_attempt.pop(tid, None)

    def _release(self, variant: int, addr: int, tid: str) -> None:
        key = (variant, addr)
        if self._holders.get(key) != tid:
            return  # a plain store-0 to a word this thread doesn't own
        self.report.releases_seen += 1
        del self._holders[key]
        self._hold_sites.pop(key, None)
        held = self._held.get(tid)
        if held is not None:
            held.discard(addr)

    # -- cycle detection -------------------------------------------------

    def _find_cycle(self, start: str) -> list[str] | None:
        path = [start]
        on_path = {start: 0}
        current = start
        while True:
            wanted = self._waiting.get(current)
            if wanted is None:
                return None
            holder = self._holders.get(wanted)
            if holder is None:
                return None
            position = on_path.get(holder)
            if position is not None:
                return path[position:]
            on_path[holder] = len(path)
            path.append(holder)
            current = holder

    def _emit(self, variant: int, cycle: list[str]) -> None:
        threads = []
        for tid in cycle:
            wanted_variant, wanted_addr = self._waiting[tid]
            holds = tuple(sorted(self._held.get(tid, ())))
            hold_sites = tuple(
                self._hold_sites.get((wanted_variant, a)) or "?"
                for a in holds)
            attempt = self._last_attempt.get(tid)
            wants_site = (attempt[1] if attempt is not None
                          and attempt[0] == wanted_addr else None)
            threads.append(DeadlockThread(
                thread=_logical(tid), holds=holds,
                hold_sites=hold_sites, wants=wanted_addr,
                wants_site=wants_site))
        # Canonicalize the rotation: the same cycle re-discovered from a
        # different starting thread must dedup to one record.
        pivot = min(range(len(threads)), key=lambda i: threads[i].thread)
        threads = threads[pivot:] + threads[:pivot]
        key = (variant, tuple(t.thread for t in threads),
               tuple(t.wants for t in threads))
        if key in self._seen_cycles:
            return
        self._seen_cycles.add(key)
        record = DeadlockRecord(variant=variant,
                                at_cycles=self._clock(),
                                threads=tuple(threads))
        self.report.records.append(record)
        if self.obs is not None:
            self.obs.deadlock_detected(record)
        if self._machine is not None:
            self._machine.flag_guest_deadlock(record)
