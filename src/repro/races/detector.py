"""The dynamic side: a FastTrack-style happens-before race detector.

Attached to a :class:`~repro.sched.machine.Machine` as ``machine.races``
(the same zero-cost ``is not None`` hook contract as ``repro.obs`` and
``repro.faults``), the detector observes the simulation's communication
events and partitions every committed :class:`~repro.sched.events.SyncOp`
into one of two roles:

* **synchronization** — the site is one the static pipeline identified
  (by default: the variant's instrumentation predicate says so).  These
  build the happens-before order: acquires join the accessing thread's
  vector clock with the sync variable's, releases publish the thread's
  clock back (and tick it).
* **plain shared access** — the site was *not* identified.  These are
  exactly the accesses the paper's monitor cannot see, and the detector
  race-checks them: an access not ordered (by the happens-before
  relation built from the identified sites) after every conflicting
  prior access to the same address granule is a race.

Spawn/join edges and futex wake edges (``kernel.futex``) complete the
happens-before relation.  Per-address state is keyed by the §4.5 64-bit
granule (``addr >> 3``), matching the wall-of-clocks hash, and kept per
variant — diversified layouts make addresses variant-local.

The detector only *observes*: it never charges simulated cycles, never
consumes scheduler randomness, and never parks threads, so an attached
detector leaves the simulated timeline byte-identical to a run without
one (pinned in ``tests/test_determinism.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.races.vc import Epoch, VectorClock

#: §4.5: adjacent 32-bit words share one 64-bit granule (``addr >> 3``).
GRANULE_SHIFT = 3

#: Default cap on *distinct* recorded races (duplicates are counted, not
#: stored); a spinning loop on one un-identified lock word would
#: otherwise flood the report.
DEFAULT_MAX_RACES = 1024


def granule_of(addr: int) -> int:
    """The 64-bit granule an address falls in (the §4.5 key)."""
    return addr >> GRANULE_SHIFT


@dataclass(frozen=True)
class AccessRecord:
    """One shared-memory access, as the race report names it."""

    variant: int
    thread: str          # logical id, stable across variants
    site: str            # static site label of the instruction
    op: str              # "load" | "store" | "cas" | "xchg" | "fetch_add"
    granule: int
    at_cycles: float
    is_write: bool

    def to_dict(self) -> dict:
        return {"variant": self.variant, "thread": self.thread,
                "site": self.site, "op": self.op,
                "granule": self.granule, "at_cycles": self.at_cycles,
                "is_write": self.is_write}

    def __str__(self) -> str:
        kind = "W" if self.is_write else "R"
        return (f"{kind} v{self.variant}:{self.thread} {self.op}@"
                f"{self.site}")


@dataclass(frozen=True)
class RaceRecord:
    """Two unordered conflicting accesses to one granule."""

    kind: str            # "write-write" | "write-read" | "read-write"
    prior: AccessRecord
    current: AccessRecord

    @property
    def variant(self) -> int:
        return self.current.variant

    def sites(self) -> frozenset[str]:
        return frozenset((self.prior.site, self.current.site))

    def to_dict(self) -> dict:
        return {"kind": self.kind, "prior": self.prior.to_dict(),
                "current": self.current.to_dict()}

    def __str__(self) -> str:
        return (f"{self.kind} race on granule "
                f"{self.current.granule:#x} (v{self.variant}): "
                f"{self.prior} || {self.current}")


@dataclass
class RaceReport:
    """Everything one detector session found."""

    races: list[RaceRecord] = field(default_factory=list)
    #: (variant, kind, prior site, current site) -> occurrence count;
    #: ``races`` stores the first occurrence of each key only.
    occurrences: dict[tuple, int] = field(default_factory=dict)
    #: Distinct races dropped once ``max_races`` was hit.
    suppressed: int = 0
    sync_ops_seen: int = 0
    plain_accesses_checked: int = 0
    hb_edges: int = 0

    def race_sites(self) -> frozenset[str]:
        """Every site label involved in at least one recorded race."""
        sites: set[str] = set()
        for race in self.races:
            sites |= race.sites()
        return frozenset(sites)

    def races_at(self, site: str) -> list[RaceRecord]:
        return [race for race in self.races if site in race.sites()]

    @property
    def total_occurrences(self) -> int:
        return sum(self.occurrences.values())

    def summary(self) -> str:
        if not self.races and not self.suppressed:
            return (f"no races ({self.sync_ops_seen} sync ops, "
                    f"{self.plain_accesses_checked} plain accesses "
                    f"checked)")
        return (f"{len(self.races)} distinct race(s), "
                f"{self.total_occurrences} occurrence(s) across "
                f"{len(self.race_sites())} site(s)")


@dataclass
class _VarState:
    """FastTrack per-granule access history (adaptive read side)."""

    write: Epoch | None = None
    write_access: AccessRecord | None = None
    #: tid -> (epoch clock, access) for reads not yet ordered before a
    #: write.  FastTrack's "read epoch" is the common single-entry case.
    reads: dict[str, tuple[int, AccessRecord]] = field(
        default_factory=dict)


class RaceDetector:
    """Happens-before detector + race report for one machine run.

    ``sync_sites`` overrides the site classification: a predicate from
    site label to "is this identified synchronization?".  When ``None``
    (default), the accessed variant's instrumentation predicate is used
    — i.e. the detector trusts exactly the sites the static pipeline
    fed to :func:`repro.core.injection.instrument_sites`, which is what
    makes the coverage cross-check meaningful.
    """

    def __init__(self, sync_sites: Callable[[str], bool] | None = None,
                 max_races: int = DEFAULT_MAX_RACES):
        self.sync_sites = sync_sites
        self.max_races = max_races
        self.report = RaceReport()
        self.obs = None
        self._clock = lambda: 0.0
        #: thread global id -> vector clock (survives thread exit so
        #: join edges can read the final clock).
        self._threads: dict[str, VectorClock] = {}
        #: (variant, granule) -> vector clock of the sync variable.
        self._sync_vc: dict[tuple[int, int], VectorClock] = {}
        #: (variant, granule) -> plain-access history.
        self._vars: dict[tuple[int, int], _VarState] = {}

    # -- wiring ----------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Attach the machine's simulated clock (``lambda: machine.now``)."""
        self._clock = clock

    def bind_obs(self, hub) -> None:
        """Mirror each detected race into an ObsHub's race log."""
        self.obs = hub

    def reset_variant(self, variant: int) -> None:
        """Forget one variant's state (quarantine-restart support).

        A restarted variant re-runs ``main`` from scratch with fresh
        memory, so its old vector clocks and access history would
        manufacture false races against the new incarnation's threads.
        Recorded races are kept — they happened.
        """
        prefix = f"v{variant}:"
        for tid in [t for t in self._threads if t.startswith(prefix)]:
            del self._threads[tid]
        for key in [k for k in self._sync_vc if k[0] == variant]:
            del self._sync_vc[key]
        for key in [k for k in self._vars if k[0] == variant]:
            del self._vars[key]

    # -- helpers ---------------------------------------------------------

    def _vc(self, tid: str) -> VectorClock:
        vc = self._threads.get(tid)
        if vc is None:
            vc = VectorClock({tid: 1})
            self._threads[tid] = vc
        return vc

    def _is_sync_site(self, vm, site: str) -> bool:
        if self.sync_sites is not None:
            return self.sync_sites(site)
        return vm.is_instrumented(site)

    @staticmethod
    def _is_write(op: str, event, value) -> bool:
        """Whether the op wrote memory (a failed CAS is a pure read)."""
        if op == "load":
            return False
        if op == "cas":
            return value == event.args[0]
        return True

    # -- machine hooks ---------------------------------------------------

    def on_sync_op(self, vm, thread, event, value) -> None:
        """One committed SyncOp: build HB order or race-check it."""
        if self._is_sync_site(vm, event.site):
            self._sync_edge(vm, thread, event, value)
        else:
            self._plain_access(vm, thread, event, value)

    def on_spawn(self, parent, child) -> None:
        """``Spawn``: the child starts after the parent's clock."""
        parent_vc = self._vc(parent.global_id)
        child_vc = self._vc(child.global_id)
        child_vc.join(parent_vc)
        parent_vc.tick(parent.global_id)
        self.report.hb_edges += 1

    def on_join(self, joiner, target) -> None:
        """``Join`` delivered: the target's whole history is ordered
        before the joiner's continuation."""
        self._vc(joiner.global_id).join(self._vc(target.global_id))
        self.report.hb_edges += 1

    def on_futex_wake(self, waker: str, woken: list[str]) -> None:
        """A futex wake: the waker's history precedes each wakee's
        continuation (the paper's one ordering-exempt blocking call)."""
        if not woken:
            return
        waker_vc = self._vc(waker)
        for wakee in woken:
            self._vc(wakee).join(waker_vc)
        waker_vc.tick(waker)
        self.report.hb_edges += 1

    # -- the two SyncOp roles --------------------------------------------

    def _sync_edge(self, vm, thread, event, value) -> None:
        self.report.sync_ops_seen += 1
        tid = thread.global_id
        key = (vm.index, granule_of(event.addr))
        thread_vc = self._vc(tid)
        sync_vc = self._sync_vc.get(key)
        if sync_vc is not None:
            thread_vc.join(sync_vc)          # acquire
        if self._is_write(event.op, event, value):
            # release: publish the (just-joined) clock and advance.
            self._sync_vc[key] = thread_vc.copy()
            thread_vc.tick(tid)
        self.report.hb_edges += 1

    def _plain_access(self, vm, thread, event, value) -> None:
        self.report.plain_accesses_checked += 1
        tid = thread.global_id
        key = (vm.index, granule_of(event.addr))
        thread_vc = self._vc(tid)
        state = self._vars.get(key)
        if state is None:
            state = self._vars[key] = _VarState()
        is_write = self._is_write(event.op, event, value)
        current = AccessRecord(
            variant=vm.index, thread=thread.logical_id, site=event.site,
            op=event.op, granule=key[1], at_cycles=self._clock(),
            is_write=is_write)
        if is_write:
            if (state.write is not None
                    and not state.write.happens_before(thread_vc)):
                self._record("write-write", state.write_access, current)
            for read_tid, (clock, access) in state.reads.items():
                if read_tid != tid and clock > thread_vc.get(read_tid):
                    self._record("read-write", access, current)
            state.write = thread_vc.epoch(tid)
            state.write_access = current
            state.reads.clear()
        else:
            if (state.write is not None
                    and not state.write.happens_before(thread_vc)):
                self._record("write-read", state.write_access, current)
            state.reads[tid] = (thread_vc.get(tid), current)

    # -- recording -------------------------------------------------------

    def _record(self, kind: str, prior: AccessRecord,
                current: AccessRecord) -> None:
        key = (current.variant, kind, prior.site, current.site)
        count = self.report.occurrences.get(key)
        if count is not None:
            self.report.occurrences[key] = count + 1
            return
        if len(self.report.races) >= self.max_races:
            self.report.suppressed += 1
            return
        self.report.occurrences[key] = 1
        race = RaceRecord(kind=kind, prior=prior, current=current)
        self.report.races.append(race)
        if self.obs is not None:
            self.obs.race_detected(race)
