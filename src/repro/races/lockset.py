"""The static side: an Eraser-style lockset lint over the analysis IR.

The §4.3 identification pipeline asks "which instructions *are*
synchronization?".  This lint asks the complementary question: "which
plain accesses are *unprotected* shared-data accesses?" — Eraser's
lockset discipline, computed over the same mini-IR and reusing the same
Steensgaard/Andersen points-to results:

1. The stage-1 scan's sync-pointer roots, closed under points-to, are
   the *lock objects* (the same set stage 2 uses to classify type-iii
   instructions).
2. Each function is walked in instruction order, tracking the set of
   lock objects currently held: a type (i)/(ii) RMW on a lock object
   acquires it; a plain store to a held lock object releases it (the
   Listing-1 unlock idiom); a plain load of one is a spin poll.
3. Every plain access to a *non*-lock object is recorded together with
   the lockset in force.
4. A global accessed from at least two functions, written at least once,
   whose locksets share no common lock is a :class:`RaceCandidate`.

Listing 2 is the motivating case: the volatile flag has no LOCK/XCHG
root, so it is not a lock object, both its accesses carry empty
locksets from different functions, and one is a write — a candidate.
Enabling ``treat_volatile_as_sync`` promotes volatile globals into the
lock-object set (the paper's proposed over-approximation), which both
*identifies* the accesses downstream and silences the lint — the
remediation loop the cross-checker drives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.identify import ANALYSES
from repro.analysis.ir import Function, Module
from repro.analysis.scanner import scan_module


@dataclass(frozen=True)
class LintAccess:
    """One plain access to a shared object, with its lockset."""

    function: str
    obj: str
    site: str | None
    source: tuple[str, int] | None
    is_write: bool
    lockset: frozenset[str]

    def __str__(self) -> str:
        kind = "W" if self.is_write else "R"
        where = self.site or (f"{self.source[0]}:{self.source[1]}"
                              if self.source else self.function)
        held = ",".join(sorted(self.lockset)) or "∅"
        return f"{kind} {self.obj} @ {where} holding {{{held}}}"


@dataclass(frozen=True)
class RaceCandidate:
    """A shared object with no consistently-held lock."""

    obj: str
    accesses: tuple[LintAccess, ...]

    def sites(self) -> frozenset[str]:
        return frozenset(a.site for a in self.accesses
                         if a.site is not None)

    def source_lines(self) -> frozenset[tuple[str, int]]:
        return frozenset(a.source for a in self.accesses
                         if a.source is not None)

    def functions(self) -> frozenset[str]:
        return frozenset(a.function for a in self.accesses)

    @property
    def writes(self) -> int:
        return sum(1 for a in self.accesses if a.is_write)

    def __str__(self) -> str:
        return (f"{self.obj}: {len(self.accesses)} access(es) from "
                f"{len(self.functions())} function(s), "
                f"{self.writes} write(s), no common lock")


@dataclass
class RaceLint:
    """Lockset-lint result for one module."""

    module: str
    analysis: str
    candidates: list[RaceCandidate] = field(default_factory=list)
    #: Objects examined (plain-accessed, non-lock).
    objects_seen: int = 0
    #: Plain accesses recorded with a lockset.
    accesses_recorded: int = 0
    #: Lock objects derived from the stage-1 roots (+ volatile globals
    #: when ``treat_volatile_as_sync``).
    lock_objects: frozenset[str] = frozenset()

    @property
    def clean(self) -> bool:
        return not self.candidates

    def candidate_sites(self) -> frozenset[str]:
        sites: set[str] = set()
        for candidate in self.candidates:
            sites |= candidate.sites()
        return frozenset(sites)

    def candidate_for(self, obj: str) -> RaceCandidate | None:
        for candidate in self.candidates:
            if candidate.obj == obj:
                return candidate
        return None

    def summary(self) -> str:
        if self.clean:
            return (f"{self.module}: clean ({self.objects_seen} shared "
                    f"object(s), {self.accesses_recorded} access(es), "
                    f"{len(self.lock_objects)} lock(s))")
        return (f"{self.module}: {len(self.candidates)} candidate-racy "
                f"object(s) across "
                f"{len(self.candidate_sites())} labelled site(s)")


def _walk_function(function: Function, pointsto, lock_objects: set,
                   report: RaceLint,
                   accesses: dict[str, list[LintAccess]]) -> None:
    """Track the lockset through one function, recording data accesses."""
    held: set[str] = set()
    for instruction in function.instructions:
        operands = instruction.memory_operands()
        if not operands:
            continue
        targets: set[str] = set()
        for operand in operands:
            targets |= pointsto.points_to(operand.ptr)
        locks = targets & lock_objects
        is_rmw = (instruction.lock_prefix
                  or instruction.opcode == "xchg")
        if locks and is_rmw:
            held |= locks                      # acquire
            continue
        if locks:
            if instruction.is_store:
                held -= locks                  # Listing-1 unlock store
            continue                           # plain poll of a lock
        if is_rmw:
            # An un-rooted RMW still syncs whatever it touches; treat
            # its targets as self-protecting, not as data.
            continue
        if not (instruction.is_load or instruction.is_store):
            continue
        for obj in sorted(targets):
            access = LintAccess(
                function=function.name, obj=obj,
                site=instruction.site, source=instruction.source,
                is_write=instruction.is_store,
                lockset=frozenset(held))
            accesses.setdefault(obj, []).append(access)
            report.accesses_recorded += 1


def lint_module(module: Module, analysis: str = "andersen",
                treat_volatile_as_sync: bool = False) -> RaceLint:
    """Run the lockset lint over one module."""
    if analysis not in ANALYSES:
        raise ValueError(f"unknown points-to analysis {analysis!r}; "
                         f"choose from {sorted(ANALYSES)}")
    scan = scan_module(module)
    pointsto = ANALYSES[analysis](module)
    lock_objects: set[str] = set()
    for pointer in scan.sync_pointers:
        lock_objects |= pointsto.points_to(pointer)
    if treat_volatile_as_sync:
        for gvar in module.globals:
            if gvar.volatile:
                lock_objects.add(gvar.name)
    report = RaceLint(module=module.name, analysis=analysis,
                      lock_objects=frozenset(lock_objects))
    accesses: dict[str, list[LintAccess]] = {}
    for function in module.functions:
        _walk_function(function, pointsto, lock_objects, report,
                       accesses)
    report.objects_seen = len(accesses)
    for obj in sorted(accesses):
        records = accesses[obj]
        if len({a.function for a in records}) < 2:
            continue                           # single-threaded object
        if not any(a.is_write for a in records):
            continue                           # read-shared is benign
        common = frozenset.intersection(*(a.lockset for a in records))
        if common:
            continue                           # consistently guarded
        report.candidates.append(
            RaceCandidate(obj=obj, accesses=tuple(records)))
    return report


def lint_corpus(modules, analysis: str = "andersen",
                treat_volatile_as_sync: bool = False) -> list[RaceLint]:
    """Lint every module of a corpus (the whole Table-3 set)."""
    return [lint_module(module, analysis=analysis,
                        treat_volatile_as_sync=treat_volatile_as_sync)
            for module in modules]
