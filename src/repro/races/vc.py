"""Vector clocks and epochs — the FastTrack detector's arithmetic.

A :class:`VectorClock` maps thread identifiers to logical clock values;
absent entries are zero.  An :class:`Epoch` is FastTrack's ``c@t`` pair:
the clock value one specific thread had when it performed an access.
Most accesses are totally ordered by *some* synchronization, so a single
epoch — O(1) to compare against a vector clock — replaces the full
per-variable vector almost everywhere; the detector only inflates a
read epoch to a read *map* when it actually observes concurrent reads
(FastTrack's adaptive representation).

Everything here is pure data manipulation: no simulator state, no
randomness, no wall-clock reads — which is what lets the property tests
pin the algebraic laws (join commutativity, monotonicity, epoch
ordering) directly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Epoch:
    """``c@t``: thread ``tid`` at clock value ``clock``."""

    clock: int
    tid: str

    def happens_before(self, vc: "VectorClock") -> bool:
        """``c@t <= V`` iff ``c <= V[t]`` (FastTrack's O(1) check)."""
        return self.clock <= vc.get(self.tid)

    def __str__(self) -> str:
        return f"{self.clock}@{self.tid}"


class VectorClock:
    """A mutable vector clock with value semantics for comparisons."""

    __slots__ = ("_clocks",)

    def __init__(self, clocks: dict[str, int] | None = None):
        self._clocks: dict[str, int] = dict(clocks) if clocks else {}

    def get(self, tid: str) -> int:
        return self._clocks.get(tid, 0)

    def tick(self, tid: str) -> None:
        """Increment ``tid``'s own component (a release step)."""
        self._clocks[tid] = self._clocks.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """In-place component-wise maximum (the acquire step)."""
        for tid, clock in other._clocks.items():
            if clock > self._clocks.get(tid, 0):
                self._clocks[tid] = clock

    def copy(self) -> "VectorClock":
        return VectorClock(self._clocks)

    def epoch(self, tid: str) -> Epoch:
        """This clock's view of ``tid`` as an epoch."""
        return Epoch(self.get(tid), tid)

    def dominates(self, other: "VectorClock") -> bool:
        """``other <= self`` component-wise."""
        return all(clock <= self._clocks.get(tid, 0)
                   for tid, clock in other._clocks.items())

    def items(self):
        return self._clocks.items()

    def __eq__(self, other) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        mine = {t: c for t, c in self._clocks.items() if c}
        theirs = {t: c for t, c in other._clocks.items() if c}
        return mine == theirs

    def __hash__(self):  # pragma: no cover - mutable; not hashable
        raise TypeError("VectorClock is mutable and unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(f"{tid}:{clock}" for tid, clock in
                          sorted(self._clocks.items()) if clock)
        return f"VC({inner})"


def join(left: VectorClock, right: VectorClock) -> VectorClock:
    """Pure (copying) join, for tests and symmetry arguments."""
    result = left.copy()
    result.join(right)
    return result
