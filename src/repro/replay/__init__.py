"""repro.replay — decision-stream record/replay + machine checkpoints.

The monitor already forces every follower to re-enact the master's
decisions, so a compact log of that decision stream reproduces any run
bit-identically (rr's observation; see ``docs/REPLAY.md``):

* :class:`DecisionRecorder` captures the master's sync-op grants,
  syscall results, futex wake choices, and scheduler RNG draws behind
  the same zero-cost ``machine.replay is not None`` hook pattern as
  faults/races/obs;
* :class:`DecisionReplayer` re-drives a ``Machine``/``MVEE`` from a
  :class:`DecisionLog` alone — the scheduler's randomness is fed from
  the log, so the replay machine's own seed is irrelevant;
* :class:`Checkpointer` takes periodic, timeline-neutral snapshots of
  machine state so restart resync and serve crash recovery resume from
  the nearest checkpoint + log suffix instead of full history.
"""

from repro.replay.checkpoint import (
    Checkpoint,
    Checkpointer,
    CheckpointPolicy,
    CheckpointStore,
    decode_rng_state,
    encode_rng_state,
)
from repro.replay.driver import (
    RecordedRun,
    ReplayedRun,
    ResumedRun,
    record_run,
    replay_run,
    resume_recorded,
)
from repro.replay.log import DecisionLog, DecisionLogWriter
from repro.replay.recorder import DecisionRecorder, RecordingRandom
from repro.replay.replayer import (
    DecisionReplayer,
    ReplayMismatch,
    ReplayRandom,
)

__all__ = [
    "Checkpoint",
    "CheckpointPolicy",
    "CheckpointStore",
    "Checkpointer",
    "DecisionLog",
    "DecisionLogWriter",
    "DecisionRecorder",
    "DecisionReplayer",
    "RecordedRun",
    "RecordingRandom",
    "ReplayMismatch",
    "ReplayRandom",
    "ReplayedRun",
    "ResumedRun",
    "decode_rng_state",
    "encode_rng_state",
    "record_run",
    "replay_run",
    "resume_recorded",
]
