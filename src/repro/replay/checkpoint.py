"""Machine checkpoints: periodic, timeline-neutral state snapshots.

Guest threads are Python generators and cannot be pickled, so a
checkpoint is *log-positional*, not a memory image: it pins

* the decision-log position (``decision_index``) and the scheduler RNG
  state at that position — enough to resume a recorded run by replaying
  the log prefix and handing the live RNG back its saved state;
* the master's per-thread completed-call counts (``master_seq``) — the
  *fast-forward frontier* the restart policy uses to resync a
  replacement variant from the nearest checkpoint instead of replaying
  full master history at full cost (``MonitorPolicy.resync_mode``);
* a diagnostic machine fingerprint (thread states, futex queues, buffer
  cursors, vector clocks via agent state, event counters) used by
  forensics and the checkpoint CLI.

The :class:`Checkpointer` fires off the machine's *watchdog* event
lane, which is exempt from the cycle clock and event budget: arming it
moves no simulated cycle (pinned in ``test_determinism.py``).  It stops
re-arming once nothing but its own probes is left on the event heap
(finished, deadlocked, or stalled machine), and skips duplicate
snapshots across probes that observed no progress.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.errors import ReplayError

#: Default snapshot cadence in simulated cycles.
DEFAULT_EVERY_CYCLES = 250_000.0

STORE_KIND = "repro-checkpoints"
STORE_FORMAT = 1


def encode_rng_state(state):
    """``random.Random.getstate()`` -> JSON-safe (tuples -> lists)."""
    if isinstance(state, tuple):
        return [encode_rng_state(item) for item in state]
    return state


def decode_rng_state(data):
    """JSON round-trip -> the tuple shape ``setstate`` demands."""
    if isinstance(data, list):
        return tuple(decode_rng_state(item) for item in data)
    return data


@dataclass
class CheckpointPolicy:
    """When to snapshot."""

    every_cycles: float = DEFAULT_EVERY_CYCLES


@dataclass
class Checkpoint:
    """One snapshot; JSON-safe throughout."""

    index: int
    at_cycles: float
    #: Machine steps committed when taken (None without a recorder).
    steps: int | None
    #: Decision-log records written when taken (None without a recorder).
    decision_index: int | None
    #: Encoded scheduler RNG state at that log position.
    rng_state: list | None
    #: Master thread logical id -> completed monitored calls.
    master_seq: dict = field(default_factory=dict)
    #: Diagnostic machine-state fingerprint.
    fingerprint: dict = field(default_factory=dict)

    def digest(self) -> str:
        payload = json.dumps(
            {"index": self.index, "at_cycles": self.at_cycles,
             "steps": self.steps, "decision_index": self.decision_index,
             "rng_state": self.rng_state, "master_seq": self.master_seq,
             "fingerprint": self.fingerprint},
            sort_keys=True, separators=(",", ":"), default=repr)
        return "sha256:" + hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self) -> dict:
        return {"index": self.index, "at_cycles": self.at_cycles,
                "steps": self.steps,
                "decision_index": self.decision_index,
                "rng_state": self.rng_state,
                "master_seq": dict(self.master_seq),
                "fingerprint": self.fingerprint,
                "digest": self.digest()}

    @classmethod
    def from_dict(cls, data: dict) -> "Checkpoint":
        try:
            ckpt = cls(index=data["index"], at_cycles=data["at_cycles"],
                       steps=data.get("steps"),
                       decision_index=data.get("decision_index"),
                       rng_state=data.get("rng_state"),
                       master_seq=dict(data.get("master_seq") or {}),
                       fingerprint=dict(data.get("fingerprint") or {}))
        except (KeyError, TypeError) as exc:
            raise ReplayError(f"malformed checkpoint record: {exc}") \
                from exc
        recorded = data.get("digest")
        if recorded is not None and recorded != ckpt.digest():
            raise ReplayError(
                f"checkpoint {ckpt.index} digest mismatch "
                f"(file {recorded}, computed {ckpt.digest()})")
        return ckpt


class CheckpointStore:
    """An ordered list of checkpoints, optionally persisted as JSON."""

    def __init__(self, path: str | None = None):
        self.path = path
        self.checkpoints: list[Checkpoint] = []

    def __len__(self) -> int:
        return len(self.checkpoints)

    def add(self, checkpoint: Checkpoint) -> None:
        self.checkpoints.append(checkpoint)
        if self.path:
            self.persist()

    def latest(self) -> Checkpoint | None:
        return self.checkpoints[-1] if self.checkpoints else None

    def to_dict(self) -> dict:
        return {"kind": STORE_KIND, "format": STORE_FORMAT,
                "checkpoints": [c.to_dict() for c in self.checkpoints]}

    def persist(self) -> None:
        tmp = f"{self.path}.tmp"
        with open(tmp, "w") as handle:
            json.dump(self.to_dict(), handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    @classmethod
    def load(cls, path: str) -> "CheckpointStore":
        try:
            with open(path) as handle:
                data = json.load(handle)
        except OSError as exc:
            raise ReplayError(f"cannot read checkpoint store {path!r}: "
                              f"{exc.strerror or exc}") from exc
        except ValueError as exc:
            raise ReplayError(f"checkpoint store {path!r} is not valid "
                              f"JSON: {exc}") from exc
        if not isinstance(data, dict) or data.get("kind") != STORE_KIND:
            raise ReplayError(f"{path!r} is not a checkpoint store "
                              f"(missing kind == {STORE_KIND!r})")
        store = cls(path=path)
        for entry in data.get("checkpoints", []):
            store.checkpoints.append(Checkpoint.from_dict(entry))
        return store


def machine_fingerprint(mvee) -> dict:
    """Diagnostic snapshot of live machine state (JSON-safe)."""
    machine = mvee.machine
    threads = {}
    futexes = {}
    syscalls = {}
    sync_ops = {}
    for vm in machine.vms:
        key = str(vm.index)
        threads[key] = {logical: thread.state.name
                        for logical, thread in sorted(vm.threads.items())}
        futexes[key] = vm.kernel.futexes.snapshot()
        syscalls[key] = vm.total_syscalls
        sync_ops[key] = vm.total_sync_ops
    fingerprint = {
        "cycles": machine.now,
        "threads": threads,
        "futexes": futexes,
        "syscalls": syscalls,
        "sync_ops": sync_ops,
    }
    agent = _agent_fingerprint(getattr(mvee, "agent_shared", None))
    if agent:
        fingerprint["agent"] = agent
    return fingerprint


def _agent_fingerprint(shared) -> dict | None:
    """Collect ``fingerprint()``-capable agent state (buffer cursors,
    vector clocks) without knowing any particular agent's layout."""
    if shared is None:
        return None
    out: dict = {}
    for name, value in sorted(vars(shared).items()):
        method = getattr(value, "fingerprint", None)
        if callable(method):
            out[name] = method()
            continue
        if isinstance(value, dict):
            sub = {}
            for key, item in value.items():
                item_fp = getattr(item, "fingerprint", None)
                if callable(item_fp):
                    sub[str(key)] = item_fp()
            if sub:
                out[name] = dict(sorted(sub.items()))
    return out or None


class Checkpointer:
    """Takes snapshots on the machine's watchdog lane."""

    def __init__(self, mvee, policy: CheckpointPolicy | None = None,
                 recorder=None, store: CheckpointStore | None = None,
                 obs=None):
        self.mvee = mvee
        self.machine = mvee.machine
        self.policy = policy or CheckpointPolicy()
        self.recorder = recorder
        self.store = store if store is not None else CheckpointStore()
        self.obs = obs
        self._last_progress = None

    def arm(self) -> None:
        """Schedule the first probe; call once after the MVEE is built."""
        self.machine.schedule_watchdog(
            self.machine.now + self.policy.every_cycles, self._probe)

    def _progress_marker(self) -> tuple:
        machine = self.machine
        return (machine.now,
                sum(vm.total_syscalls for vm in machine.vms),
                sum(vm.total_sync_ops for vm in machine.vms))

    def _probe(self, machine, time: float) -> None:
        if not any(t.alive for t in machine._threads_by_id.values()):
            return  # run is over; stop re-arming so the heap drains
        if not any(kind != "watchdog" for _, _, kind, _ in machine._heap):
            return  # nothing but probes left (deadlock/stall): stop
        marker = self._progress_marker()
        if marker != self._last_progress:
            # Snapshot only when the run moved since the last probe —
            # a long quiet stretch (one big compute step spanning
            # several cadences) re-arms without stacking duplicates.
            self._last_progress = marker
            self.take()
        machine.schedule_watchdog(time + self.policy.every_cycles,
                                  self._probe)

    def take(self) -> Checkpoint:
        """Snapshot now; appended to (and persisted by) the store."""
        recorder = self.recorder
        monitor = self.mvee.monitor
        seq_of = getattr(monitor, "master_seq_snapshot", None)
        checkpoint = Checkpoint(
            index=len(self.store),
            at_cycles=self.machine.now,
            steps=recorder.steps if recorder is not None else None,
            decision_index=(len(recorder.log.records)
                            if recorder is not None else None),
            rng_state=encode_rng_state(self.machine.rng.getstate()),
            master_seq=seq_of() if callable(seq_of) else {},
            fingerprint=machine_fingerprint(self.mvee),
        )
        self.store.add(checkpoint)
        if self.obs is not None:
            self.obs.checkpoint_taken(checkpoint.index,
                                      checkpoint.at_cycles,
                                      checkpoint.decision_index)
        return checkpoint
