"""High-level record / replay / resume drivers.

Everything here works in terms of :class:`repro.serve.session.SessionSpec`
— the JSON-safe description of one run that the serve daemon journals
and the CLI accepts — so a decision log is self-contained: its header
carries the spec, and :func:`replay_run` rebuilds the MVEE from the log
alone.

Three entry points:

* :func:`record_run` — run a spec with a :class:`DecisionRecorder`
  attached, streaming the log to disk; the sealed footer carries the
  verdict, cycles, obs digest, and canonical log digest.
* :func:`replay_run` — re-drive a run from a log, fully or up to
  ``--to-step N`` (fast-forward in event batches, then single-step), and
  compare the outcome against the recorded footer.
* :func:`resume_recorded` — crash recovery: rebuild the MVEE from a
  (possibly torn) log plus a checkpoint store, replay the log prefix up
  to the newest usable checkpoint, hand the live RNG its checkpointed
  state, and keep *recording* from there — the resumed session extends
  the same log and converges to the uninterrupted run's digest.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ReplayError
from repro.replay.checkpoint import (
    Checkpointer,
    CheckpointPolicy,
    CheckpointStore,
    decode_rng_state,
)
from repro.replay.log import DecisionLog, DecisionLogWriter
from repro.replay.recorder import DecisionRecorder
from repro.replay.replayer import DecisionReplayer

#: Event-batch size used while fast-forwarding a replay or a resume.
DRIVE_CHUNK = 1024

#: How close (in machine steps) ``--to-step`` gets before switching
#: from batched fast-forward to single-event stepping.
SINGLE_STEP_MARGIN = 64


def _session_spec(spec):
    """Accept a SessionSpec, a spec dict, or reject with ReplayError."""
    from repro.serve.session import SessionSpec

    if isinstance(spec, SessionSpec):
        return spec.validate()
    if isinstance(spec, dict):
        return SessionSpec.from_dict(spec).validate()
    raise ReplayError(f"not a session spec: {spec!r}")


def _outcome_summary(outcome, hub) -> dict:
    return {"verdict": outcome.verdict,
            "cycles": outcome.cycles,
            "obs_digest": hub.digest() if hub is not None else None}


@dataclass
class RecordedRun:
    """Everything :func:`record_run` produced."""

    outcome: object
    log: DecisionLog
    recorder: DecisionRecorder
    hub: object
    native: float | None
    footer: dict | None
    checkpointer: Checkpointer | None = None


def record_run(spec, out_path: str | None = None,
               checkpoint_every: float | None = None,
               checkpoint_path: str | None = None,
               hub=None, meta: dict | None = None) -> RecordedRun:
    """Run ``spec`` under a decision recorder; seal and return the log."""
    from repro.obs import ObsHub
    from repro.serve.session import build_mvee

    spec = _session_spec(spec)
    if hub is None:
        hub = ObsHub(trace=False)
    log = DecisionLog(spec=spec.to_dict(), meta=meta)
    recorder = DecisionRecorder(log)
    checkpoints = None
    if checkpoint_every is not None:
        checkpoints = CheckpointPolicy(every_cycles=checkpoint_every)
    mvee, native = build_mvee(spec, obs=hub, replay=recorder,
                              checkpoints=checkpoints)
    if (checkpoint_path is not None
            and mvee.checkpointer is not None):
        mvee.checkpointer.store.path = checkpoint_path
    writer = DecisionLogWriter(out_path, log) if out_path else None
    try:
        outcome = mvee.run()
    except BaseException:
        if writer is not None:
            writer.abandon()
        raise
    footer = None
    summary = _outcome_summary(outcome, hub)
    if writer is not None:
        footer = writer.close(steps=recorder.steps, **summary)
    else:
        footer = log.seal(steps=recorder.steps, **summary)
    return RecordedRun(outcome=outcome, log=log, recorder=recorder,
                       hub=hub, native=native, footer=footer,
                       checkpointer=mvee.checkpointer)


@dataclass
class ReplayedRun:
    """Everything :func:`replay_run` produced."""

    outcome: object | None
    log: DecisionLog
    replayer: DecisionReplayer
    hub: object
    #: Recorded footer (None when the log was never sealed).
    recorded: dict | None
    #: Step the ``to_step`` walk stopped at (None for a full replay).
    stopped_at_step: int | None = None
    #: The replayed MVEE (live when ``to_step`` stopped mid-run) —
    #: forensics fingerprints the stopped machine through this.
    mvee: object | None = None

    @property
    def faithful(self) -> bool:
        return self.replayer.faithful()

    def matches(self) -> dict:
        """Field-by-field comparison against the recorded footer."""
        out = {"faithful": self.faithful,
               "divergence": (self.replayer.first_divergence.describe()
                              if self.replayer.first_divergence
                              else None)}
        if self.recorded is None or self.outcome is None:
            return out
        summary = _outcome_summary(self.outcome, self.hub)
        for key, value in summary.items():
            recorded = self.recorded.get(key)
            out[key] = {"recorded": recorded, "replayed": value,
                        "match": recorded == value}
        out["log_digest_match"] = (
            self.recorded.get("digest") == self.log.digest())
        return out


def replay_run(log, to_step: int | None = None, hub=None) -> ReplayedRun:
    """Re-drive a run from its decision log.

    ``to_step`` fast-forwards in event batches to just before machine
    step N, then single-steps — stopping early at the first divergence
    from the log, which is the forensics entry point (``repro replay
    --to-step``).
    """
    from repro.obs import ObsHub
    from repro.serve.session import build_mvee

    if isinstance(log, str):
        log = DecisionLog.load(log)
    if log.spec is None:
        raise ReplayError("decision log has no session spec in its "
                          "header; cannot rebuild the run")
    spec = _session_spec(log.spec)
    if hub is None:
        hub = ObsHub(trace=False)
    replayer = DecisionReplayer(log)
    mvee, _native = build_mvee(spec, obs=hub, replay=replayer)
    if to_step is None:
        outcome = mvee.run()
        return ReplayedRun(outcome=outcome, log=log, replayer=replayer,
                           hub=hub, recorded=log.footer, mvee=mvee)
    outcome = None
    while outcome is None and replayer.steps < to_step:
        if replayer.first_divergence is not None:
            break
        far = (to_step - replayer.steps) > SINGLE_STEP_MARGIN
        outcome = mvee.advance(DRIVE_CHUNK if far else 1)
    return ReplayedRun(outcome=outcome, log=log, replayer=replayer,
                       hub=hub, recorded=log.footer,
                       stopped_at_step=replayer.steps, mvee=mvee)


@dataclass
class ResumedRun:
    """A live, recording MVEE rebuilt from log prefix + checkpoint."""

    mvee: object
    native: float | None
    log: DecisionLog
    recorder: DecisionRecorder
    replayer: DecisionReplayer
    checkpoint: object
    store: CheckpointStore
    hub: object
    #: Set when the run finished while replaying the prefix.
    outcome: object | None = None
    #: Records discarded from the torn log tail past the checkpoint.
    discarded_records: int = 0


def usable_checkpoint(store: CheckpointStore, log: DecisionLog):
    """Newest checkpoint the log can actually reach.

    A crash can tear the log below the last persisted checkpoint's
    ``decision_index`` (the store fsyncs at probe time, the log at step
    boundaries), so walk backwards to one the prefix covers.
    """
    for checkpoint in reversed(store.checkpoints):
        if (checkpoint.decision_index is not None
                and checkpoint.rng_state is not None
                and checkpoint.decision_index <= len(log.records)):
            return checkpoint
    return None


def resume_recorded(spec, log_path: str, checkpoint_path: str,
                    checkpoint_every: float | None = None,
                    hub=None) -> ResumedRun | None:
    """Crash recovery: resume a recorded run from its on-disk artifacts.

    Returns ``None`` when there is nothing usable to resume from (no
    log, no store, or no checkpoint the torn log covers) — the caller
    then starts the run from scratch.  Otherwise the returned MVEE is
    positioned *live* at the newest usable checkpoint: the log prefix
    was replayed (re-observed by ``hub``, so the final digest matches an
    uninterrupted run), the scheduler RNG carries the checkpointed
    state, and a tail recorder extends the same log from here on.
    """
    from repro.obs import ObsHub
    from repro.serve.session import build_mvee

    if not (os.path.exists(log_path)
            and os.path.exists(checkpoint_path)):
        return None
    try:
        log = DecisionLog.load(log_path)
        store = CheckpointStore.load(checkpoint_path)
    except ReplayError:
        return None
    checkpoint = usable_checkpoint(store, log)
    if checkpoint is None:
        return None
    spec = _session_spec(spec if spec is not None else log.spec)
    if hub is None:
        hub = ObsHub(trace=False)
    discarded = len(log.records) - checkpoint.decision_index
    del log.records[checkpoint.decision_index:]
    log.footer = None
    replayer = DecisionReplayer(log,
                                handoff_at=checkpoint.decision_index)
    replayer.pending_rng_state = decode_rng_state(checkpoint.rng_state)
    recorder = DecisionRecorder(log)
    replayer.tail_recorder = recorder
    mvee, native = build_mvee(spec, obs=hub, replay=replayer)
    outcome = None
    while outcome is None and not replayer.live:
        outcome = mvee.advance(DRIVE_CHUNK)
    # Forget checkpoints past the resume point; the resumed run takes
    # its own from here (same store file, indices keep increasing).
    store.checkpoints = [c for c in store.checkpoints
                         if c.index <= checkpoint.index]
    every = checkpoint_every
    if every is None:
        every = CheckpointPolicy().every_cycles
    checkpointer = Checkpointer(
        mvee, CheckpointPolicy(every_cycles=every), recorder=recorder,
        store=store, obs=hub)
    mvee.checkpointer = checkpointer
    if hasattr(mvee.monitor, "checkpoints"):
        mvee.monitor.checkpoints = store
    if outcome is None:
        checkpointer.arm()
    return ResumedRun(mvee=mvee, native=native, log=log,
                      recorder=recorder, replayer=replayer,
                      checkpoint=checkpoint, store=store, hub=hub,
                      outcome=outcome, discarded_records=discarded)
