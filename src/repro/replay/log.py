"""The DecisionLog: an append-only JSONL decision stream with a digest.

Format (``format_version`` 1) — one canonical JSON object per line:

* header ``{"k": "hdr", "format": 1, "spec": {...}, "meta": {...}}`` —
  ``spec`` is the JSON-safe session spec the run was built from (enough
  to rebuild the MVEE; see :class:`repro.serve.session.SessionSpec`);
* decision records, in commit order, each stamped with the step index
  ``"i"`` at which it was taken:

  - ``{"k": "rng", "m": METHOD, "v": VALUE}`` — a scheduler RNG draw
    (``pick``'s randrange, ``quantum_scale``/jitter's uniform);
  - ``{"k": "sync", "t": THREAD, "o": OP, "s": SITE, "v": VALUE}`` —
    a master sync-op grant;
  - ``{"k": "sys", "t": THREAD, "n": NAME, "r": REPR}`` — a master
    syscall result (repr'd: results may be tuples/objects);
  - ``{"k": "wake", "a": ADDR, "w": [THREADS]}`` — a master futex wake
    choice (which sleepers the kernel picked);

* footer ``{"k": "end", ...}`` with the run outcome (verdict, cycles,
  obs digest, steps) and the log's own canonical digest.

The digest is sha256 over the canonical header + record lines (footer
excluded — it *carries* the digest), so it is stable under re-
serialization: load + write round-trips byte-identically.  JSON floats
round-trip exactly in Python, so replayed jitter draws are bit-equal.

Loading goes through :func:`repro.logio.read_jsonl` with
``on_bad="error"``: a torn final record (crash mid-append) is dropped
and tolerated, interior corruption is not.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.errors import ReplayError
from repro.logio import JsonlCorruption, read_jsonl

FORMAT_VERSION = 1

#: Decision record kinds, for validation.
RECORD_KINDS = ("rng", "sync", "sys", "wake")


def canonical_line(record: dict) -> str:
    """The one serialization the digest is defined over."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class DecisionLog:
    """An in-memory decision stream (header spec + records + footer)."""

    def __init__(self, spec: dict | None = None,
                 meta: dict | None = None):
        self.spec = dict(spec) if spec else None
        self.meta = dict(meta) if meta else {}
        self.records: list[dict] = []
        self.footer: dict | None = None

    def append(self, record: dict) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def header_dict(self) -> dict:
        header = {"k": "hdr", "format": FORMAT_VERSION}
        if self.spec is not None:
            header["spec"] = self.spec
        if self.meta:
            header["meta"] = self.meta
        return header

    def digest(self) -> str:
        """``sha256:`` over canonical header + record lines."""
        hasher = hashlib.sha256()
        hasher.update(canonical_line(self.header_dict()).encode())
        hasher.update(b"\n")
        for record in self.records:
            hasher.update(canonical_line(record).encode())
            hasher.update(b"\n")
        return "sha256:" + hasher.hexdigest()

    def seal(self, **outcome) -> dict:
        """Attach the end record (outcome + digest); returns it."""
        self.footer = {"k": "end", "steps_logged": len(self.records),
                       "digest": self.digest(), **outcome}
        return self.footer

    def to_lines(self) -> list[str]:
        lines = [canonical_line(self.header_dict())]
        lines += [canonical_line(record) for record in self.records]
        if self.footer is not None:
            lines.append(canonical_line(self.footer))
        return lines

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            for line in self.to_lines():
                handle.write(line)
                handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())

    @classmethod
    def load(cls, path: str) -> "DecisionLog":
        """Load a log, tolerating only a torn final record."""
        try:
            page = read_jsonl(path, on_bad="error")
        except JsonlCorruption as exc:
            raise ReplayError(f"decision log is corrupt: {exc}") from exc
        if not page.records:
            raise ReplayError(f"decision log {path!r} is empty"
                              + (" (only a torn record)"
                                 if page.torn_tail else ""))
        header = page.records[0]
        if not isinstance(header, dict) or header.get("k") != "hdr":
            raise ReplayError(f"{path!r} is not a decision log "
                              "(missing 'hdr' first record)")
        if header.get("format") != FORMAT_VERSION:
            raise ReplayError(
                f"{path!r} has decision-log format "
                f"{header.get('format')!r}; this build reads "
                f"{FORMAT_VERSION}")
        log = cls(spec=header.get("spec"), meta=header.get("meta"))
        for index, record in enumerate(page.records[1:], start=2):
            if not isinstance(record, dict) or "k" not in record:
                raise ReplayError(f"{path}: line {index} is not a "
                                  "decision record")
            if record["k"] == "end":
                log.footer = record
                continue
            if record["k"] not in RECORD_KINDS:
                raise ReplayError(f"{path}: line {index} has unknown "
                                  f"record kind {record['k']!r}")
            log.records.append(record)
        return log


class DecisionLogWriter:
    """Incremental writer: stream a recording log to disk as it grows.

    ``flush`` appends the records the recorder produced since the last
    flush; the file is always header + a record prefix (+ footer after
    :meth:`close`), so a crash leaves at worst a torn final line —
    exactly what :meth:`DecisionLog.load` tolerates.
    """

    def __init__(self, path: str, log: DecisionLog,
                 start_fresh: bool = True):
        self.path = path
        self.log = log
        self._written = 0
        if start_fresh:
            self._handle = open(path, "w")
            self._emit(log.header_dict())
        else:  # pragma: no cover - reserved for append-reopen
            self._handle = open(path, "a")
            self._written = len(log.records)
        self.flush()

    def _emit(self, record: dict) -> None:
        self._handle.write(canonical_line(record))
        self._handle.write("\n")

    def flush(self) -> None:
        while self._written < len(self.log.records):
            self._emit(self.log.records[self._written])
            self._written += 1
        self._handle.flush()

    def close(self, **outcome) -> dict | None:
        """Flush, seal with the run outcome, and close the file."""
        if self._handle.closed:
            return self.log.footer
        self.flush()
        footer = self.log.seal(**outcome)
        self._emit(footer)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        return footer

    def abandon(self) -> None:
        """Close the handle without sealing (recovery takes over)."""
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()
