"""The DecisionRecorder: a pure observer of the master's decisions.

Attached via ``MVEE(..., replay=recorder)``, it sits behind the same
``is not None`` hook pattern as faults/races/obs: the machine fires
``on_step``/``on_sync``/``on_syscall``, the kernel futex table fires
``on_wake``, and the machine's RNG is wrapped in
:class:`RecordingRandom` so every scheduler draw lands in the log.
Recording charges no simulated cycle and consumes no extra randomness —
a recorded run is bit-identical to a plain one (pinned in
``test_determinism.py``).

Only variant 0 (the master) is recorded: slave decisions are *derived*
from the master's by the monitor and agents, so the master stream plus
the scheduler draws is the whole truth.
"""

from __future__ import annotations

from repro.replay.log import DecisionLog


class RecordingRandom:
    """Wrap the machine's ``random.Random``: delegate + log each draw.

    Only the methods the scheduler actually uses are intercepted
    (``randrange`` from ``policy.pick``, ``uniform`` from quantum
    scaling and duration jitter); anything else falls through.
    """

    def __init__(self, rng, sink):
        self._rng = rng
        self._sink = sink

    def randrange(self, *args):
        value = self._rng.randrange(*args)
        self._sink.on_rng("randrange", value)
        return value

    def uniform(self, a, b):
        value = self._rng.uniform(a, b)
        self._sink.on_rng("uniform", value)
        return value

    def random(self):
        value = self._rng.random()
        self._sink.on_rng("random", value)
        return value

    def getstate(self):
        return self._rng.getstate()

    def setstate(self, state):
        self._rng.setstate(state)

    def __getattr__(self, name):
        return getattr(self._rng, name)


class DecisionRecorder:
    """Hook sink appending the master's decision stream to a log."""

    #: How MVEE._attach_replay wires the machine RNG.
    mode = "record"

    def __init__(self, log: DecisionLog | None = None):
        self.log = log if log is not None else DecisionLog()
        #: Committed machine steps seen (stamps records with "i").
        self.steps = 0

    # -- machine hooks -----------------------------------------------------

    def on_step(self) -> None:
        self.steps += 1

    def on_rng(self, method: str, value) -> None:
        self.log.append({"k": "rng", "m": method, "v": value,
                         "i": self.steps})

    def on_sync(self, variant: int, thread: str, op: str, site: str,
                value) -> None:
        if variant != 0:
            return
        self.log.append({"k": "sync", "t": thread, "o": op, "s": site,
                         "v": value, "i": self.steps})

    def on_syscall(self, variant: int, thread: str, name: str,
                   result) -> None:
        if variant != 0:
            return
        self.log.append({"k": "sys", "t": thread, "n": name,
                         "r": repr(result), "i": self.steps})

    def on_wake(self, variant: int, addr: int, woken) -> None:
        if variant != 0 or not woken:
            return
        self.log.append({"k": "wake", "a": addr, "w": list(woken),
                         "i": self.steps})
