"""The DecisionReplayer: re-drive a run from its decision log.

Attached via ``MVEE(..., replay=replayer)``, it consumes the log's
single global record queue in commit order:

* RNG draws are *fed from the log* (:class:`ReplayRandom`), so the
  replay machine's own seed never matters — this is what makes replay
  bit-identical;
* sync/syscall/wake hooks are *verified* against the next expected
  record: the first mismatch (or early exhaustion) is captured once as
  :class:`ReplayMismatch` and the replayer degrades to passthrough —
  raising from inside machine dispatch would corrupt the very run the
  forensics want to look at.

``handoff_at`` supports checkpoint resume: the replayer drives the run
verbatim through the first ``handoff_at`` records, then goes live
(draws fall through to the real RNG — the caller restores its state
from the checkpoint).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.replay.log import DecisionLog


@dataclass
class ReplayMismatch:
    """The first point where the live run left the recorded stream."""

    step: int            # machine step index at divergence
    index: int           # record index into the log
    expected: dict | None  # what the log said (None: log exhausted)
    actual: dict         # what the run did

    def describe(self) -> str:
        expected = ("log exhausted" if self.expected is None
                    else f"expected {self.expected}")
        return (f"replay diverged at step {self.step} "
                f"(record {self.index}): {expected}, got {self.actual}")


class ReplayRandom:
    """Feed scheduler draws from the log; fall back to a real RNG when
    the replayer goes live (checkpoint handoff or divergence).

    The replayer may carry a ``pending_rng_state`` (from a checkpoint):
    it is applied to the fallback RNG lazily, right before the first
    live draw, so the handoff is exact even if the event that crossed
    the handoff index also draws randomness.
    """

    def __init__(self, replayer: "DecisionReplayer", fallback):
        self._replayer = replayer
        self._fallback = fallback

    def _live_rng(self):
        state = self._replayer.pending_rng_state
        if state is not None:
            self._fallback.setstate(state)
            self._replayer.pending_rng_state = None
        return self._fallback

    def randrange(self, *args):
        return self._replayer.draw(
            "randrange", lambda: self._live_rng().randrange(*args))

    def uniform(self, a, b):
        return self._replayer.draw(
            "uniform", lambda: self._live_rng().uniform(a, b))

    def random(self):
        return self._replayer.draw(
            "random", lambda: self._live_rng().random())

    def getstate(self):
        return self._fallback.getstate()

    def setstate(self, state):
        self._fallback.setstate(state)

    def __getattr__(self, name):
        return getattr(self._fallback, name)


def _strip_index(record: dict) -> dict:
    return {key: value for key, value in record.items() if key != "i"}


@dataclass
class DecisionReplayer:
    """Hook sink consuming a :class:`DecisionLog` in commit order."""

    log: DecisionLog
    #: Record index at which to stop replaying and go live (checkpoint
    #: resume).  None = replay and verify the entire log.
    handoff_at: int | None = None
    mode: str = field(default="replay", init=False)
    pos: int = field(default=0, init=False)
    steps: int = field(default=0, init=False)
    live: bool = field(default=False, init=False)
    verified: int = field(default=0, init=False)
    first_divergence: ReplayMismatch | None = field(default=None,
                                                    init=False)
    #: Optional ObsHub notified (tracer-only) on divergence.
    obs = None
    #: Checkpoint resume: RNG state to hand the live RNG at handoff
    #: (applied lazily by :class:`ReplayRandom`).
    pending_rng_state = None
    #: Checkpoint resume: a :class:`DecisionRecorder` that takes over
    #: once live, so the resumed run keeps extending the same log with
    #: no decision lost in the handoff window.
    tail_recorder = None

    def __post_init__(self):
        if self.handoff_at is not None and self.handoff_at <= 0:
            self.live = True

    # -- cursor ------------------------------------------------------------

    def _peek(self) -> dict | None:
        if self.pos < len(self.log.records):
            return self.log.records[self.pos]
        return None

    def _advance(self) -> None:
        self.pos += 1
        if self.handoff_at is not None and self.pos >= self.handoff_at:
            self.live = True

    def _diverged(self, expected: dict | None, actual: dict) -> None:
        if self.first_divergence is None:
            self.first_divergence = ReplayMismatch(
                step=self.steps, index=self.pos, expected=expected,
                actual=actual)
            if self.obs is not None:
                self.obs.replay_diverged(self.steps, self.pos)
        # Desynced: stop steering/verifying, let the run limp on live.
        self.live = True

    # -- machine hooks -----------------------------------------------------

    def on_step(self) -> None:
        self.steps += 1
        if self.tail_recorder is not None:
            self.tail_recorder.steps = self.steps

    def draw(self, method: str, fallback):
        if self.live:
            value = fallback()
            if self.tail_recorder is not None:
                self.tail_recorder.on_rng(method, value)
            return value
        record = self._peek()
        if (record is None or record.get("k") != "rng"
                or record.get("m") != method):
            self._diverged(record, {"k": "rng", "m": method})
            return fallback()
        self._advance()
        self.verified += 1
        return record["v"]

    def _verify(self, actual: dict) -> None:
        record = self._peek()
        if record is None or _strip_index(record) != actual:
            self._diverged(record, actual)
            return
        self._advance()
        self.verified += 1

    def on_sync(self, variant: int, thread: str, op: str, site: str,
                value) -> None:
        if variant != 0:
            return
        if self.live:
            if self.tail_recorder is not None:
                self.tail_recorder.on_sync(variant, thread, op, site,
                                           value)
            return
        self._verify({"k": "sync", "t": thread, "o": op, "s": site,
                      "v": value})

    def on_syscall(self, variant: int, thread: str, name: str,
                   result) -> None:
        if variant != 0:
            return
        if self.live:
            if self.tail_recorder is not None:
                self.tail_recorder.on_syscall(variant, thread, name,
                                              result)
            return
        self._verify({"k": "sys", "t": thread, "n": name,
                      "r": repr(result)})

    def on_wake(self, variant: int, addr: int, woken) -> None:
        if variant != 0 or not woken:
            return
        if self.live:
            if self.tail_recorder is not None:
                self.tail_recorder.on_wake(variant, addr, woken)
            return
        self._verify({"k": "wake", "a": addr, "w": list(woken)})

    # -- outcome -----------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """All records consumed (a complete, faithful replay)."""
        return self.pos >= len(self.log.records)

    def faithful(self) -> bool:
        """True when the whole log was re-enacted without divergence."""
        return self.first_divergence is None and self.exhausted
