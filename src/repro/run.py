"""Convenience runners for native (non-MVEE) guest executions.

The MVEE runners live in :mod:`repro.core.mvee`; this module covers the
baseline: one program, one kernel, no monitor, no agents — the
"unprotected execution" the paper's slowdown figures normalize against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.guest.program import GuestProgram, build_context
from repro.kernel.fs import VirtualDisk
from repro.kernel.kernel import VirtualKernel
from repro.kernel.net import Network
from repro.perf.costs import CostModel
from repro.sched.machine import Machine, MachineReport
from repro.sched.scheduler import SchedulingPolicy
from repro.sched.vm import VariantVM


@dataclass
class NativeResult:
    """Everything a test or bench needs from a native run."""

    report: MachineReport
    disk: VirtualDisk
    vm: VariantVM
    machine: Machine

    @property
    def cycles(self) -> float:
        return self.report.cycles

    @property
    def stdout(self) -> str:
        return self.disk.stream_text("stdout")


def run_native(program: GuestProgram, *, seed: int = 0, cores: int = 16,
               costs: CostModel | None = None,
               policy: SchedulingPolicy | None = None,
               disk: VirtualDisk | None = None,
               network: Network | None = None,
               record_trace: bool = False,
               traffic=None,
               max_cycles: float | None = None) -> NativeResult:
    """Run ``program`` natively and return its result.

    ``traffic`` is an optional callable ``(machine, network) -> None``
    that schedules external client activity (the nginx benchmarks).
    """
    disk = disk if disk is not None else VirtualDisk()
    kernel = VirtualKernel(disk, network=network, role="native")
    vm = VariantVM(index=0, kernel=kernel, record_trace=record_trace)
    machine = Machine(cores=cores, seed=seed, costs=costs, policy=policy)
    if max_cycles is not None:
        machine.max_cycles = max_cycles
    machine.add_vm(vm)
    if network is not None:
        machine.attach_network(network)
    ctx = build_context(vm, program)
    machine.add_thread(vm, "main", program.main(ctx))
    if traffic is not None:
        traffic(machine, network)
    report = machine.run()
    return NativeResult(report=report, disk=disk, vm=vm, machine=machine)
