"""Discrete-event simulation of a multi-core machine running variants.

This package is the "hardware + OS scheduler" substrate: guest threads are
Python generators yielding typed events (:mod:`repro.sched.events`); the
:class:`repro.sched.machine.Machine` executes all threads of all variants
on a fixed number of simulated cores with a seeded, nondeterministic
scheduling policy.  The MVEE monitor and the synchronization agents plug in
through the interceptor interfaces in :mod:`repro.sched.interceptor`.
"""

from repro.sched.events import (
    Compute,
    Syscall,
    SyncOp,
    Spawn,
    Join,
    InstructionClass,
)
from repro.sched.interceptor import (
    Proceed,
    Wait,
    Result,
    Kill,
    SyscallInterceptor,
    SyncAgent,
)
from repro.sched.thread import GuestThread, ThreadState
from repro.sched.scheduler import (
    RandomPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
)
from repro.sched.vm import VariantVM
from repro.sched.machine import Machine, MachineReport

__all__ = [
    "Compute",
    "Syscall",
    "SyncOp",
    "Spawn",
    "Join",
    "InstructionClass",
    "Proceed",
    "Wait",
    "Result",
    "Kill",
    "SyscallInterceptor",
    "SyncAgent",
    "GuestThread",
    "ThreadState",
    "RandomPolicy",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "VariantVM",
    "Machine",
    "MachineReport",
]
