"""Events yielded by guest threads.

A guest thread body is a Python generator.  Each ``yield`` hands the
simulator one of the event types below; the simulator performs the event's
semantic action at its *commit time* (after the simulated duration has
elapsed) and resumes the generator with the event's result.

The event set mirrors the two interaction types the paper identifies as
behaviour-affecting (Section 3): system calls operating on shared resources
(:class:`Syscall`) and inter-thread communication through synchronization
variables (:class:`SyncOp`).  :class:`Compute` is pure local work and only
affects timing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable


class InstructionClass(enum.Enum):
    """The paper's three x86 atomic-access instruction classes (§4.3)."""

    #: Type (i): instructions with a LOCK prefix (LOCK CMPXCHG, LOCK XADD).
    LOCK_PREFIXED = "lock"
    #: Type (ii): XCHG (implicitly locked on x86).
    XCHG = "xchg"
    #: Type (iii): aligned load/store instructions.  Only a sync op when
    #: the accessed variable may alias a type (i)/(ii) operand.
    PLAIN = "plain"


@dataclass
class Compute:
    """Pure computation taking ``cycles`` simulated cycles."""

    cycles: float


@dataclass
class Syscall:
    """A system call.  ``args`` already carry materialized values.

    Real MVEEs must dereference pointer arguments to compare buffers; our
    events carry the buffer contents directly, which models a monitor that
    performed that dereference.
    """

    name: str
    args: tuple = ()


@dataclass
class SyncOp:
    """One atomic instruction on a synchronization variable.

    ``op`` is one of ``"cas"``, ``"xchg"``, ``"fetch_add"``, ``"load"``,
    ``"store"``.  ``addr`` is a variant-local address (diversified layouts
    make it differ across variants for the same logical variable).
    ``site`` labels the static instruction site (e.g.
    ``"libpthread.mutex_lock.cas"``); the instrumentation step decides per
    site whether the agent wrappers are invoked (Listing 3 of the paper —
    un-instrumented sites execute bare, which is how the nginx divergence
    is demonstrated).

    Results delivered to the guest:

    * ``cas(addr, expected, new)`` -> the *old* value (success iff equal to
      ``expected``),
    * ``xchg(addr, new)`` -> old value,
    * ``fetch_add(addr, delta)`` -> old value,
    * ``load(addr)`` -> value,
    * ``store(addr, value)`` -> ``None``.
    """

    op: str
    addr: int
    args: tuple = ()
    iclass: InstructionClass = InstructionClass.LOCK_PREFIXED
    site: str = "anonymous"

    #: Width in bytes; the wall-of-clocks hash deliberately maps adjacent
    #: 32-bit words in one 64-bit granule to the same clock (§4.5).
    width: int = 4


@dataclass
class Spawn:
    """Create a new guest thread running ``fn(ctx, *args)``.

    Reported to the monitor as a ``clone`` system call (ordered and
    security-sensitive).  The result delivered to the guest is the child's
    logical thread id, stable across variants by construction (parent id +
    per-parent child index).
    """

    fn: Callable
    args: tuple = ()
    name: str | None = None


@dataclass
class Join:
    """Wait for the thread with logical id ``tid``; result is its return
    value."""

    tid: str


@dataclass
class Annotate:
    """A no-cost trace annotation (used by tests and the figure benches)."""

    label: str
    payload: Any = None


#: All event types, for isinstance dispatch.
EVENT_TYPES = (Compute, Syscall, SyncOp, Spawn, Join, Annotate)
