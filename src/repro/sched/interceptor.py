"""Interfaces through which the MVEE plugs into the simulator.

The simulator itself knows nothing about monitors or agents; it only knows
that, before executing a syscall or a sync op, an installed interceptor may
tell it to proceed, to park the thread, to deliver a synthesized result, or
to kill the run.  The MVEE monitor (:mod:`repro.core.monitor`) and the
synchronization agents (:mod:`repro.core.agents`) implement these
interfaces; native executions install nothing and pay no cost.

Directives double as cost carriers: ``cost`` is the number of simulated
cycles of extra work (monitor context switches, buffer writes, cache
coherence penalties) charged to the acting thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass
class Proceed:
    """Continue with the action (execute syscall locally / commit sync op)."""

    cost: float = 0.0


@dataclass
class Wait:
    """Park the thread on ``key``; on wake the interceptor is asked again.

    ``cost`` models the work done before deciding to wait (scanning a
    buffer window, a failed rendezvous check, ...).  Spin-style waiting can
    be modelled by the cost model charging occupancy for parked threads.
    """

    key: tuple
    cost: float = 0.0


@dataclass
class Result:
    """Do not execute; deliver ``value`` to the guest (replicated I/O)."""

    value: Any = None
    cost: float = 0.0


@dataclass
class Kill:
    """Terminate all variants (divergence detected).  ``report`` explains."""

    report: Any = None
    cost: float = 0.0


class SyscallInterceptor:
    """Monitor-side hook points.  The default implementation is native
    execution: every syscall proceeds locally at zero extra cost."""

    def before_syscall(self, vm, thread, name: str, args: tuple):
        """Called when a thread is about to execute a syscall.

        May be called several times for one syscall if it returns
        :class:`Wait` (the thread re-asks after each wake).  Returns one of
        Proceed / Wait / Result / Kill.
        """
        return Proceed()

    def after_syscall(self, vm, thread, name: str, args: tuple, result):
        """Called after a locally executed syscall returned ``result``.

        Returns Proceed (possibly with cost) or Kill.  This is where the
        master publishes replicated results and where execute-all results
        are cross-compared.
        """
        return Proceed()

    def on_thread_exit(self, vm, thread) -> None:
        """Called when a guest thread finishes (for rendezvous cleanup)."""

    def on_fault(self, vm, thread, exc) -> "Kill | None":
        """Called when a guest thread faults; returning Kill aborts the run."""
        return None

    def finalize(self):
        """Post-run audit: return a divergence report or None.

        Called by the MVEE after the machine ran to completion; lets
        monitors that never block the leader (the relaxed/VARAN design)
        flag followers that silently fell short of the recorded log.
        """
        return None


class SyncAgent:
    """Synchronization-agent hook points (the paper's before/after pair).

    Listing 3 of the paper wraps every identified sync op between
    ``before_sync_op`` and ``after_sync_op`` calls; these are the run-time
    entry points of the injected shared library.  The master's agent records
    in ``after`` (the op order is its commit order); slave agents gate
    execution in ``before``.
    """

    #: Name used in reports/tables.
    name = "none"

    def before_sync_op(self, vm, thread, op):
        """Return Proceed (commit now) or Wait (order not yet reached)."""
        return Proceed()

    def after_sync_op(self, vm, thread, op, value) -> float:
        """Called right after the op committed; returns extra cycle cost."""
        return 0.0

    def on_thread_descheduled(self, vm, thread) -> None:
        """Called when a thread exits or parks in join.

        Agents whose admission rule quantifies over a variant's runnable
        threads (the DMT baseline) re-evaluate waiters here; the paper's
        record/replay agents do not need it.
        """

