"""The discrete-event simulator: a multi-core machine running variants.

One :class:`Machine` simulates the paper's testbed — a fixed number of
cores executing *all* threads of *all* variants side by side, exactly as
ReMon runs every variant on the same physical machine.  Threads advance in
steps: the machine resumes a thread's generator to learn its next event,
charges the event's duration (base cost + carried monitor/agent overhead +
jitter), and commits the event's semantic effect when the duration elapses.
Commits are atomic and totally ordered by simulated time, which gives
atomic instructions their semantics for free.

Interposition points:

* before/after every monitored syscall, the installed
  :class:`~repro.sched.interceptor.SyscallInterceptor` (the MVEE monitor)
  may park the thread, synthesize a result (replication), or kill the run
  (divergence);
* before/after every *instrumented* sync op, the variant's injected
  :class:`~repro.sched.interceptor.SyncAgent` may park the thread (replay
  ordering) and charges its buffer/contention costs.

Scheduling nondeterminism comes from the seeded policy plus per-step
duration jitter; the same seed always reproduces the same run.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field

from repro.errors import DeadlockError, DivergenceError, GuestFault
from repro.kernel.kernel import Blocked
from repro.kernel.syscalls import spec_for
from repro.kernel.vtime import cycles_to_seconds
from repro.perf.contention import ContentionTracker, coherence_cycles
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.sched.events import (
    Annotate,
    Compute,
    Join,
    Spawn,
    SyncOp,
    Syscall,
)
from repro.sched.interceptor import Kill, Result, Wait
from repro.sched.scheduler import RandomPolicy, SchedulingPolicy
from repro.sched.thread import GuestThread, ThreadState
from repro.sched.vm import TraceEntry, VariantVM

#: Default simulation budget: generous, but finite so livelocks surface.
DEFAULT_MAX_CYCLES = 5e12


@dataclass
class MachineReport:
    """Summary of one finished simulation."""

    cycles: float
    per_variant: dict[int, dict] = field(default_factory=dict)
    total_syscalls: int = 0
    total_sync_ops: int = 0

    @property
    def seconds(self) -> float:
        return cycles_to_seconds(self.cycles)


class Machine:
    """Discrete-event simulation of cores, threads, and interposition."""

    def __init__(self, cores: int = 16, seed: int = 0,
                 costs: CostModel | None = None,
                 policy: SchedulingPolicy | None = None,
                 interceptor=None,
                 max_cycles: float = DEFAULT_MAX_CYCLES):
        self.cores = cores
        self.costs = costs or DEFAULT_COSTS
        self.policy = policy or RandomPolicy()
        self.interceptor = interceptor
        self.max_cycles = max_cycles
        self.rng = random.Random(seed)
        self.now = 0.0
        self.vms: list[VariantVM] = []
        self._heap: list = []
        self._serial = 0
        self._ready: list[GuestThread] = []
        self._free_cores = cores
        self._parked: dict[tuple, list[GuestThread]] = {}
        self._external_waiters: dict[tuple, list] = {}
        self._threads_by_id: dict[str, GuestThread] = {}
        self._divergence = None
        self._fault: GuestFault | None = None
        self._guest_deadlock: DeadlockError | None = None
        # Whether the initial dispatch has happened; lets advance() be
        # called repeatedly (incremental driving) without re-running the
        # bootstrap dispatch.
        self._started = False
        #: Optional callable(vm, thread, label, payload) for Annotate events.
        self.trace_hook = None
        #: Optional :class:`repro.obs.ObsHub`; hooks fire only when set,
        #: so the disabled path costs one attribute test.
        self.obs = None
        #: Optional :class:`repro.faults.FaultInjector`; same zero-cost
        #: contract as ``obs`` — disabled ⇒ one attribute test, and the
        #: simulated timeline is byte-identical to the seed simulator.
        self.faults = None
        #: Optional :class:`repro.races.RaceDetector`; same zero-cost
        #: contract again.  The detector only observes committed events —
        #: it never charges cycles or consumes randomness.
        self.races = None
        #: Optional replay sink (:class:`repro.replay.DecisionRecorder`
        #: or :class:`repro.replay.DecisionReplayer`); same zero-cost
        #: contract.  RNG capture happens by wrapping ``self.rng``, not
        #: through this hook, so the disabled path is one attribute test.
        self.replay = None
        #: Optional :class:`repro.races.DeadlockDetector`; same zero-cost
        #: contract.  Observes committed sync ops to track lock
        #: ownership; its futex hooks live on each VM's FutexTable.
        self.deadlocks = None
        #: Application-level cache-line contention: every atomic access to
        #: a shared word pays coherence, in native runs and MVEE runs
        #: alike.  (Agent-added traffic is charged separately by the
        #: agents themselves.)
        self._line_contention = ContentionTracker()
        # Per-step dispatch caches: the duration and commit handlers for
        # each event type, resolved once instead of walking an
        # isinstance chain on every simulated step (the hottest lookups
        # in the simulator, measured via `repro bench`).  Pure lookup
        # refactor: the per-type arithmetic is unchanged, so timelines
        # stay bit-identical to the chained form.
        self._duration_dispatch = {
            Compute: self._duration_compute,
            SyncOp: self._duration_syncop,
            Syscall: self._duration_syscall,
            Spawn: self._duration_spawn,
            Join: self._duration_join,
            Annotate: self._duration_annotate,
        }
        self._commit_dispatch = {
            Compute: self._commit_compute,
            SyncOp: self._commit_syncop,
            Syscall: self._commit_syscall,
            Spawn: self._commit_spawn_fresh,
            Join: self._commit_join,
            Annotate: self._commit_annotate,
        }
        # Step-kind names for the profiler's step_committed hook (one
        # dict lookup per step, only when a hub is attached).
        self._event_kinds = {
            Compute: "compute",
            SyncOp: "syncop",
            Syscall: "syscall",
            Spawn: "spawn",
            Join: "join",
            Annotate: "annotate",
        }

    # -- setup ----------------------------------------------------------------

    def add_vm(self, vm: VariantVM) -> None:
        """Register a variant and wire its kernel clock to simulated time."""
        self.vms.append(vm)
        vm.kernel.clock.bind(lambda: self.now)

    def attach_network(self, network) -> None:
        """Let network activity wake parked threads and external actors."""
        network.bind_waker(self.wake_key)

    def add_thread(self, vm: VariantVM, logical_id: str, gen) -> GuestThread:
        """Create a guest thread in READY state."""
        thread = GuestThread(vm, logical_id, gen)
        vm.threads[logical_id] = thread
        self._threads_by_id[thread.global_id] = thread
        thread.ready_since = self.now
        self._ready.append(thread)
        if self.obs is not None:
            self.obs.thread_created(vm.index, thread.global_id,
                                    logical_id)
        return thread

    # -- external actors (benchmark traffic drivers etc.) -----------------------

    def call_at(self, time_cycles: float, fn) -> None:
        """Run ``fn(machine)`` at the given simulated time."""
        self._push(max(time_cycles, self.now), "external", fn)

    def call_soon(self, fn) -> None:
        """Run ``fn(machine)`` at the current simulated time."""
        self._push(self.now, "external", fn)

    def wait_key_external(self, key: tuple, fn) -> None:
        """Run ``fn(machine)`` the next time ``key`` is woken."""
        self._external_waiters.setdefault(key, []).append(fn)

    def schedule_watchdog(self, time_cycles: float, fn) -> None:
        """Schedule a watchdog probe ``fn(machine, time)``.

        Unlike :meth:`call_at`, a probe does *not* advance the simulated
        clock and is exempt from the cycle budget: a probe that finds
        nothing wrong leaves the timeline byte-identical to a run
        without watchdogs.  A probe that fires must call
        :meth:`commit_time` itself to account for the waited-out
        deadline.
        """
        self._push(max(time_cycles, self.now), "watchdog", fn)

    def commit_time(self, time_cycles: float) -> None:
        """Advance the clock to a watchdog deadline that really elapsed."""
        if time_cycles > self.now:
            self.now = time_cycles

    # -- wakes ---------------------------------------------------------------------

    def wake_key(self, key: tuple) -> None:
        """Wake every thread and external actor parked on ``key``."""
        threads = self._parked.pop(key, None)
        if threads:
            for thread in threads:
                self._unpark(thread)
        externals = self._external_waiters.pop(key, None)
        if externals:
            for fn in externals:
                self._push(self.now, "external", fn)

    def has_waiters(self, key: tuple) -> bool:
        """Whether any thread is currently parked on ``key``."""
        return bool(self._parked.get(key))

    def wake_thread(self, global_id: str) -> None:
        """Wake one specific parked thread (futex wake path)."""
        thread = self._threads_by_id.get(global_id)
        if thread is None or thread.state is not ThreadState.BLOCKED:
            return
        key = thread.park_key
        if key is not None and key in self._parked:
            waiting = self._parked[key]
            if thread in waiting:
                waiting.remove(thread)
                if not waiting:
                    del self._parked[key]
        self._unpark(thread)

    def _unpark(self, thread: GuestThread) -> None:
        if not thread.alive:
            return
        thread.state = ThreadState.READY
        thread.stats.stall_cycles += self.now - thread.park_time
        thread.park_key = None
        thread.ready_since = self.now
        self._ready.append(thread)
        if self.obs is not None:
            self.obs.unpark(thread.vm.index, thread.global_id,
                            thread.logical_id)

    # -- main loop -------------------------------------------------------------------

    def run(self) -> MachineReport:
        """Simulate until all threads finish.

        Raises :class:`DivergenceError` if the monitor killed the run,
        :class:`GuestFault` for unhandled native faults, and
        :class:`DeadlockError` when no progress is possible.
        """
        return self.advance()

    def advance(self, max_events: int | None = None) -> MachineReport | None:
        """Process up to ``max_events`` pending events, then pause.

        ``None`` (the default) runs to completion — exactly
        :meth:`run`.  With a budget, the machine returns ``None`` when
        the budget is exhausted but the simulation has not finished;
        calling :meth:`advance` again resumes *exactly* where it
        stopped, so a budgeted sequence of calls produces a timeline
        bit-identical to one unbudgeted :meth:`run` (the property
        ``repro.serve`` sessions rely on).  Exceptions propagate at the
        same event they would under :meth:`run`.
        """
        if not self._started:
            self._started = True
            self._dispatch()
            self._raise_if_flagged()
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                return None
            processed += 1
            time, _, kind, payload = heapq.heappop(self._heap)
            if kind == "watchdog":
                # Probes neither advance the clock nor count against the
                # budget; a firing probe commits its own time.
                payload(self, time)
                self._raise_if_flagged()
                self._dispatch()
                self._raise_if_flagged()
                continue
            if time > self.max_cycles:
                raise DeadlockError(
                    f"simulation budget exceeded at {time:.0f} cycles "
                    "(possible livelock)",
                    blocked=self._blocked_summary())
            self.now = time
            if kind == "step_done":
                thread, started = payload
                if thread.alive and thread.state is ThreadState.RUNNING:
                    duration = self.now - started
                    thread.stats.busy_cycles += duration
                    thread.burst_cycles += duration
                    if self.obs is not None:
                        # park_resume is still set for mid-event resumes,
                        # so the hook can attribute the recheck to the
                        # wait that caused it.
                        self.obs.step_committed(
                            thread.vm.index, thread.global_id,
                            thread.logical_id,
                            ("resume" if thread.park_resume is not None
                             else self._event_kinds[
                                 type(thread.pending_event)]),
                            duration)
                    if self.replay is not None:
                        self.replay.on_step()
                    self._commit_step(thread)
            elif kind == "external":
                payload(self)
            elif kind == "timer_wake":
                thread, key = payload
                if (thread.state is ThreadState.BLOCKED
                        and thread.park_key == key):
                    waiting = self._parked.get(key)
                    if waiting and thread in waiting:
                        waiting.remove(thread)
                        if not waiting:
                            del self._parked[key]
                    self._unpark(thread)
            self._raise_if_flagged()
            self._dispatch()
            self._raise_if_flagged()
        alive = [t for t in self._threads_by_id.values() if t.alive]
        if alive:
            raise DeadlockError(
                f"{len(alive)} thread(s) blocked with no pending events",
                blocked=self._blocked_summary())
        return self._report()

    def _raise_if_flagged(self) -> None:
        if self._divergence is not None:
            raise DivergenceError(self._divergence)
        if self._fault is not None:
            raise self._fault
        if self._guest_deadlock is not None:
            raise self._guest_deadlock

    def flag_guest_deadlock(self, record) -> None:
        """Sticky-flag a detected guest deadlock (raised after the
        current event commits, like divergences and faults).

        ``record`` is a :class:`repro.races.DeadlockRecord`; it rides on
        the raised :class:`DeadlockError` as ``.record`` so the MVEE can
        name the cycle in the outcome and forensics bundle.
        """
        if self._guest_deadlock is not None:
            return
        error = DeadlockError(
            f"guest deadlock: {record.cycle_name()} "
            f"(variant {record.variant})",
            blocked=self._blocked_summary())
        error.record = record
        self._guest_deadlock = error

    def _blocked_summary(self) -> list[str]:
        return [f"{t.global_id} waiting on {t.park_key}"
                for t in self._threads_by_id.values()
                if t.state is ThreadState.BLOCKED]

    def _report(self) -> MachineReport:
        report = MachineReport(cycles=self.now)
        for vm in self.vms:
            busy = sum(t.stats.busy_cycles for t in vm.threads.values())
            stall = sum(t.stats.stall_cycles for t in vm.threads.values())
            queue = sum(t.stats.queue_cycles for t in vm.threads.values())
            vm.total_busy_cycles = busy
            vm.total_stall_cycles = stall
            report.per_variant[vm.index] = {
                "busy_cycles": busy,
                "stall_cycles": stall,
                "queue_cycles": queue,
                "syscalls": vm.total_syscalls,
                "sync_ops": vm.total_sync_ops,
            }
            report.total_syscalls += vm.total_syscalls
            report.total_sync_ops += vm.total_sync_ops
        return report

    # -- scheduling ------------------------------------------------------------------------

    def _push(self, time: float, kind: str, payload) -> None:
        self._serial += 1
        heapq.heappush(self._heap, (time, self._serial, kind, payload))

    def _dispatch(self) -> None:
        while self._free_cores > 0 and self._ready:
            index = self.policy.pick(self._ready, self.rng)
            thread = self._ready.pop(index)
            if not thread.alive:
                continue
            thread.stats.queue_cycles += self.now - thread.ready_since
            thread.state = ThreadState.RUNNING
            if self.obs is not None:
                self.obs.sched_grant(thread.vm.index, thread.logical_id)
            thread.burst_cycles = 0.0
            thread.burst_quantum = (self.costs.preempt_quantum
                                    * self.policy.quantum_scale(self.rng))
            self._free_cores -= 1
            if thread.park_resume is not None:
                # Mid-event resume: charge the carried cost, do not touch
                # the generator.
                duration = thread.take_carried_cost() + 1.0
                self._push(self.now + duration, "step_done",
                           (thread, self.now))
            else:
                self._begin_step(thread)

    def _release_core(self) -> None:
        self._free_cores += 1

    def _park(self, thread: GuestThread, key: tuple, resume: tuple) -> None:
        thread.state = ThreadState.BLOCKED
        thread.park_key = key
        thread.park_resume = resume
        thread.park_time = self.now
        self._parked.setdefault(key, []).append(thread)
        self._release_core()
        if self.obs is not None:
            self.obs.park(thread.vm.index, thread.global_id,
                          thread.logical_id, key)

    # -- stepping ----------------------------------------------------------------------------

    def _begin_step(self, thread: GuestThread) -> None:
        """Resume the generator to learn the next event; schedule commit."""
        try:
            event = thread.gen.send(thread.inbox)
        except StopIteration as stop:
            self._finish_thread(thread, stop.value)
            return
        except GuestFault as fault:
            self._handle_fault(thread, fault)
            return
        thread.inbox = None
        thread.pending_event = event
        duration_fn = self._duration_dispatch.get(type(event))
        if duration_fn is None:
            raise TypeError(f"guest yielded a non-event: {event!r}")
        duration = duration_fn(thread, event)
        duration += thread.take_carried_cost()
        jitter = self.costs.compute_jitter
        if jitter:
            duration *= 1.0 + self.rng.uniform(-jitter, jitter)
        self._push(self.now + max(duration, 1.0), "step_done",
                   (thread, self.now))

    # Per-type duration handlers (dispatched via _duration_dispatch).
    # Each also accounts the event's deterministic logical progress —
    # what a performance counter would report, scaled by diversity's
    # instruction_factor; no jitter.

    def _duration_compute(self, thread: GuestThread, event) -> float:
        factor = thread.vm.instruction_factor_for(thread.logical_id)
        thread.stats.logical_instructions += event.cycles * factor
        thread.stats.compute_events += 1
        return max(event.cycles * thread.vm.compute_scale, 1.0)

    def _duration_syncop(self, thread: GuestThread, event) -> float:
        costs = self.costs
        vm = thread.vm
        factor = vm.instruction_factor_for(thread.logical_id)
        thread.stats.logical_instructions += 1.0 * factor
        duration = costs.sync_op_exec
        # The application's own contention on the sync variable's
        # cache line (per variant; granule-level like real lines).
        sharers = self._line_contention.access(
            (vm.index, event.addr >> 6), thread.global_id)
        duration += coherence_cycles(costs, sharers)
        if vm.agent is not None and vm.is_instrumented(event.site):
            duration += costs.agent_wrapper
        return duration

    def _duration_syscall(self, thread: GuestThread, event) -> float:
        factor = thread.vm.instruction_factor_for(thread.logical_id)
        thread.stats.logical_instructions += 10.0 * factor
        return self.costs.syscall_base

    def _duration_spawn(self, thread: GuestThread, event) -> float:
        factor = thread.vm.instruction_factor_for(thread.logical_id)
        thread.stats.logical_instructions += 10.0 * factor
        return self.costs.syscall_base + self.costs.clone_cost

    def _duration_join(self, thread: GuestThread, event) -> float:
        factor = thread.vm.instruction_factor_for(thread.logical_id)
        thread.stats.logical_instructions += 10.0 * factor
        return self.costs.syscall_base

    def _duration_annotate(self, thread: GuestThread, event) -> float:
        factor = thread.vm.instruction_factor_for(thread.logical_id)
        thread.stats.logical_instructions += 10.0 * factor
        return 1.0

    def _commit_step(self, thread: GuestThread) -> None:
        resume = thread.park_resume
        if resume is not None:
            thread.park_resume = None
            kind = resume[0]
            if kind == "recheck_syncop":
                self._commit_syncop(thread, resume[1])
            elif kind == "reask_syscall":
                self._commit_syscall(thread, resume[1])
            elif kind == "retry_kernel":
                self._execute_kernel(thread, resume[1])
            elif kind == "deliver":
                thread.inbox = resume[1]
                self._after_step(thread)
            elif kind == "deliver_syscall":
                self._finish_syscall(thread, resume[1], resume[2])
            elif kind == "respawn":
                self._commit_spawn(thread, resume[1], resume[2])
            elif kind == "rejoin":
                self._commit_join(thread, resume[1])
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown resume kind {kind}")
            return
        event = thread.pending_event
        commit_fn = self._commit_dispatch.get(type(event))
        if commit_fn is not None:
            commit_fn(thread, event)

    def _commit_compute(self, thread: GuestThread, event: Compute) -> None:
        thread.inbox = None
        self._after_step(thread)

    def _commit_spawn_fresh(self, thread: GuestThread,
                            event: Spawn) -> None:
        self._commit_spawn(thread, event, None)

    def _commit_annotate(self, thread: GuestThread,
                         event: Annotate) -> None:
        if self.trace_hook is not None:
            self.trace_hook(thread.vm, thread, event.label, event.payload)
        thread.inbox = None
        self._after_step(thread)

    def _after_step(self, thread: GuestThread, force_yield: bool = False) -> None:
        """Thread finished an event; keep the core or yield it."""
        if not thread.alive:
            return
        if self._ready and (force_yield
                            or thread.burst_cycles >= thread.burst_quantum):
            thread.state = ThreadState.READY
            thread.ready_since = self.now
            self._ready.append(thread)
            self._release_core()
        else:
            self._begin_step(thread)

    # -- sync ops ---------------------------------------------------------------------------------

    def _commit_syncop(self, thread: GuestThread, event: SyncOp) -> None:
        vm = thread.vm
        instrumented = (vm.agent is not None
                        and vm.is_instrumented(event.site))
        if instrumented:
            outcome = vm.agent.before_sync_op(vm, thread, event)
            if isinstance(outcome, Wait):
                thread.carry_cost(outcome.cost
                                  + self.costs.ordering_wait_recheck)
                self._park(thread, outcome.key, ("recheck_syncop", event))
                return
            thread.carry_cost(outcome.cost)
        value = self._apply_syncop(vm, event)
        if self.races is not None:
            self.races.on_sync_op(vm, thread, event, value)
        if self.deadlocks is not None:
            self.deadlocks.on_sync_op(vm, thread, event, value)
        if self.replay is not None:
            self.replay.on_sync(vm.index, thread.logical_id, event.op,
                                event.site, value)
        thread.stats.sync_ops += 1
        vm.total_sync_ops += 1
        if vm.record_sync_trace:
            vm.sync_trace.append(TraceEntry(
                thread=thread.logical_id, kind="syncop",
                name=f"{event.op}@{event.site}", detail=(event.addr,),
                result=value, time=self.now))
        if instrumented:
            thread.carry_cost(vm.agent.after_sync_op(vm, thread, event,
                                                     value))
        thread.inbox = value
        self._after_step(thread)

    @staticmethod
    def _apply_syncop(vm: VariantVM, event: SyncOp):
        """Atomically apply the op to variant memory at commit time."""
        space = vm.kernel.addr_space
        op = event.op
        if op == "cas":
            expected, new = event.args
            old = space.load(event.addr)
            if old == expected:
                space.store(event.addr, new)
            return old
        if op == "xchg":
            (new,) = event.args
            old = space.load(event.addr)
            space.store(event.addr, new)
            return old
        if op == "fetch_add":
            (delta,) = event.args
            old = space.load(event.addr)
            space.store(event.addr, old + delta)
            return old
        if op == "load":
            return space.load(event.addr)
        if op == "store":
            (value,) = event.args
            space.store(event.addr, value)
            return None
        raise TypeError(f"unknown sync op {op!r}")

    # -- syscalls -----------------------------------------------------------------------------------

    def _commit_syscall(self, thread: GuestThread, event: Syscall) -> None:
        vm = thread.vm
        spec = spec_for(event.name)
        if self.faults is not None and not spec.unmonitored:
            spec_hit = self.faults.check_syscall(
                vm.index, thread.logical_id, event.name, vm.total_syscalls)
            if spec_hit is not None:
                if spec_hit.kind == "crash":
                    self._handle_fault(thread, GuestFault(
                        f"injected crash entering {event.name!r}",
                        variant=vm.index, thread=thread.logical_id))
                    return
                # "stall": the call never returns — park on a key that
                # nothing ever wakes (the watchdog's raison d'être).
                self._park(thread, ("fault_stall", thread.global_id),
                           ("reask_syscall", event))
                return
        if self.interceptor is not None and not spec.unmonitored:
            directive = self.interceptor.before_syscall(
                vm, thread, event.name, event.args)
            if isinstance(directive, Kill):
                self._kill_all(directive.report)
                return
            if not thread.alive:
                # The monitor quarantined this thread's own variant
                # while handling the call; the event dies with it.
                return
            if isinstance(directive, Wait):
                thread.carry_cost(directive.cost)
                self._park(thread, directive.key, ("reask_syscall", event))
                return
            if isinstance(directive, Result):
                thread.carry_cost(directive.cost)
                self._record_syscall(vm, thread, event, directive.value)
                thread.inbox = directive.value
                self._after_step(thread)
                return
            thread.carry_cost(directive.cost)
        self._execute_kernel(thread, event)

    def _execute_kernel(self, thread: GuestThread, event: Syscall) -> None:
        vm = thread.vm
        try:
            outcome = vm.kernel.execute(event.name, event.args,
                                        thread.global_id)
        except GuestFault as fault:
            self._handle_fault(thread, fault)
            return
        self._drain_kernel_wakeups(vm)
        if isinstance(outcome, Blocked):
            if outcome.timeout_cycles is not None:
                self._push(self.now + outcome.timeout_cycles, "timer_wake",
                           (thread, outcome.wait_key))
            resume = (("retry_kernel", event) if outcome.retry
                      else ("deliver_syscall", event, outcome.wake_result))
            self._park(thread, outcome.wait_key, resume)
            return
        if (isinstance(outcome, tuple) and outcome
                and outcome[0] == "exit_group"):
            self._exit_group(vm, outcome[1])
            return
        self._finish_syscall(thread, event, outcome)

    def _finish_syscall(self, thread: GuestThread, event: Syscall,
                        outcome) -> None:
        """Record, run the after-hook, and deliver a syscall result."""
        vm = thread.vm
        spec = spec_for(event.name)
        self._record_syscall(vm, thread, event, outcome, spec=spec)
        if self.interceptor is not None and not spec.unmonitored:
            after = self.interceptor.after_syscall(
                vm, thread, event.name, event.args, outcome)
            if isinstance(after, Kill):
                self._kill_all(after.report)
                return
            if not thread.alive:
                return
            thread.carry_cost(after.cost)
        thread.inbox = outcome
        self._after_step(thread,
                         force_yield=(event.name == "sched_yield"))

    def _drain_kernel_wakeups(self, vm: VariantVM) -> None:
        wakeups, vm.kernel.pending_wakeups = vm.kernel.pending_wakeups, []
        for kind, target in wakeups:
            if kind == "key":
                self.wake_key(target)
            else:
                self.wake_thread(target)

    def _record_syscall(self, vm: VariantVM, thread: GuestThread,
                        event: Syscall, result, spec=None) -> None:
        if spec is None:
            spec = spec_for(event.name)
        if spec.unmonitored:
            # sched_yield & co: scheduling noise, not Table 2 traffic.
            return
        thread.stats.syscalls += 1
        vm.total_syscalls += 1
        if self.replay is not None:
            self.replay.on_syscall(vm.index, thread.logical_id,
                                   event.name, result)
        if vm.record_trace:
            detail = tuple(
                "<addr>" if index in spec.address_args else arg
                for index, arg in enumerate(event.args))
            shown = "<addr>" if spec.address_result else result
            vm.trace.append(TraceEntry(
                thread=thread.logical_id, kind="syscall", name=event.name,
                detail=detail, result=shown, time=self.now))

    # -- spawn / join / exit -----------------------------------------------------------------------------

    def _commit_spawn(self, thread: GuestThread, event: Spawn,
                      child_id: str | None) -> None:
        vm = thread.vm
        if child_id is None:
            child_id = (event.name if event.name is not None
                        else thread.next_child_id())
        if self.interceptor is not None:
            directive = self.interceptor.before_syscall(
                vm, thread, "clone", (child_id,))
            if isinstance(directive, Kill):
                self._kill_all(directive.report)
                return
            if not thread.alive:
                return
            if isinstance(directive, Wait):
                thread.carry_cost(directive.cost)
                self._park(thread, directive.key,
                           ("respawn", event, child_id))
                return
            thread.carry_cost(getattr(directive, "cost", 0.0))
        gen = event.fn(*event.args)
        child = self.add_thread(vm, child_id, gen)
        if self.races is not None:
            self.races.on_spawn(thread, child)
        self._record_syscall(vm, thread, Syscall("clone", (child_id,)),
                             child_id)
        if self.interceptor is not None:
            after = self.interceptor.after_syscall(
                vm, thread, "clone", (child_id,), child_id)
            if isinstance(after, Kill):
                self._kill_all(after.report)
                return
            if not thread.alive:
                return
            thread.carry_cost(after.cost)
        thread.inbox = child_id
        self._after_step(thread)

    def _commit_join(self, thread: GuestThread, event: Join) -> None:
        vm = thread.vm
        target = vm.threads.get(event.tid)
        if target is None:
            self._handle_fault(
                thread, GuestFault(f"join on unknown thread {event.tid!r}",
                                   variant=vm.index,
                                   thread=thread.logical_id))
            return
        if target.state is ThreadState.DONE:
            if self.races is not None:
                self.races.on_join(thread, target)
            thread.inbox = target.result
            self._after_step(thread)
            return
        self._park(thread, ("join", vm.index, event.tid), ("rejoin", event))
        if vm.agent is not None:
            vm.agent.on_thread_descheduled(vm, thread)

    def _finish_thread(self, thread: GuestThread, value) -> None:
        thread.result = value
        thread.state = ThreadState.DONE
        thread.pending_event = None
        if self.obs is not None:
            self.obs.thread_finished(thread.vm.index, thread.global_id,
                                     thread.logical_id)
        if self.interceptor is not None:
            self.interceptor.on_thread_exit(thread.vm, thread)
        if thread.vm.agent is not None:
            thread.vm.agent.on_thread_descheduled(thread.vm, thread)
        self._release_core()
        self.wake_key(("join", thread.vm.index, thread.logical_id))

    def _exit_group(self, vm: VariantVM, code: int) -> None:
        """Terminate every thread of one variant (exit_group)."""
        for other in vm.threads.values():
            if other.alive:
                if other.state is ThreadState.RUNNING:
                    self._release_core()
                elif other.state is ThreadState.BLOCKED:
                    self._remove_parked(other)
                elif other.state is ThreadState.READY:
                    if other in self._ready:
                        self._ready.remove(other)
                other.state = ThreadState.DONE
                other.result = code
                self.wake_key(("join", vm.index, other.logical_id))

    def _remove_parked(self, thread: GuestThread) -> None:
        key = thread.park_key
        if key is not None and key in self._parked:
            waiting = self._parked[key]
            if thread in waiting:
                waiting.remove(thread)
                if not waiting:
                    del self._parked[key]
        thread.park_key = None

    # -- faults and kills --------------------------------------------------------------------------------------

    def _handle_fault(self, thread: GuestThread, fault: GuestFault) -> None:
        fault.variant = thread.vm.index
        fault.thread = thread.logical_id
        thread.state = ThreadState.KILLED
        self._release_core()
        if self.interceptor is not None:
            directive = self.interceptor.on_fault(thread.vm, thread, fault)
            if isinstance(directive, Kill):
                self._kill_all(directive.report)
                return
            # Monitor tolerated the fault: the thread dies alone.
            self.wake_key(("join", thread.vm.index, thread.logical_id))
            return
        self._fault = fault

    def terminate_variant(self, variant_index: int) -> None:
        """Quarantine support: kill every thread of one variant without
        exit callbacks (the variant is demoted, not exiting cleanly)."""
        vm = next((v for v in self.vms if v.index == variant_index), None)
        if vm is None:  # pragma: no cover - defensive
            return
        vm.killed = True
        vm.quarantined = True
        for thread in vm.threads.values():
            if not thread.alive:
                continue
            if thread.state is ThreadState.RUNNING:
                self._release_core()
            elif thread.state is ThreadState.BLOCKED:
                self._remove_parked(thread)
            elif thread.state is ThreadState.READY:
                if thread in self._ready:
                    self._ready.remove(thread)
            thread.state = ThreadState.KILLED
        agent_shared = getattr(vm.agent, "shared", None)
        if agent_shared is not None:
            # A demoted slave stops consuming the sync logs; ring-buffer
            # backpressure must not wait on it.
            agent_shared.retire_variant(vm.index)

    def replace_vm(self, vm: VariantVM) -> None:
        """Restart support: swap a rebuilt variant in at its old index."""
        for position, old in enumerate(self.vms):
            if old.index == vm.index:
                self.vms[position] = vm
                break
        vm.kernel.clock.bind(lambda: self.now)

    def kill_all(self, report) -> None:
        """Externally triggered kill (e.g. a watchdog timeout verdict)."""
        self._kill_all(report)

    def _kill_all(self, report) -> None:
        """Divergence: terminate every variant (the MVEE's response)."""
        self._divergence = report
        if self.obs is not None:
            self.obs.divergence(report)
        for vm in self.vms:
            vm.killed = True
            for thread in vm.threads.values():
                if thread.alive:
                    thread.state = ThreadState.KILLED
        self._heap.clear()
        self._ready.clear()
        self._parked.clear()
        self._free_cores = self.cores
