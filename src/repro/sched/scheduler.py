"""Scheduling policies: who gets a free core next.

The policy is the simulation's source of scheduling nondeterminism — the
exact phenomenon that causes "benign divergence" in real MVEEs (Section 1:
"if the thread schedules between two variants diverge, so will their
externally visible behavior").  A seeded :class:`RandomPolicy` makes runs
reproducible while still interleaving the variants' threads differently
from one another; :class:`RoundRobinPolicy` exists for tests that need a
fully predictable order.
"""

from __future__ import annotations

import random


class SchedulingPolicy:
    """Interface: pick the index of the next thread to run."""

    def pick(self, ready: list, rng: random.Random) -> int:
        raise NotImplementedError

    def quantum_scale(self, rng: random.Random) -> float:
        """Multiplier applied to the preemption quantum for one grant.

        Randomizing the quantum models timer-interrupt phase differences
        between variants — a second, independent source of schedule
        nondeterminism.
        """
        return 1.0


class RandomPolicy(SchedulingPolicy):
    """Uniformly random choice among ready threads (default)."""

    def pick(self, ready: list, rng: random.Random) -> int:
        return rng.randrange(len(ready))

    def quantum_scale(self, rng: random.Random) -> float:
        return rng.uniform(0.5, 1.5)


class RoundRobinPolicy(SchedulingPolicy):
    """FIFO among ready threads; fully deterministic given arrival order."""

    def pick(self, ready: list, rng: random.Random) -> int:
        return 0
