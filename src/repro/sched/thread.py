"""Guest thread contexts.

Threads are identified by *logical ids* that are stable across variants:
the main thread is ``"main"`` and the k-th thread spawned by thread P is
``"P/k"``.  Because spawning follows each parent's program order (which is
deterministic in the data-race-free programs the paper targets), the same
logical id denotes the same logical thread in every variant — this is how
the monitor pairs "equivalent threads" (Section 4: each monitor thread
monitors one set of equivalent variant threads) and how per-master-thread
sync buffers are matched to slave threads (Section 4.5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Generator


class ThreadState(enum.Enum):
    READY = "ready"        # runnable, waiting for a core
    RUNNING = "running"    # occupying a core, step in flight
    BLOCKED = "blocked"    # parked on a wait key
    DONE = "done"          # generator finished
    KILLED = "killed"      # terminated by the monitor


@dataclass
class ThreadStats:
    """Per-thread accounting used by the performance reports."""

    busy_cycles: float = 0.0
    stall_cycles: float = 0.0
    queue_cycles: float = 0.0
    syscalls: int = 0
    sync_ops: int = 0
    compute_events: int = 0
    #: Deterministic logical progress (unjittered; scaled by the variant's
    #: instruction_factor).  This is the "executed instructions" counter
    #: performance-counter DMT systems schedule on (Section 2.1) — and
    #: exactly what software diversity perturbs.
    logical_instructions: float = 0.0


class GuestThread:
    """One guest thread: a generator plus scheduling state."""

    __slots__ = (
        "vm", "logical_id", "gen", "state", "inbox", "park_key",
        "park_resume", "result", "stats", "child_count", "global_id",
        "burst_cycles", "burst_quantum", "ready_since", "park_time",
        "pending_event", "_step_extra",
    )

    def __init__(self, vm, logical_id: str,
                 gen: Generator):
        self.vm = vm
        self.logical_id = logical_id
        #: Globally unique id: "v0:main/1".  Used for futex waiter lists
        #: and wait keys.
        self.global_id = f"v{vm.index}:{logical_id}"
        self.gen = gen
        self.state = ThreadState.READY
        #: Value sent into the generator at the next resume.
        self.inbox: Any = None
        self.park_key: tuple | None = None
        #: How to resume after a wake: ("retry_syscall", ev) /
        #: ("deliver", value) / ("recheck_syncop", ev) /
        #: ("reask_syscall", ev).
        self.park_resume: tuple | None = None
        self.result: Any = None
        self.stats = ThreadStats()
        self.child_count = 0
        #: Cycles run since this thread was last granted a core (for
        #: quantum-based preemption).
        self.burst_cycles = 0.0
        self.burst_quantum = float("inf")
        self.ready_since = 0.0
        self.park_time = 0.0
        #: The event currently being processed (between resume and commit).
        self.pending_event = None
        #: Extra cycles carried into the next step (monitor/agent costs).
        self._step_extra = 0.0

    # -- lifecycle ------------------------------------------------------------

    def next_child_id(self) -> str:
        """Logical id for this thread's next spawned child."""
        self.child_count += 1
        return f"{self.logical_id}/{self.child_count}"

    def carry_cost(self, cycles: float) -> None:
        """Charge ``cycles`` of overhead to this thread's next step."""
        self._step_extra += cycles

    def take_carried_cost(self) -> float:
        """Consume the accumulated carried cost."""
        extra, self._step_extra = self._step_extra, 0.0
        return extra

    @property
    def alive(self) -> bool:
        return self.state not in (ThreadState.DONE, ThreadState.KILLED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GuestThread {self.global_id} {self.state.value}>"
