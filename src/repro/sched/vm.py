"""Per-variant virtual machine container.

A :class:`VariantVM` bundles everything private to one variant: its kernel
(address space, FDs, futexes), its injected synchronization agent (if any),
the instrumentation filter that decides which sync-op sites call the agent,
and optional traces used by tests and the figure benches.

The same class serves native runs (``index=0``, no agent, no interceptor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.kernel.kernel import VirtualKernel


@dataclass
class TraceEntry:
    """One traced event (syscall or sync op) for divergence comparison."""

    thread: str
    kind: str            # "syscall" | "syncop"
    name: str            # syscall name or sync op "op@site"
    detail: tuple        # normalized arguments
    result: object = None
    time: float = 0.0

    def key(self) -> tuple:
        """Comparison key: what an MVEE monitor would cross-check."""
        return (self.thread, self.kind, self.name, self.detail)


class VariantVM:
    """One variant: kernel + agent + instrumentation + traces."""

    def __init__(self, index: int, kernel: VirtualKernel,
                 instrument: Callable[[str], bool] | None = None,
                 record_trace: bool = False,
                 record_sync_trace: bool = False):
        self.index = index
        self.kernel = kernel
        #: The injected synchronization agent (None when not injected —
        #: e.g. native runs, or the un-instrumented nginx demo).
        self.agent = None
        #: Predicate deciding whether a sync-op *site* is instrumented.
        #: ``None`` means "nothing instrumented".
        self.instrument = instrument
        self.record_trace = record_trace
        self.record_sync_trace = record_sync_trace
        self.trace: list[TraceEntry] = []
        self.sync_trace: list[TraceEntry] = []
        self.threads: dict[str, object] = {}
        #: Set when the monitor killed this variant (divergence).
        self.killed = False
        #: Set when the monitor demoted this variant under a graceful
        #: degradation policy (the rest of the set kept running).
        self.quarantined = False
        #: Diversity knobs: compute_scale models NOP-insertion slowing the
        #: variant down; instruction_factor perturbs the *logical
        #: instruction count* diversified code executes for the same work
        #: (what breaks performance-counter-based DMT, Section 2.1).
        self.compute_scale = 1.0
        self.instruction_factor = 1.0
        #: Per-thread relative spread on instruction counts: NOP insertion
        #: does not inflate all code paths evenly, so each thread's factor
        #: is drawn from instruction_factor * (1 ± instruction_noise).
        self.instruction_noise = 0.0
        self.noise_seed = 0
        self._thread_factors: dict[str, float] = {}
        #: Extra bytes the (diversified) allocator pads onto each malloc;
        #: a different value per variant changes allocation behaviour and
        #: is the documented-unsupported diversity case (Section 4.5.1).
        self.malloc_padding = 0
        #: Per-variant aggregate counters (filled by the machine).
        self.total_syscalls = 0
        self.total_sync_ops = 0
        self.total_stall_cycles = 0.0
        self.total_busy_cycles = 0.0

    @property
    def addr_space(self):
        return self.kernel.addr_space

    def instruction_factor_for(self, logical_id: str) -> float:
        """Per-thread logical-instruction multiplier under diversity."""
        if not self.instruction_noise:
            return self.instruction_factor
        factor = self._thread_factors.get(logical_id)
        if factor is None:
            import random
            rng = random.Random(
                f"{self.noise_seed}:{self.index}:{logical_id}")
            factor = self.instruction_factor * (
                1.0 + rng.uniform(-self.instruction_noise,
                                  self.instruction_noise))
            self._thread_factors[logical_id] = factor
        return factor

    def is_instrumented(self, site: str) -> bool:
        """Whether sync ops at ``site`` call the agent wrappers."""
        if self.instrument is None:
            return False
        return self.instrument(site)

    def per_thread_syscall_trace(self) -> dict[str, list[tuple]]:
        """Traced syscalls grouped by logical thread (comparison keys).

        This is the per-thread view an Orchestra-style monitor compares;
        our strict monitor compares the same keys in lockstep instead.
        """
        grouped: dict[str, list[tuple]] = {}
        for entry in self.trace:
            if entry.kind == "syscall":
                grouped.setdefault(entry.thread, []).append(entry.key())
        return grouped

    def alive_threads(self) -> list:
        return [t for t in self.threads.values() if t.alive]
