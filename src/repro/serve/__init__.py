"""``repro.serve`` — MVEE-as-a-service.

The paper's monitor is a long-lived supervisor; this package gives the
reproduction the matching deployment shape: a daemon
(:mod:`repro.serve.daemon`) that hosts many concurrent lockstep
sessions (:mod:`repro.serve.session`) behind a session registry with
admission control and restart-surviving persistence
(:mod:`repro.serve.registry`), spoken to over a JSON-lines protocol
(:mod:`repro.serve.protocol`) by a thin client
(:mod:`repro.serve.client`), and load-tested end to end by
``repro serve bench`` (:mod:`repro.serve.bench`).

The byte-identity contract: a served session's verdict and
:meth:`~repro.obs.ObsHub.digest` are identical to the equivalent
single-shot ``repro run`` for the same (workload, agent, seed),
whether the session is driven in step batches or through the shared
worker pool.  See ``docs/SERVING.md``.
"""

from __future__ import annotations

from repro.serve.client import ServeClient, wait_for_daemon
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.registry import SessionRegistry, recover_state
from repro.serve.session import Session, SessionSpec, run_session_cell

__all__ = [
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "Session",
    "SessionRegistry",
    "SessionSpec",
    "recover_state",
    "run_session_cell",
    "wait_for_daemon",
]
