"""``repro serve bench`` — the daemon's load test.

Starts an in-process daemon, pushes the :mod:`repro.experiments.serve_load`
scenario through it from ``concurrency`` client threads (each with its
own socket), and records throughput, latency percentiles, and admission
control behaviour into ``BENCH_serve.json``.

Admission control is part of the scenario, not an accident: the client
count deliberately exceeds ``max_sessions``, so some creates are
rejected with a typed :class:`repro.errors.QuotaExceeded` and retried
with backoff.  The report counts those rejections — a healthy run has
``rejected > 0`` (the quota engaged) and ``completed == sessions``
(nobody was starved; rejection is backpressure, not loss).

Artifact schema (``format_version`` 2, same trajectory discipline as
``BENCH_par.json`` — see ``docs/SERVING.md``):

``kind``/``format_version``/``generated_unix``/``host``
    Artifact identification, as in ``repro bench``.
``config``
    ``sessions``, ``concurrency``, ``max_sessions``, ``jobs``,
    ``workload``, ``agent``, ``variants``, ``base_seed``, ``mode``.
``totals``
    ``completed``, ``verdicts`` (count per verdict), ``rejected``
    (quota rejections observed by clients), ``peak_active``,
    ``recovered``.
``wall_s``/``throughput_sps``
    End-to-end wall clock and sessions per second (host quantities).
``latency_ms``
    Per-session create→result latency: ``mean``, ``p50``, ``p95``,
    ``p99``, ``max``.
``digest``
    ``sha256:`` over the canonical per-session outcomes (simulated
    quantities only) — identical across hosts, jobs, and re-runs.
``verified_single_shot``
    When verification is on: whether sampled sessions' verdicts and obs
    digests matched the daemon-less single-shot oracle.
``trajectory``
    Accumulated history entries, oldest first (v2 discipline).
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time

from repro.errors import QuotaExceeded
from repro.experiments import serve_load
from repro.serve.client import ServeClient
from repro.serve.daemon import ServeConfig, ServeDaemon

DEFAULT_OUT = "BENCH_serve.json"

FORMAT_VERSION = 2


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def run_serve_bench(sessions: int = 256, concurrency: int = 72,
                    max_sessions: int = 64, jobs: int = 0,
                    env: str | None = None,
                    workload: str = serve_load.DEFAULT_WORKLOAD,
                    agent: str = serve_load.DEFAULT_AGENT,
                    variants: int = serve_load.DEFAULT_VARIANTS,
                    base_seed: int = 1,
                    mode: str = "batch",
                    step_events: int = 20_000,
                    verify_sample: int = 2,
                    out_path: str | None = DEFAULT_OUT,
                    trajectory: list | None = None) -> dict:
    """Run the load test and return (and optionally write) the report.

    ``mode`` is ``"batch"`` (sessions go through the shared
    CellExecutor via the ``run`` op) or ``"step"`` (each client drives
    its session in ``step_events``-sized batches) — both paths must
    produce the same digest.  ``verify_sample`` sessions (spread across
    the scenario) are re-executed without the daemon and compared
    against the served verdict + obs digest.
    """
    if mode not in ("batch", "step"):
        raise ValueError(f"unknown serve bench mode {mode!r}")
    specs = serve_load.build_load(sessions, workload=workload,
                                  agent=agent, variants=variants,
                                  base_seed=base_seed)
    daemon = ServeDaemon(ServeConfig(port=0, max_sessions=max_sessions,
                                     jobs=jobs, env=env))
    host, port = daemon.start()
    outcomes: list[dict] = []
    latencies: list[float] = []
    rejected = 0
    failures: list[str] = []
    lock = threading.Lock()
    cursor = iter(enumerate(specs))

    def _next_slot():
        with lock:
            return next(cursor, None)

    def _drive(client: ServeClient, spec: dict) -> dict:
        nonlocal rejected
        session_id = None
        while session_id is None:
            try:
                session_id = client.create(spec)
            except QuotaExceeded:
                with lock:
                    rejected += 1
                time.sleep(0.005)
        if mode == "batch":
            envelope = client.run(session_id, wait=True)
            while not envelope["done"]:
                envelope = client.poll(session_id)
        else:
            while True:
                envelope = client.step(session_id,
                                       max_events=step_events)
                if envelope["done"] or envelope["state"] == "killed":
                    break
        client.close_session(session_id)
        return envelope["result"]

    def _client_loop() -> None:
        try:
            client = ServeClient(host, port, timeout=600.0)
        except Exception as exc:
            with lock:
                failures.append(f"connect: {exc}")
            return
        with client:
            while True:
                slot = _next_slot()
                if slot is None:
                    return
                index, spec = slot
                started = time.perf_counter()
                try:
                    result = _drive(client, spec)
                except Exception as exc:
                    with lock:
                        failures.append(
                            f"session {index}: "
                            f"{type(exc).__name__}: {exc}")
                    continue
                elapsed_ms = (time.perf_counter() - started) * 1e3
                with lock:
                    latencies.append(elapsed_ms)
                    outcomes.append({"index": index,
                                     "seed": spec["seed"],
                                     **(result or {})})

    start = time.perf_counter()
    threads = [threading.Thread(target=_client_loop,
                                name=f"load-client-{i}", daemon=True)
               for i in range(concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    status = ServeClient(host, port).status()
    daemon.stop()

    verified = None
    if verify_sample and outcomes:
        verified = True
        by_index = {o["index"]: o for o in outcomes}
        stride = max(1, sessions // verify_sample)
        for index in list(range(0, sessions, stride))[:verify_sample]:
            served = by_index.get(index)
            if served is None:
                verified = False
                continue
            oracle = serve_load.single_shot(specs[index])
            if (oracle["verdict"] != served.get("verdict")
                    or oracle["obs_digest"] != served.get("obs_digest")):
                verified = False

    latencies.sort()
    verdicts: dict[str, int] = {}
    for outcome in outcomes:
        verdict = outcome.get("verdict") or "unknown"
        verdicts[verdict] = verdicts.get(verdict, 0) + 1
    report = {
        "kind": "repro-serve-bench",
        "format_version": FORMAT_VERSION,
        "generated_unix": int(time.time()),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "sessions": sessions,
            "concurrency": concurrency,
            "max_sessions": max_sessions,
            "jobs": jobs,
            "env": daemon.executor.env,
            "workload": workload,
            "agent": agent,
            "variants": variants,
            "base_seed": base_seed,
            "mode": mode,
        },
        "totals": {
            "completed": len(outcomes),
            "verdicts": dict(sorted(verdicts.items())),
            "rejected": rejected,
            "failures": failures,
            "peak_active": status.get("peak_active"),
            "recovered": status.get("recovered"),
        },
        "wall_s": wall,
        "throughput_sps": (len(outcomes) / wall) if wall > 0 else None,
        "latency_ms": {
            "mean": (sum(latencies) / len(latencies)
                     if latencies else 0.0),
            "p50": _percentile(latencies, 0.50),
            "p95": _percentile(latencies, 0.95),
            "p99": _percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
        "digest": serve_load.load_digest(outcomes),
        "verified_single_shot": verified,
        "trajectory": list(trajectory or []),
    }
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
            handle.write("\n")
    return report


def render_serve_bench(report: dict) -> str:
    """Human-readable summary of a serve bench report."""
    config = report["config"]
    totals = report["totals"]
    latency = report["latency_ms"]
    verdicts = ", ".join(f"{k}: {v}"
                         for k, v in totals["verdicts"].items())
    lines = [
        "repro serve bench: session load through the daemon",
        f"load     : {config['sessions']} x {config['workload']} "
        f"session(s), {config['concurrency']} client(s), "
        f"quota {config['max_sessions']} active, "
        f"{config['jobs']} worker job(s)"
        + (f" [{config['env']}]" if config.get("env") else "")
        + f", mode {config['mode']}",
        f"outcome  : {totals['completed']} completed ({verdicts}), "
        f"{totals['rejected']} quota rejection(s) retried, "
        f"{len(totals['failures'])} failure(s)",
        f"peak     : {totals['peak_active']} concurrently active "
        "session(s)",
        f"wall     : {report['wall_s']:.2f}s, "
        f"{report['throughput_sps']:.1f} sessions/s",
        f"latency  : p50 {latency['p50']:.1f}ms, "
        f"p95 {latency['p95']:.1f}ms, p99 {latency['p99']:.1f}ms, "
        f"max {latency['max']:.1f}ms",
        f"digest   : {report['digest']}",
    ]
    if report.get("verified_single_shot") is not None:
        lines.append("identity : sampled sessions "
                     + ("MATCH single-shot runs"
                        if report["verified_single_shot"]
                        else "DIFFER from single-shot runs (bug!)"))
    return "\n".join(lines)


#: Config fields two serve reports must agree on to be comparable.
SERVE_IDENTITY = ("sessions", "workload", "agent", "variants",
                  "base_seed", "mode")


def compare_serve_reports(new: dict, ref: dict,
                          wall_tolerance: float | None = None
                          ) -> list:
    """Gate a fresh serve bench report against a committed reference.

    Returns :class:`repro.prof.regress.Finding` lines, same contract as
    ``repro bench --compare``: simulated quantities (digest, completion,
    single-shot identity) are hard failures, host quantities
    (throughput) are advisory warnings.
    """
    from repro.prof import regress

    if wall_tolerance is None:
        wall_tolerance = regress.DEFAULT_WALL_TOLERANCE
    findings: list[regress.Finding] = []
    new_config = new.get("config", {})
    ref_config = ref.get("config", {})
    mismatched = [key for key in SERVE_IDENTITY
                  if new_config.get(key) != ref_config.get(key)]
    if mismatched:
        findings.append(regress.Finding(
            "fail", "load-mismatch",
            "reports ran different loads "
            f"({', '.join(mismatched)} differ) — digests are not "
            "comparable"))
        return findings

    if new.get("digest") != ref.get("digest"):
        findings.append(regress.Finding(
            "fail", "digest-divergence",
            f"serve digest changed: {ref.get('digest')} -> "
            f"{new.get('digest')} (a served session's simulated "
            "outcome moved)"))
    else:
        findings.append(regress.Finding(
            "info", "digest",
            f"serve digest identical ({new.get('digest')})"))

    new_totals = new.get("totals", {})
    ref_totals = ref.get("totals", {})
    if new_totals.get("completed") != ref_totals.get("completed"):
        findings.append(regress.Finding(
            "fail", "completed",
            f"completed sessions changed: {ref_totals.get('completed')}"
            f" -> {new_totals.get('completed')}"))
    failures = new_totals.get("failures") or []
    if failures:
        findings.append(regress.Finding(
            "fail", "failures",
            f"{len(failures)} client failure(s) in the new run "
            f"(first: {failures[0]})"))
    if new.get("verified_single_shot") is False:
        findings.append(regress.Finding(
            "fail", "single-shot-divergence",
            "served sessions diverged from the daemon-less "
            "single-shot oracle"))

    new_tp = new.get("throughput_sps")
    ref_tp = ref.get("throughput_sps")
    if new_tp and ref_tp:
        delta = (ref_tp - new_tp) / ref_tp
        if delta > wall_tolerance:
            findings.append(regress.Finding(
                "warn", "throughput",
                f"throughput regressed {delta * 100.0:+.1f}% "
                f"({ref_tp:.1f} -> {new_tp:.1f} sessions/s, tolerance "
                f"{wall_tolerance * 100.0:.0f}%)"))
        else:
            findings.append(regress.Finding(
                "info", "throughput",
                f"throughput {-delta * 100.0:+.1f}% "
                f"({ref_tp:.1f} -> {new_tp:.1f} sessions/s)"))
    return findings


def serve_trajectory_entry(report: dict) -> dict:
    """Compact history record for one serve bench reference."""
    return {
        "generated_unix": report.get("generated_unix"),
        "format_version": report.get("format_version"),
        "digest": report.get("digest"),
        "sessions": report.get("config", {}).get("sessions"),
        "throughput_sps": (round(report["throughput_sps"], 2)
                           if report.get("throughput_sps") else None),
        "rejected": report.get("totals", {}).get("rejected"),
    }
