"""Thin blocking client for the serve daemon.

One :class:`ServeClient` wraps one TCP connection; every method is a
single request/response exchange over the JSON-lines protocol.  Failures
come back as the *same* typed :class:`repro.errors.ServeError` subclass
the daemon raised (re-raised via :func:`repro.serve.protocol.raise_for`),
so a caller handles a quota rejection with ``except QuotaExceeded`` on
either side of the wire.  Transport-level failures (connection refused,
daemon died mid-request) raise :class:`repro.errors.DaemonUnavailable`.

The load generator (:mod:`repro.serve.bench`), the CLI (``repro serve
status``), CI smoke, and the test suite all drive the daemon through
this class — there is no second client code path to drift.
"""

from __future__ import annotations

import json
import socket
import time

from repro.errors import DaemonUnavailable
from repro.serve import protocol


class ServeClient:
    """One connection to a serve daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7333,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        except OSError as exc:
            raise DaemonUnavailable(
                f"cannot reach serve daemon at {host}:{port}: "
                f"{exc}") from None
        self._file = self._sock.makefile("rwb")

    # -- transport ---------------------------------------------------------

    def request(self, op: str, **fields) -> dict:
        """One exchange; returns the ok-response dict or re-raises the
        daemon's typed error.

        When a host trace context is current on this thread (the CLI
        installs one per command), it rides the request's ``trace``
        field and the exchange is recorded as an ``rpc.<op>`` span —
        the client half of the CLI → daemon → session → worker trace.
        """
        from repro.telemetry.context import current_context, wire_context
        from repro.telemetry.spans import enabled, span

        message = {"op": op}
        message.update(fields)
        if current_context() is None and not enabled():
            # No trace to continue and nothing recording: the wire
            # bytes stay exactly pre-telemetry.
            return self._exchange(message)
        with span(f"rpc.{op}", op=op):
            if protocol.TRACE_FIELD not in message:
                message[protocol.TRACE_FIELD] = wire_context()
            return self._exchange(message)

    def _exchange(self, message: dict) -> dict:
        try:
            self._file.write(protocol.encode(message))
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            raise DaemonUnavailable(
                f"serve daemon connection lost: {exc}") from None
        if not line:
            raise DaemonUnavailable(
                "serve daemon closed the connection")
        return protocol.raise_for(json.loads(line))

    def close(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ops ---------------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def status(self) -> dict:
        return self.request("status")

    def workloads(self) -> list[dict]:
        return self.request("workloads")["workloads"]

    def create(self, spec: dict) -> str:
        """Create a session from a spec dict; returns the session id."""
        return self.request("create", spec=spec)["id"]

    def step(self, session_id: str, max_events: int | None = None) -> dict:
        fields = {"id": session_id}
        if max_events is not None:
            fields["max_events"] = max_events
        return self.request("step", **fields)

    def run(self, session_id: str, wait: bool = True,
            timeout: float | None = None) -> dict:
        fields = {"id": session_id, "wait": wait}
        if timeout is not None:
            fields["timeout"] = timeout
        return self.request("run", **fields)

    def poll(self, session_id: str) -> dict:
        return self.request("poll", id=session_id)

    def metrics(self, session_id: str) -> dict:
        return self.request("metrics", id=session_id)

    def host_metrics(self) -> dict:
        """The daemon's host metrics: Prometheus text under
        ``exposition`` plus the raw snapshot under ``metrics``."""
        return self.request("metrics")

    def resume(self, session_id: str) -> dict:
        return self.request("resume", id=session_id)

    def close_session(self, session_id: str) -> dict:
        return self.request("close", id=session_id)

    def shutdown(self) -> dict:
        return self.request("shutdown")

    # -- conveniences ------------------------------------------------------

    def run_to_verdict(self, spec: dict, step_events: int | None = None,
                       close: bool = True) -> dict:
        """create → drive to completion → (optionally) close.

        ``step_events`` selects the stepped path with that event budget
        per step; ``None`` uses the batch path (one blocking ``run``).
        Returns the session's final result dict.
        """
        session_id = self.create(spec)
        if step_events is None:
            envelope = self.run(session_id, wait=True)
            while not envelope["done"]:
                envelope = self.poll(session_id)
                if not envelope["done"]:
                    time.sleep(0.01)
        else:
            while True:
                envelope = self.step(session_id, max_events=step_events)
                if envelope["done"] or envelope["state"] == "killed":
                    break
        result = envelope["result"]
        if close:
            self.close_session(session_id)
        return result


def wait_for_daemon(host: str, port: int, deadline_s: float = 10.0,
                    interval_s: float = 0.05) -> ServeClient:
    """Poll until the daemon accepts connections; used by CI smoke and
    tests that start the daemon as a separate process."""
    last: Exception | None = None
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            client = ServeClient(host, port)
            client.ping()
            return client
        except DaemonUnavailable as exc:
            last = exc
            time.sleep(interval_s)
    raise DaemonUnavailable(
        f"serve daemon at {host}:{port} did not come up within "
        f"{deadline_s:.0f}s: {last}")
