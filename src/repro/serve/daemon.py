"""The serve daemon: a long-lived TCP server multiplexing MVEE sessions.

One :class:`ServeDaemon` owns three things:

* a :class:`~repro.serve.registry.SessionRegistry` — the session table,
  admission control, and the journal that survives restarts;
* a shared :class:`~repro.par.engine.CellExecutor` — batch (``run`` op)
  sessions from *all* clients fan out across one worker pool, so a
  daemon with ``jobs=4`` never forks more than four workers no matter
  how many clients are connected;
* a ``socketserver.ThreadingTCPServer`` speaking the JSON-lines
  protocol (:mod:`repro.serve.protocol`) — one thread per connection,
  one request per line, one response per line.

Request handling is deliberately split from transport:
:meth:`ServeDaemon.handle` takes a decoded request dict and returns a
response dict, so tests can exercise every op without a socket, and the
socket layer reduces to decode → handle → encode.  Every failure path
raises a typed :class:`repro.errors.ServeError`; nothing on the wire is
ever a traceback, and nothing blocks forever (admission control rejects
instead of queueing unboundedly, executor waits carry timeouts).
"""

from __future__ import annotations

import os
import socketserver
import threading
import time

from repro.errors import (
    BadRequest,
    DaemonUnavailable,
    SessionConflict,
    ServeError,
)
from repro.par.engine import CellExecutor, CellTask
from repro.serve import protocol
from repro.serve.registry import SessionRegistry
from repro.serve.session import Session, SessionSpec, run_session_cell
from repro.telemetry import hostmetrics, spans
from repro.telemetry.context import (
    TraceContext,
    current_context,
    new_context,
    wire_context,
)

#: Default cap on events per ``step`` request: large enough that a short
#: session finishes in a handful of steps, small enough that one step
#: cannot monopolise a handler thread.
DEFAULT_STEP_BUDGET = 20_000

#: Hard ceiling a client's ``max_events`` is clamped to.
MAX_STEP_BUDGET = 1_000_000


class ServeConfig:
    """Daemon knobs, in one picklable bag."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 state_dir: str | None = None,
                 max_sessions: int = 64,
                 max_cycles_per_session: float | None = None,
                 jobs: int = 0,
                 env: str | None = None,
                 step_budget: int = DEFAULT_STEP_BUDGET,
                 bundle_dir: str | None = None,
                 checkpoint_every: float | None = None,
                 telemetry_dir: str | None = None):
        self.host = host
        self.port = port
        self.state_dir = state_dir
        self.max_sessions = max_sessions
        self.max_cycles_per_session = max_cycles_per_session
        #: Worker processes for the batch (``run``) path; 0 executes
        #: batch sessions inline in the handler thread (fork-free).
        self.jobs = jobs
        #: Execution environment for the batch path (``inline``,
        #: ``thread``, ``process``); ``None`` derives it from ``jobs``.
        #: Process environments keep a persistent warm worker pool for
        #: the daemon's lifetime — forks amortise across sessions.
        self.env = env
        self.step_budget = step_budget
        self.bundle_dir = bundle_dir
        #: Cycle cadence for stepped-session decision-log checkpoints
        #: (needs ``state_dir``); ``None`` disables session recording.
        self.checkpoint_every = checkpoint_every
        #: Host span-log directory (``repro.telemetry``); ``None``
        #: disables span recording (host metrics stay in-memory only).
        self.telemetry_dir = telemetry_dir


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _Handler(socketserver.StreamRequestHandler):
    """decode → daemon.handle → encode, one line at a time."""

    def handle(self) -> None:
        daemon: ServeDaemon = self.server.serve_daemon
        while True:
            try:
                line = self.rfile.readline(protocol.MAX_LINE_BYTES + 2)
            except OSError:
                return
            if not line:
                return
            op = None
            try:
                request = protocol.decode_request(line)
                op = request["op"]
                response = daemon.handle(request)
            except ServeError as exc:
                response = protocol.error_response(exc, op=op)
            except Exception as exc:  # never leak a traceback on-wire
                response = protocol.error_response(
                    ServeError(f"internal error: "
                               f"{type(exc).__name__}: {exc}"), op=op)
            try:
                self.wfile.write(protocol.encode(response))
                self.wfile.flush()
            except OSError:
                return
            if op == "shutdown" and response.get("ok"):
                return


class ServeDaemon:
    """The MVEE-as-a-service daemon (see ``docs/SERVING.md``)."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        if self.config.telemetry_dir:
            # Configure before the pool exists so forked workers
            # inherit the destination (belt: module state; braces: env).
            os.environ[spans.ENV_DIR] = self.config.telemetry_dir
            spans.configure(self.config.telemetry_dir, service="daemon")
        self.registry = SessionRegistry(
            state_dir=self.config.state_dir,
            max_sessions=self.config.max_sessions,
            max_cycles_per_session=self.config.max_cycles_per_session,
            checkpoint_every=self.config.checkpoint_every)
        self.executor = CellExecutor(jobs=self.config.jobs,
                                     env=self.config.env)
        self.started_unix = time.time()
        self._server: _Server | None = None
        self._thread: threading.Thread | None = None
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind and serve in a background thread; returns (host, port)."""
        self._server = _Server((self.config.host, self.config.port),
                               _Handler)
        self._server.serve_daemon = self
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="serve-daemon",
            daemon=True)
        self._thread.start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise DaemonUnavailable("daemon is not started")
        host, port = self._server.server_address[:2]
        return host, port

    def join(self) -> None:
        """Foreground mode (``repro serve start``): block until the
        daemon stops — via :meth:`stop` or a client ``shutdown`` op.
        The short join timeout keeps KeyboardInterrupt deliverable."""
        if self._thread is None:
            raise DaemonUnavailable("daemon is not started")
        while self._thread.is_alive():
            self._thread.join(timeout=0.5)
        self._teardown()

    def stop(self) -> None:
        """Stop serving and release everything (idempotent)."""
        if self._stopping:
            return
        self._stopping = True
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._teardown()

    def _teardown(self) -> None:
        self.executor.shutdown()
        self.registry.shutdown()

    # -- dispatch ----------------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Serve one decoded request; raises ServeError on failure.

        Every op is measured into the host metrics registry (latency
        histogram + per-op counters — in-memory, always on).  A trace
        context arriving on the request's ``trace`` field (or minted
        here when span recording is active) is installed for the
        handler, so session specs and cell tasks created downstream
        join the client's trace.
        """
        if self._stopping:
            raise DaemonUnavailable("daemon is shutting down")
        op = request["op"]
        handler = getattr(self, f"_op_{op}")
        ctx = TraceContext.from_dict(request.get(protocol.TRACE_FIELD))
        if ctx is None and spans.enabled():
            ctx = new_context()
        start = time.perf_counter()
        try:
            if ctx is None:
                return handler(request)
            with spans.span(f"serve.{op}", ctx=ctx.child(),
                            service="daemon", track="daemon", op=op):
                return handler(request)
        except Exception:
            hostmetrics.inc("host.serve.op_errors")
            raise
        finally:
            hostmetrics.inc("host.serve.ops")
            hostmetrics.inc(f"host.serve.op.{op}")
            hostmetrics.observe_seconds("host.serve.op_latency_s",
                                        time.perf_counter() - start)

    # -- ops: daemon-level -------------------------------------------------

    def _op_ping(self, request: dict) -> dict:
        return protocol.ok_response(
            "ping", version=protocol.PROTOCOL_VERSION, pid=os.getpid())

    def _op_status(self, request: dict) -> dict:
        status = self.registry.status()
        status["executor"] = {
            "jobs": self.executor.jobs,
            "env": self.executor.env,
            "submitted": self.executor.submitted,
            "completed": self.executor.completed,
            "in_flight": self.executor.in_flight,
            "queued": self.executor.queued,
        }
        pool_stats = self.executor.pool_stats()
        if pool_stats is not None:
            status["executor"]["pool"] = pool_stats
        status["sessions_detail"] = self.registry.table()
        status["uptime_s"] = round(time.time() - self.started_unix, 3)
        status["version"] = protocol.PROTOCOL_VERSION
        # The same numbers the metrics op exposes come from this one
        # source (pool/registry counters), published at read time.
        hostmetrics.publish_executor_stats(status["executor"])
        hostmetrics.publish_serve_status(status)
        return protocol.ok_response("status", **status)

    def _op_workloads(self, request: dict) -> dict:
        from repro.workloads.spec import catalog

        return protocol.ok_response("workloads", workloads=catalog())

    def _op_shutdown(self, request: dict) -> dict:
        # Respond first, then stop from a helper thread: shutdown()
        # joins serve_forever, which would deadlock the handler thread
        # that is itself inside serve_forever's accept loop.
        threading.Thread(target=self.stop, daemon=True).start()
        return protocol.ok_response("shutdown", stopping=True)

    # -- ops: session lifecycle --------------------------------------------

    def _op_create(self, request: dict) -> dict:
        spec = SessionSpec.from_dict(request.get("spec")).validate()
        ctx = current_context()
        if ctx is not None and spec.trace is None:
            # The session inherits the request's trace; the spec is the
            # unit of persistence, so the journal carries it and a
            # post-crash resume keeps the original trace_id.
            import dataclasses

            spec = dataclasses.replace(spec, trace=ctx.to_dict())
        session = self.registry.create(spec,
                                       bundle_dir=self.config.bundle_dir)
        return protocol.ok_response("create", id=session.id,
                                    state=session.state)

    def _op_step(self, request: dict) -> dict:
        session = self.registry.get(request.get("id"))
        budget = request.get("max_events", self.config.step_budget)
        if not isinstance(budget, int) or budget < 1:
            raise BadRequest("max_events must be a positive integer")
        budget = min(budget, MAX_STEP_BUDGET)
        with session.lock:
            before = session.state
            envelope = session.step(budget)
            if session.state != before:
                self.registry.journal_state(session)
        return protocol.ok_response("step", id=session.id, **envelope)

    def _op_run(self, request: dict) -> dict:
        session = self.registry.get(request.get("id"))
        with session.lock:
            if session.state != "created":
                raise SessionConflict(
                    f"session {session.id} is {session.state}; run "
                    "needs a freshly created session (use step to "
                    "drive a running one)")
            task = CellTask(
                sweep_id="serve", index=self._task_index(session),
                fn=run_session_cell,
                kwargs={"spec_dict": session.spec.to_dict(),
                        "session_id": session.id,
                        "bundle_dir": self.config.bundle_dir},
                seed=session.spec.seed,
                trace=wire_context() or session.spec.trace)
            session.state = "queued"
            session.ticket = self.executor.submit(task)
            self.registry.journal_state(session)
        if not request.get("wait", True):
            return protocol.ok_response("run", id=session.id, done=False,
                                        state=session.state)
        timeout = request.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise BadRequest("timeout must be a number of seconds")
        result = self.executor.wait(session.ticket, timeout)
        if result is None:       # timed out; session stays queued
            return protocol.ok_response("run", id=session.id, done=False,
                                        state=session.state)
        envelope = self._harvest(session, result)
        return protocol.ok_response("run", id=session.id, **envelope)

    def _op_poll(self, request: dict) -> dict:
        session = self.registry.get(request.get("id"))
        with session.lock:
            if session.state == "queued" and session.ticket is not None:
                result = self.executor.poll(session.ticket)
                if result is not None:
                    envelope = self._harvest(session, result,
                                             locked=True)
                    return protocol.ok_response("poll", id=session.id,
                                                **envelope)
            return protocol.ok_response(
                "poll", id=session.id,
                done=session.state in ("finished", "killed"),
                state=session.state, result=session.result)

    def _op_metrics(self, request: dict) -> dict:
        """Dual-scope metrics: with an ``id``, the session's guest
        (simulated-cycle) metrics snapshot, as always; without one,
        the daemon's *host* metrics as Prometheus text exposition."""
        if request.get("id") is None:
            from repro.telemetry.prometheus import render_prometheus

            status = self.registry.status()
            hostmetrics.publish_serve_status(status)
            executor = {
                "jobs": self.executor.jobs,
                "submitted": self.executor.submitted,
                "completed": self.executor.completed,
                "in_flight": self.executor.in_flight,
                "queued": self.executor.queued,
                "pool": self.executor.pool_stats(),
            }
            hostmetrics.publish_executor_stats(executor)
            return protocol.ok_response(
                "metrics", scope="host",
                exposition=render_prometheus(hostmetrics.host_registry()),
                metrics=hostmetrics.host_snapshot())
        session = self.registry.get(request.get("id"))
        return protocol.ok_response(
            "metrics", id=session.id, state=session.state,
            metrics=session.metrics_snapshot())

    def _op_resume(self, request: dict) -> dict:
        session = self.registry.resume(request.get("id"))
        return protocol.ok_response("resume", id=session.id,
                                    state=session.state)

    def _op_close(self, request: dict) -> dict:
        session = self.registry.close(request.get("id"))
        return protocol.ok_response("close", id=session.id,
                                    state=session.state)

    # -- batch-path helpers ------------------------------------------------

    @staticmethod
    def _task_index(session: Session) -> int:
        try:
            return int(session.id.split("-")[-1])
        except ValueError:  # pragma: no cover - ids are always s-<n>
            return 0

    def _harvest(self, session: Session, cell_result,
                 locked: bool = False) -> dict:
        """Fold a finished CellResult into the session (single consumer:
        the executor hands each ticket's result over exactly once)."""
        lock = session.lock if not locked else None
        if lock is not None:
            lock.acquire()
        try:
            session.ticket = None
            if not cell_result.ok:
                session.state = "killed"
                session.result = {"verdict": "error",
                                  "error": cell_result.error}
            else:
                session.result = cell_result.value
                quota = self.config.max_cycles_per_session
                cycles = session.result.get("cycles") or 0
                if quota is not None and cycles > quota:
                    session.state = "killed"
                    session.result = {
                        "verdict": "killed",
                        "reason": "cycle quota exceeded",
                        "cycles": cycles}
                else:
                    session.state = "finished"
            self.registry.journal_state(session)
            return {"done": True, "state": session.state,
                    "result": session.result}
        finally:
            if lock is not None:
                lock.release()
