"""Wire protocol for the serve daemon: JSON lines over a stream socket.

One request per line, one response per line, UTF-8, no framing beyond
the newline — trivially scriptable (``nc``, ``socat``) and trivially
testable.  Every response carries ``ok`` plus an HTTP-style ``status``;
failures additionally carry the :class:`repro.errors.ServeError`
subclass name in ``error`` so the client re-raises the *same* typed
error the daemon raised (see ``docs/SERVING.md`` for the op reference).
"""

from __future__ import annotations

import json

from repro.errors import SERVE_ERRORS, BadRequest, ServeError

#: Bumped when a request or response shape changes incompatibly.
PROTOCOL_VERSION = 1

#: Every operation the daemon understands.
OPS = ("ping", "status", "workloads", "create", "step", "run", "poll",
       "metrics", "resume", "close", "shutdown")

#: Optional request field carrying a host trace context
#: (``{"trace_id", "span_id", ...}`` — see
#: :mod:`repro.telemetry.context`).  Clients attach it to every request
#: when telemetry is active; the daemon tolerates its absence, ignores
#: malformed values, and mints a root context itself when recording.
#: ``metrics`` doubles as the host-metrics exposition op: without an
#: ``id`` it returns the daemon's Prometheus text instead of a
#: session's guest metrics.
TRACE_FIELD = "trace"

#: Largest accepted request line (a spec is tiny; anything bigger is a
#: confused or hostile client, rejected before parsing).
MAX_LINE_BYTES = 1 << 20


def encode(message: dict) -> bytes:
    """One wire line: canonical JSON + newline."""
    return json.dumps(message, sort_keys=True,
                      separators=(",", ":")).encode() + b"\n"


def decode_request(line: bytes) -> dict:
    """Parse one request line; typed errors for every malformed shape."""
    if len(line) > MAX_LINE_BYTES:
        raise BadRequest(f"request exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise BadRequest(f"request is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise BadRequest("request must be a JSON object")
    op = message.get("op")
    if not isinstance(op, str):
        raise BadRequest("request needs a string 'op' field")
    if op not in OPS:
        raise BadRequest(f"unknown op {op!r}; expected one of "
                         + ", ".join(OPS))
    return message


def ok_response(op: str, **fields) -> dict:
    response = {"ok": True, "status": 200, "op": op}
    response.update(fields)
    return response


def error_response(exc: ServeError, op: str | None = None) -> dict:
    response = {"ok": False, "status": exc.status, "error": exc.code,
                "message": str(exc)}
    if op is not None:
        response["op"] = op
    return response


def raise_for(response: dict) -> dict:
    """Client side: re-raise the daemon's typed error, else pass through."""
    if response.get("ok"):
        return response
    cls = SERVE_ERRORS.get(response.get("error", ""), ServeError)
    raise cls(response.get("message", "request failed"),
              status=response.get("status"))
